"""Structural tests for the VHDL emitter."""

import re

import pytest

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.synth.vhdl import generate_vhdl


@pytest.fixture
def paper_machine(paper_trace):
    return design_predictor(paper_trace, order=2).machine


class TestStructure:
    def test_entity_declared(self, paper_machine):
        text = generate_vhdl(paper_machine, "counter")
        assert "entity counter is" in text
        assert "end entity counter;" in text

    def test_ports(self, paper_machine):
        text = generate_vhdl(paper_machine)
        for port in ("clk", "reset", "outcome", "prediction"):
            assert port in text

    def test_state_type_lists_all_states(self, paper_machine):
        text = generate_vhdl(paper_machine)
        states = ", ".join(f"s{i}" for i in range(paper_machine.num_states))
        assert f"type state_type is ({states});" in text

    def test_three_processes(self, paper_machine):
        text = generate_vhdl(paper_machine)
        assert text.count("end process") == 3

    def test_case_arm_per_state(self, paper_machine):
        text = generate_vhdl(paper_machine)
        for state in range(paper_machine.num_states):
            # One arm in next-state logic, one in output logic.
            assert text.count(f"when s{state} =>") == 2

    def test_reset_targets_start_state(self, paper_machine):
        text = generate_vhdl(paper_machine)
        assert f"state <= s{paper_machine.start};" in text

    def test_transitions_encoded(self, paper_machine):
        text = generate_vhdl(paper_machine)
        # Spot-check every transition appears as an assignment.
        for row in paper_machine.transitions:
            assert f"next_state <= s{row[0]};" in text
            assert f"next_state <= s{row[1]};" in text

    def test_outputs_encoded(self, paper_machine):
        text = generate_vhdl(paper_machine)
        for output in set(paper_machine.outputs):
            assert f"prediction <= '{output}';" in text

    def test_balanced_if_blocks(self, paper_machine):
        text = generate_vhdl(paper_machine)
        assert text.count("if ") == text.count("end if;")

    def test_balanced_case_blocks(self, paper_machine):
        text = generate_vhdl(paper_machine)
        assert text.count("case state is") == text.count("end case;") == 2

    def test_entity_name_validated(self, paper_machine):
        with pytest.raises(ValueError):
            generate_vhdl(paper_machine, "bad name")

    def test_binary_alphabet_required(self):
        machine = MooreMachine(
            alphabet=("a", "b", "c"),
            start=0,
            outputs=(0,),
            transitions=((0, 0, 0),),
        )
        with pytest.raises(ValueError):
            generate_vhdl(machine)

    def test_ends_with_newline(self, paper_machine):
        assert generate_vhdl(paper_machine).endswith("\n")
