"""Tests for the area cost model (the Synopsys stand-in)."""

import random

import pytest

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.synth.area import (
    AreaReport,
    cam_bits_area,
    estimate_area,
    table_bits_area,
)
from repro.synth.encoding import binary_encoding


def shift_register_machine(bits: int) -> MooreMachine:
    """Output = input ``bits`` steps ago: large but perfectly regular."""
    n = 1 << bits
    mask = n - 1
    return MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=tuple((s >> (bits - 1)) & 1 for s in range(n)),
        transitions=tuple(
            (((s << 1) & mask), ((s << 1) | 1) & mask) for s in range(n)
        ),
    )


def random_machine(seed: int, n: int) -> MooreMachine:
    rng = random.Random(seed)
    return MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=tuple(rng.randrange(2) for _ in range(n)),
        transitions=tuple((rng.randrange(n), rng.randrange(n)) for _ in range(n)),
    )


class TestEstimate:
    def test_report_fields(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        report = estimate_area(machine)
        assert isinstance(report, AreaReport)
        assert report.num_states == machine.num_states
        assert report.area > 0
        assert report.flip_flops >= 1

    def test_picks_cheapest_encoding(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        best = estimate_area(machine)
        binary_only = estimate_area(machine, encodings=[binary_encoding(machine.num_states)])
        assert best.area <= binary_only.area

    def test_return_synth(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        report, synth = estimate_area(machine, return_synth=True)
        assert synth.encoding.name == report.encoding_name

    def test_bigger_random_machines_cost_more(self):
        small = estimate_area(random_machine(1, 4)).area
        large = estimate_area(random_machine(1, 24)).area
        assert large > small

    def test_regular_machine_cheaper_than_chaotic_same_size(self):
        """Figure 4's key observation: large *regular* machines fall below
        the linear bound."""
        n = 32
        regular = estimate_area(shift_register_machine(5)).area
        chaotic = estimate_area(random_machine(3, n)).area
        assert regular < chaotic

    def test_str(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        assert "states=" in str(estimate_area(machine))


class TestStorageAreas:
    def test_table_bits_linear(self):
        assert table_bits_area(200) == 2 * table_bits_area(100)

    def test_cam_more_expensive_than_sram(self):
        assert cam_bits_area(100) > table_bits_area(100)
