"""Tests proving the synthesized (encoded) machine implements the
behavioral machine exactly -- the reproduction's gate-level verification."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.synth.encoding import binary_encoding, gray_encoding, one_hot_encoding
from repro.synth.logic_synthesis import synthesize_machine


def random_machine(seed: int, n: int) -> MooreMachine:
    rng = random.Random(seed)
    return MooreMachine(
        alphabet=("0", "1"),
        start=rng.randrange(n),
        outputs=tuple(rng.randrange(2) for _ in range(n)),
        transitions=tuple((rng.randrange(n), rng.randrange(n)) for _ in range(n)),
    )


def check_equivalence(machine: MooreMachine, synth, num_strings=40, seed=1):
    rng = random.Random(seed)
    for _ in range(num_strings):
        text = "".join(rng.choice("01") for _ in range(rng.randrange(0, 15)))
        behavioral_state = machine.run(text)
        code, output = synth.run_codes(text)
        assert code == synth.encoding.code_of(behavioral_state)
        assert output == machine.outputs[behavioral_state]


class TestSynthesis:
    def test_paper_machine_binary(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        synth = synthesize_machine(machine, binary_encoding(machine.num_states))
        check_equivalence(machine, synth)

    def test_paper_machine_gray(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        synth = synthesize_machine(machine, gray_encoding(machine.num_states))
        check_equivalence(machine, synth)

    def test_paper_machine_one_hot(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        synth = synthesize_machine(machine, one_hot_encoding(machine.num_states))
        check_equivalence(machine, synth)

    def test_default_encoding_is_binary(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        synth = synthesize_machine(machine)
        assert synth.encoding.name == "binary"

    def test_encoding_size_mismatch_rejected(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        with pytest.raises(ValueError):
            synthesize_machine(machine, binary_encoding(machine.num_states + 1))

    def test_cost_accounting_positive(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        synth = synthesize_machine(machine)
        assert synth.num_flip_flops >= 1
        assert synth.total_terms >= 1
        assert synth.total_literals >= synth.total_terms  # every term has >= 1 literal

    def test_single_state_machine(self):
        machine = MooreMachine(
            alphabet=("0", "1"), start=0, outputs=(1,), transitions=((0, 0),)
        )
        synth = synthesize_machine(machine)
        check_equivalence(machine, synth)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_machines_binary(self, seed):
        machine = random_machine(seed, 3 + seed)
        synth = synthesize_machine(machine)
        check_equivalence(machine, synth)

    @given(st.integers(0, 10_000), st.integers(2, 10))
    @settings(max_examples=25)
    def test_property_encoded_equals_behavioral(self, seed, n):
        machine = random_machine(seed, n)
        synth = synthesize_machine(machine)
        check_equivalence(machine, synth, num_strings=10, seed=seed + 1)
