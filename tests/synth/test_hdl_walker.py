"""Semantic conformance of the HDL emitters: walk the emitted case
statements in pure python and demand bit-exact agreement with the source
machine on random traces -- no external simulator involved."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.synth.hdl_walker import (
    HDLWalkError,
    walk_verilog,
    walk_vhdl,
)
from repro.synth.verilog import generate_verilog
from repro.synth.vhdl import generate_vhdl


@st.composite
def machines(draw, max_states: int = 8):
    n = draw(st.integers(1, max_states))
    outputs = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    transitions = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n,
            max_size=n,
        )
    )
    start = draw(st.integers(0, n - 1))
    return MooreMachine(
        alphabet=("0", "1"),
        start=start,
        outputs=tuple(outputs),
        transitions=tuple(transitions),
    )


@st.composite
def bit_traces(draw, max_len: int = 64):
    return draw(st.lists(st.integers(0, 1), min_size=0, max_size=max_len))


@given(machines(), bit_traces())
def test_verilog_walker_bit_exact(machine, bits):
    walked = walk_verilog(generate_verilog(machine))
    assert walked.start == machine.start
    assert walked.run_bits(bits) == list(machine.compile().run_bits(bits))


@given(machines(), bit_traces())
def test_vhdl_walker_bit_exact(machine, bits):
    walked = walk_vhdl(generate_vhdl(machine))
    assert walked.start == machine.start
    assert walked.run_bits(bits) == list(machine.compile().run_bits(bits))


def test_walkers_agree_on_designed_predictor(paper_trace):
    """End to end: design a predictor, emit both HDLs, and check the two
    walkers and the machine agree on a long random trace."""
    machine = design_predictor(paper_trace * 4, order=2).machine
    verilog = walk_verilog(generate_verilog(machine))
    vhdl = walk_vhdl(generate_vhdl(machine))
    rng = random.Random(0xD1CE)
    bits = [rng.randint(0, 1) for _ in range(500)]
    expected = list(machine.compile().run_bits(bits))
    assert verilog.run_bits(bits) == expected
    assert vhdl.run_bits(bits) == expected


def test_verilog_walker_catches_wrong_transition():
    machine = MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=(0, 1),
        transitions=((0, 1), (1, 0)),
    )
    text = generate_verilog(machine)
    # Swap one arm's targets: `outcome ? S1 : S0` -> `outcome ? S0 : S1`.
    broken = text.replace(
        "S0: next_state = outcome ? S1 : S0;",
        "S0: next_state = outcome ? S0 : S1;",
    )
    assert broken != text
    walked = walk_verilog(broken)
    bits = [1, 0, 0, 1]
    assert walked.run_bits(bits) != list(machine.compile().run_bits(bits))


def test_vhdl_walker_rejects_truncated_case():
    machine = MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=(0, 1),
        transitions=((0, 1), (1, 0)),
    )
    text = generate_vhdl(machine)
    truncated = text.replace("prediction <= '1';", "")
    with pytest.raises(HDLWalkError):
        walk_vhdl(truncated)


def test_verilog_walker_rejects_missing_reset():
    machine = MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=(0,),
        transitions=((0, 0),),
    )
    text = generate_verilog(machine).replace("if (reset)", "if (rst)")
    with pytest.raises(HDLWalkError):
        walk_verilog(text)
