"""Structural tests for the Verilog emitter."""

import pytest

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.synth.verilog import generate_verilog


@pytest.fixture
def paper_machine(paper_trace):
    return design_predictor(paper_trace, order=2).machine


class TestStructure:
    def test_module_wrapper(self, paper_machine):
        text = generate_verilog(paper_machine, "fsm")
        assert text.startswith("module fsm (")
        assert text.rstrip().endswith("endmodule")

    def test_localparam_per_state(self, paper_machine):
        text = generate_verilog(paper_machine)
        for state in range(paper_machine.num_states):
            assert f"S{state} =" in text

    def test_case_arms(self, paper_machine):
        text = generate_verilog(paper_machine)
        for state in range(paper_machine.num_states):
            assert f"S{state}: next_state" in text
            assert f"S{state}: prediction" in text

    def test_default_arms_present(self, paper_machine):
        text = generate_verilog(paper_machine)
        assert text.count("default:") == 2

    def test_reset_to_start(self, paper_machine):
        assert f"state <= S{paper_machine.start};" in generate_verilog(paper_machine)

    def test_state_register_width(self, paper_machine):
        text = generate_verilog(paper_machine)
        width = max(1, (paper_machine.num_states - 1).bit_length())
        assert f"reg [{width-1}:0] state" in text

    def test_module_name_validated(self, paper_machine):
        with pytest.raises(ValueError):
            generate_verilog(paper_machine, "1bad")

    def test_binary_alphabet_required(self):
        machine = MooreMachine(
            alphabet=("a",), start=0, outputs=(0,), transitions=((0,),)
        )
        with pytest.raises(ValueError):
            generate_verilog(machine)
