"""Tests for state encodings."""

import pytest

from repro.synth.encoding import (
    StateEncoding,
    binary_encoding,
    gray_encoding,
    one_hot_encoding,
    standard_encodings,
)


class TestBinary:
    def test_codes_are_sequential(self):
        enc = binary_encoding(5)
        assert enc.codes == (0, 1, 2, 3, 4)
        assert enc.num_bits == 3

    def test_single_state(self):
        assert binary_encoding(1).num_bits == 1

    def test_exact_power_of_two(self):
        assert binary_encoding(8).num_bits == 3
        assert binary_encoding(9).num_bits == 4


class TestGray:
    def test_adjacent_codes_differ_in_one_bit(self):
        enc = gray_encoding(8)
        for a, b in zip(enc.codes, enc.codes[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_codes_unique(self):
        enc = gray_encoding(11)
        assert len(set(enc.codes)) == 11


class TestOneHot:
    def test_one_bit_per_state(self):
        enc = one_hot_encoding(4)
        assert enc.num_bits == 4
        assert enc.codes == (1, 2, 4, 8)


class TestValidation:
    def test_duplicate_codes_rejected(self):
        with pytest.raises(ValueError):
            StateEncoding(name="bad", num_bits=2, codes=(1, 1))

    def test_code_too_wide_rejected(self):
        with pytest.raises(ValueError):
            StateEncoding(name="bad", num_bits=1, codes=(0, 2))

    def test_zero_states_rejected(self):
        with pytest.raises(ValueError):
            binary_encoding(0)


class TestLookup:
    def test_code_of_and_state_of_inverse(self):
        enc = gray_encoding(6)
        for state in range(6):
            assert enc.state_of(enc.code_of(state)) == state

    def test_state_of_unused_code_raises(self):
        enc = binary_encoding(3)  # 2 bits, code 3 unused
        with pytest.raises(KeyError):
            enc.state_of(3)

    def test_code_string(self):
        enc = binary_encoding(4)
        assert enc.code_string(2) == "10"

    def test_used_codes(self):
        assert binary_encoding(3).used_codes() == frozenset({0, 1, 2})


class TestStandardEncodings:
    def test_small_machine_gets_one_hot(self):
        names = [e.name for e in standard_encodings(8)]
        assert names == ["binary", "gray", "one_hot"]

    def test_large_machine_skips_one_hot(self):
        names = [e.name for e in standard_encodings(64)]
        assert "one_hot" not in names
