"""Tests for unate covering (essential primes, greedy, branch-and-bound)."""

import pytest

from repro.logic.cube import Cube
from repro.logic.covering import (
    essential_primes,
    exact_cover,
    greedy_cover,
    select_cover,
)


def cubes(*texts):
    return [Cube.from_string(t) for t in texts]


class TestEssentialPrimes:
    def test_unique_coverer_is_essential(self):
        primes = cubes("1-", "-1")
        essential, remaining = essential_primes(primes, [0b10, 0b01])
        assert essential == [0, 1]
        assert not remaining

    def test_no_essentials_in_cyclic_cover(self):
        # Classic cyclic core: every minterm covered by exactly two primes.
        primes = cubes("0-1", "01-", "-10", "1-0", "10-", "-01")
        minterms = [0b001, 0b011, 0b010, 0b110, 0b100, 0b101]
        essential, remaining = essential_primes(primes, minterms)
        assert essential == []
        assert set(remaining) == set(minterms)

    def test_uncoverable_minterm_raises(self):
        with pytest.raises(ValueError):
            essential_primes(cubes("1-"), [0b01])


class TestGreedyCover:
    def test_picks_large_prime(self):
        primes = cubes("--", "00")
        chosen = greedy_cover(primes, [0, 1, 2, 3])
        assert chosen == [0]

    def test_respects_preselected(self):
        primes = cubes("1-", "-1")
        chosen = greedy_cover(primes, [0b10], preselected=[0])
        assert chosen == [0]

    def test_covers_everything(self):
        primes = cubes("0-1", "01-", "-10", "1-0", "10-", "-01")
        minterms = [0b001, 0b011, 0b010, 0b110, 0b100, 0b101]
        chosen = greedy_cover(primes, minterms)
        for m in minterms:
            assert any(primes[i].contains_minterm(m) for i in chosen)


class TestExactCover:
    def test_cyclic_core_minimum(self):
        primes = cubes("0-1", "01-", "-10", "1-0", "10-", "-01")
        minterms = [0b001, 0b011, 0b010, 0b110, 0b100, 0b101]
        chosen = exact_cover(primes, minterms)
        assert len(chosen) == 3  # the cyclic core needs exactly 3 primes
        for m in minterms:
            assert any(primes[i].contains_minterm(m) for i in chosen)

    def test_beats_or_matches_greedy(self):
        primes = cubes("0-1", "01-", "-10", "1-0", "10-", "-01")
        minterms = [0b001, 0b011, 0b010, 0b110, 0b100, 0b101]
        greedy = greedy_cover(primes, minterms)
        exact = exact_cover(primes, minterms)
        greedy_cost = sum(primes[i].pattern_cost for i in greedy)
        exact_cost = sum(primes[i].pattern_cost for i in exact)
        assert exact_cost <= greedy_cost

    def test_single_prime(self):
        primes = cubes("--")
        assert exact_cover(primes, [0, 1, 2, 3]) == [0]


class TestSelectCover:
    def test_empty_on_set(self):
        assert select_cover(cubes("1-"), []) == []

    def test_essentials_only_shortcut(self):
        cover = select_cover(cubes("1-", "-1"), [0b10, 0b01])
        assert set(cover) == set(cubes("1-", "-1"))

    def test_prefers_recent_history_patterns(self):
        # Both primes alone cover the on-set; the covering step must pick
        # the one caring about the newest bit (lower pattern cost).
        primes = cubes("---1", "1---")
        cover = select_cover(primes, [0b1001])
        assert cover == cubes("---1")

    def test_deterministic(self):
        primes = cubes("0-1", "01-", "-10", "1-0", "10-", "-01")
        minterms = [0b001, 0b011, 0b010, 0b110, 0b100, 0b101]
        first = select_cover(primes, minterms)
        second = select_cover(primes, minterms)
        assert first == second
