"""Property tests for the two-level minimizers (hypothesis).

Correctness is unconditional for both minimizers -- every cover must
contain the on-set and avoid the off-set regardless of don't-cares -- and
the cost ordering must hold: the exact branch-and-bound can never lose to
the EXPAND/IRREDUNDANT heuristic, and the ``espresso.minimize`` dispatcher
(the pipeline's entry point) can never lose to raw Quine-McCluskey.

Cost comparisons stay at width <= 4: beyond that ``select_cover`` starts
falling back to greedy covering for large prime sets, where the exact-beats
-heuristic guarantee no longer holds by construction.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.logic.cube import Cube
from repro.logic.espresso import minimize, minimize_heuristic
from repro.logic.quine_mccluskey import minimize_exact, prime_implicants
from repro.logic.truth_table import TruthTable


def truth_tables(min_width: int = 1, max_width: int = 5):
    """Random incompletely-specified functions: every minterm drawn from
    {on, off, dc} independently."""

    @st.composite
    def build(draw):
        width = draw(st.integers(min_width, max_width))
        symbols = draw(
            st.lists(
                st.sampled_from("10-"),
                min_size=1 << width,
                max_size=1 << width,
            )
        )
        on = frozenset(m for m, s in enumerate(symbols) if s == "1")
        off = frozenset(m for m, s in enumerate(symbols) if s == "0")
        return TruthTable(width=width, on_set=on, off_set=off)

    return build()


def cover_cost(cover) -> tuple:
    return (sum(cube.pattern_cost for cube in cover), len(cover))


@given(truth_tables())
def test_exact_cover_is_valid(table):
    assert table.is_cover_valid(minimize_exact(table))


@given(truth_tables())
def test_heuristic_cover_is_valid(table):
    assert table.is_cover_valid(minimize_heuristic(table))


@given(truth_tables())
def test_dispatcher_cover_is_valid(table):
    assert table.is_cover_valid(minimize(table))


@given(truth_tables())
def test_primes_avoid_off_set(table):
    """Every prime implicant is an implicant: disjoint from the off-set."""
    for prime in prime_implicants(table):
        assert not any(
            prime.contains_minterm(m) for m in table.off_set
        ), f"prime {prime} intersects the off-set"


@given(truth_tables(max_width=4))
def test_primes_are_maximal(table):
    """No prime can raise a care position and stay an implicant."""
    for prime in prime_implicants(table):
        for position in prime.cofactor_positions():
            grown = prime.expand_position(position)
            assert any(
                grown.contains_minterm(m) for m in table.off_set
            ), f"{prime} is not maximal: {grown} is still an implicant"


@given(truth_tables(max_width=4))
def test_exact_cost_beats_heuristic(table):
    """The branch-and-bound optimum over all primes can never cost more
    than the heuristic's expand-and-prune answer (the heuristic's expanded
    cubes are themselves primes, so its cover is in the exact search
    space)."""
    assert cover_cost(minimize_exact(table)) <= cover_cost(
        minimize_heuristic(table)
    )


@given(truth_tables(max_width=4))
def test_espresso_cost_beats_quine_mccluskey(table):
    """The pipeline's `espresso.minimize` entry point never produces a
    costlier cover than raw Quine-McCluskey."""
    assert cover_cost(minimize(table)) <= cover_cost(minimize_exact(table))


@given(truth_tables(max_width=4))
def test_heuristic_expanded_cubes_are_primes(table):
    """EXPAND's output cubes are maximal implicants, i.e. actual primes --
    the fact the exact-vs-heuristic cost ordering rides on."""
    primes = set(prime_implicants(table))
    for cube in minimize_heuristic(table):
        if cube == Cube.universe(table.width) and not table.off_set:
            continue
        assert cube in primes, f"heuristic kept non-prime cube {cube}"
