"""Tests for exact Quine-McCluskey minimization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.cube import Cube, cover_contains
from repro.logic.quine_mccluskey import minimize_exact, prime_implicants
from repro.logic.truth_table import TruthTable


def brute_force_primes(table: TruthTable):
    """All prime implicants by brute force over every possible cube."""
    width = table.width
    care = table.on_set | table.dc_set
    implicants = []
    # Enumerate all cubes as (value, mask) pairs.
    for mask in range(1 << width):
        seen_values = set()
        for value in range(1 << width):
            value &= mask
            if value in seen_values:
                continue
            seen_values.add(value)
            cube = Cube(width=width, value=value, mask=mask)
            if all(m in care for m in cube.minterms()):
                implicants.append(cube)
    primes = []
    for cube in implicants:
        if not any(other != cube and other.covers(cube) for other in implicants):
            primes.append(cube)
    return sorted(primes)


class TestPrimeImplicants:
    def test_paper_example(self):
        # Section 4.4's table: on = {01, 10, 11}, off = {00}.
        table = TruthTable.from_sets(2, on=[1, 2, 3], off=[0])
        primes = prime_implicants(table)
        assert set(primes) == {Cube.from_string("1-"), Cube.from_string("-1")}

    def test_full_on_set(self):
        table = TruthTable.from_sets(2, on=[0, 1, 2, 3], off=[])
        assert prime_implicants(table) == [Cube.universe(2)]

    def test_single_minterm(self):
        table = TruthTable.from_sets(3, on=[5], off=set(range(8)) - {5})
        assert prime_implicants(table) == [Cube.from_string("101")]

    def test_empty_on_and_dc(self):
        table = TruthTable.from_sets(2, on=[], off=[0, 1, 2, 3])
        assert prime_implicants(table) == []

    def test_dc_participates_in_merging(self):
        # on = {11}, dc = {10}: the prime 1- exists only thanks to the dc.
        table = TruthTable.from_sets(2, on=[3], off=[0, 1])
        assert Cube.from_string("1-") in prime_implicants(table)

    def test_primes_are_prime(self):
        table = TruthTable.from_sets(3, on=[0, 1, 2, 5], off=[3, 4, 7])
        primes = prime_implicants(table)
        for prime in primes:
            for position in range(3):
                expanded = prime.expand_position(position)
                if expanded == prime:
                    continue
                assert any(
                    m in table.off_set for m in expanded.minterms()
                ), f"{prime} is not prime: {expanded} is still an implicant"

    @given(
        st.integers(1, 4).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.sets(st.integers(0, (1 << w) - 1)),
                st.sets(st.integers(0, (1 << w) - 1)),
            )
        )
    )
    def test_property_matches_brute_force(self, args):
        width, on, off = args
        off = off - on
        table = TruthTable.from_sets(width, on, off)
        assert prime_implicants(table) == brute_force_primes(table)


class TestMinimizeExact:
    def test_paper_example_cover(self):
        table = TruthTable.from_strings(
            2, {"00": "0", "01": "1", "10": "1", "11": "1"}
        )
        cover = minimize_exact(table)
        assert set(cover) == {Cube.from_string("1-"), Cube.from_string("-1")}

    def test_empty_on_set(self):
        assert minimize_exact(TruthTable.from_sets(3, on=[], off=[1])) == []

    def test_no_off_set_gives_universe(self):
        cover = minimize_exact(TruthTable.from_sets(3, on=[1], off=[]))
        assert cover == [Cube.universe(3)]

    def test_xor_needs_two_cubes(self):
        table = TruthTable.from_sets(2, on=[1, 2], off=[0, 3])
        cover = minimize_exact(table)
        assert len(cover) == 2
        assert table.is_cover_valid(cover)

    def test_dc_reduces_cover(self):
        # on = {111}, others off except dc = {110, 101, 011}.
        table = TruthTable.from_sets(3, on=[7], off=[0, 1, 2, 4])
        cover = minimize_exact(table)
        assert table.is_cover_valid(cover)
        assert sum(c.num_literals for c in cover) < 3

    @given(
        st.integers(1, 5).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.sets(st.integers(0, (1 << w) - 1)),
                st.sets(st.integers(0, (1 << w) - 1)),
            )
        )
    )
    def test_property_cover_is_valid(self, args):
        width, on, off = args
        off = off - on
        table = TruthTable.from_sets(width, on, off)
        cover = minimize_exact(table)
        assert table.is_cover_valid(cover)

    @given(
        st.integers(1, 4).flatmap(
            lambda w: st.sets(st.integers(0, (1 << w) - 1)).map(
                lambda on: TruthTable.from_sets(
                    w, on, set(range(1 << w)) - on
                )
            )
        )
    )
    def test_property_fully_specified_cover_exact_function(self, table):
        """With no dc set, the cover must equal the function everywhere."""
        cover = minimize_exact(table)
        for minterm in range(1 << table.width):
            expected = minterm in table.on_set
            assert cover_contains(cover, minterm) == expected
