"""Tests for the heuristic (Espresso-style) minimizer and the dispatcher."""

from hypothesis import given
from hypothesis import strategies as st

from repro.logic.cube import Cube, cover_contains
from repro.logic.espresso import minimize, minimize_heuristic
from repro.logic.truth_table import TruthTable


class TestHeuristic:
    def test_paper_example(self):
        table = TruthTable.from_strings(
            2, {"00": "0", "01": "1", "10": "1", "11": "1"}
        )
        cover = minimize_heuristic(table)
        assert table.is_cover_valid(cover)
        assert len(cover) <= 2

    def test_empty_on_set(self):
        assert minimize_heuristic(TruthTable.from_sets(4, on=[], off=[3])) == []

    def test_no_off_set(self):
        cover = minimize_heuristic(TruthTable.from_sets(4, on=[3], off=[]))
        assert cover == [Cube.universe(4)]

    def test_expansion_happens(self):
        # on = everything with the top bit set; a single expanded cube
        # should emerge rather than 8 minterms.
        width = 4
        on = [m for m in range(16) if m & 0b1000]
        off = [m for m in range(16) if not m & 0b1000]
        cover = minimize_heuristic(TruthTable.from_sets(width, on, off))
        assert cover == [Cube.from_string("1---")]

    def test_irredundant_removes_contained(self):
        # A case where naive expansion yields overlapping cubes.
        table = TruthTable.from_sets(3, on=[0, 1, 2, 3], off=[4, 5, 6, 7])
        cover = minimize_heuristic(table)
        assert cover == [Cube.from_string("0--")]

    @given(
        st.integers(1, 6).flatmap(
            lambda w: st.tuples(
                st.just(w),
                st.sets(st.integers(0, (1 << w) - 1)),
                st.sets(st.integers(0, (1 << w) - 1)),
            )
        )
    )
    def test_property_cover_valid(self, args):
        width, on, off = args
        off = off - on
        table = TruthTable.from_sets(width, on, off)
        assert table.is_cover_valid(minimize_heuristic(table))


class TestDispatch:
    def test_small_width_uses_exact(self):
        table = TruthTable.from_sets(2, on=[1, 2, 3], off=[0])
        cover = minimize(table)
        assert set(cover) == {Cube.from_string("1-"), Cube.from_string("-1")}

    def test_wide_table_still_valid(self):
        width = 14  # beyond the exact-width limit
        on = [0, 1, 2, 3]
        off = [1 << 13, (1 << 13) + 1]
        table = TruthTable.from_sets(width, on, off)
        cover = minimize(table)
        assert table.is_cover_valid(cover)

    @given(
        st.sets(st.integers(0, 31)).flatmap(
            lambda on: st.just(
                TruthTable.from_sets(5, on, set(range(32)) - on)
            )
        )
    )
    def test_property_exact_and_heuristic_agree_on_function(self, table):
        """Fully-specified tables: both minimizers realize the same
        function (covers may differ)."""
        exact = minimize(table)
        heuristic = minimize_heuristic(table)
        for minterm in range(32):
            assert cover_contains(exact, minterm) == cover_contains(
                heuristic, minterm
            )
