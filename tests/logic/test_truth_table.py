"""Tests for the on/off/don't-care truth table container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.cube import Cube
from repro.logic.truth_table import TruthTable


class TestConstruction:
    def test_basic_partition(self):
        table = TruthTable.from_sets(2, on=[1, 2], off=[0])
        assert table.on_set == {1, 2}
        assert table.off_set == {0}
        assert table.dc_set == {3}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.from_sets(2, on=[1], off=[1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.from_sets(2, on=[4], off=[])

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(width=-1, on_set=frozenset(), off_set=frozenset())

    def test_from_mapping(self):
        table = TruthTable.from_mapping(2, {0: "0", 1: "1", 2: "-"})
        assert table.on_set == {1}
        assert table.off_set == {0}
        assert 2 in table.dc_set
        assert 3 in table.dc_set

    def test_from_mapping_rejects_bad_symbol(self):
        with pytest.raises(ValueError):
            TruthTable.from_mapping(2, {0: "2"})

    def test_from_strings_paper_example(self):
        # Section 4.4: {00 -> 0, 01 -> 1, 10 -> 1, 11 -> 1}
        table = TruthTable.from_strings(
            2, {"00": "0", "01": "1", "10": "1", "11": "1"}
        )
        assert table.on_set == {0b01, 0b10, 0b11}
        assert table.off_set == {0b00}
        assert not table.dc_set


class TestQueries:
    def test_output_of(self):
        table = TruthTable.from_sets(2, on=[1], off=[0])
        assert table.output_of(1) == "1"
        assert table.output_of(0) == "0"
        assert table.output_of(3) == "-"

    def test_num_specified(self):
        table = TruthTable.from_sets(3, on=[1, 2], off=[0])
        assert table.num_specified == 3

    def test_complement_swaps(self):
        table = TruthTable.from_sets(2, on=[1], off=[0])
        comp = table.complement()
        assert comp.on_set == {0}
        assert comp.off_set == {1}
        assert comp.dc_set == table.dc_set

    def test_as_rows(self):
        table = TruthTable.from_sets(1, on=[1], off=[0])
        assert table.as_rows() == {"0": "0", "1": "1"}

    def test_str_contains_rows(self):
        text = str(TruthTable.from_sets(1, on=[1], off=[0]))
        assert "0 -> 0" in text
        assert "1 -> 1" in text


class TestCoverValidation:
    def test_valid_cover(self):
        table = TruthTable.from_strings(
            2, {"00": "0", "01": "1", "10": "1", "11": "1"}
        )
        cover = [Cube.from_string("1-"), Cube.from_string("-1")]
        assert table.is_cover_valid(cover)

    def test_cover_missing_on_minterm(self):
        table = TruthTable.from_sets(2, on=[1, 2], off=[0])
        assert not table.is_cover_valid([Cube.from_string("-1")])

    def test_cover_hitting_off_minterm(self):
        table = TruthTable.from_sets(2, on=[3], off=[2])
        assert not table.is_cover_valid([Cube.from_string("1-")])

    def test_cover_width_mismatch_invalid(self):
        table = TruthTable.from_sets(2, on=[3], off=[0])
        assert not table.is_cover_valid([Cube.from_string("1")])

    def test_empty_cover_valid_iff_no_on_set(self):
        assert TruthTable.from_sets(2, on=[], off=[0]).is_cover_valid([])
        assert not TruthTable.from_sets(2, on=[1], off=[]).is_cover_valid([])


@given(
    st.integers(1, 6).flatmap(
        lambda w: st.tuples(
            st.just(w),
            st.sets(st.integers(0, (1 << w) - 1)),
            st.sets(st.integers(0, (1 << w) - 1)),
        )
    )
)
def test_property_partition_is_complete(args):
    width, on, off = args
    off = off - on
    table = TruthTable.from_sets(width, on, off)
    union = table.on_set | table.off_set | table.dc_set
    assert union == set(range(1 << width))
    assert not (table.on_set & table.off_set)
    assert not (table.on_set & table.dc_set)
    assert not (table.off_set & table.dc_set)
