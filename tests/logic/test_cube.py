"""Unit and property tests for ternary cubes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.cube import Cube, cover_contains, cover_literals


def cube_strings(width):
    return st.text(alphabet="01-", min_size=width, max_size=width)


class TestConstruction:
    def test_from_string_all_care(self):
        cube = Cube.from_string("101")
        assert cube.width == 3
        assert cube.value == 0b101
        assert cube.mask == 0b111

    def test_from_string_dont_care(self):
        cube = Cube.from_string("1-0")
        assert cube.mask == 0b101
        assert cube.value == 0b100

    def test_from_string_accepts_x(self):
        assert Cube.from_string("1x0") == Cube.from_string("1-0")
        assert Cube.from_string("1X0") == Cube.from_string("1-0")

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Cube.from_string("102")

    def test_from_minterm(self):
        cube = Cube.from_minterm(5, 4)
        assert str(cube) == "0101"
        assert cube.num_minterms == 1

    def test_from_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.from_minterm(16, 4)

    def test_universe(self):
        cube = Cube.universe(3)
        assert str(cube) == "---"
        assert cube.num_minterms == 8

    def test_invalid_mask(self):
        with pytest.raises(ValueError):
            Cube(width=2, value=0, mask=0b100)

    def test_value_outside_mask(self):
        with pytest.raises(ValueError):
            Cube(width=2, value=0b10, mask=0b01)

    def test_str_roundtrip(self):
        for text in ("0", "1", "-", "01-", "1--0", "10101"):
            assert str(Cube.from_string(text)) == text

    def test_repr(self):
        assert repr(Cube.from_string("1-")) == "Cube('1-')"


class TestMembership:
    def test_contains_own_minterms(self):
        cube = Cube.from_string("1-0")
        assert sorted(cube.minterms()) == [0b100, 0b110]

    def test_contains_minterm(self):
        cube = Cube.from_string("1-")
        assert cube.contains_minterm(0b10)
        assert cube.contains_minterm(0b11)
        assert not cube.contains_minterm(0b01)

    def test_num_literals(self):
        assert Cube.from_string("1-0").num_literals == 2
        assert Cube.universe(5).num_literals == 0

    def test_covers_subset(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_self(self):
        cube = Cube.from_string("01-")
        assert cube.covers(cube)

    def test_covers_width_mismatch(self):
        with pytest.raises(ValueError):
            Cube.from_string("1-").covers(Cube.from_string("1--"))

    def test_intersects_disjoint(self):
        assert not Cube.from_string("1-").intersects(Cube.from_string("0-"))

    def test_intersection(self):
        a = Cube.from_string("1-")
        b = Cube.from_string("-0")
        assert a.intersection(b) == Cube.from_string("10")

    def test_intersection_disjoint_is_none(self):
        assert Cube.from_string("11").intersection(Cube.from_string("00")) is None

    def test_matches_bits(self):
        cube = Cube.from_string("1-0")
        assert cube.matches_bits("110")
        assert not cube.matches_bits("011")

    def test_matches_bits_length_check(self):
        with pytest.raises(ValueError):
            Cube.from_string("1-").matches_bits("101")


class TestMerge:
    def test_merge_adjacent(self):
        merged = Cube.from_string("10").merge(Cube.from_string("11"))
        assert merged == Cube.from_string("1-")

    def test_merge_non_adjacent(self):
        assert Cube.from_string("00").merge(Cube.from_string("11")) is None

    def test_merge_identical(self):
        cube = Cube.from_string("01")
        assert cube.merge(cube) is None

    def test_merge_different_masks(self):
        assert Cube.from_string("1-").merge(Cube.from_string("11")) is None

    def test_expand_position(self):
        cube = Cube.from_string("10")
        assert cube.expand_position(0) == Cube.from_string("1-")
        assert cube.expand_position(1) == Cube.from_string("-0")

    def test_expand_free_position_noop(self):
        cube = Cube.from_string("1-")
        assert cube.expand_position(0) is cube

    def test_cofactor_positions_msb_first(self):
        assert Cube.from_string("1-0").cofactor_positions() == [2, 0]


class TestAgeCost:
    def test_oldest_care_index(self):
        assert Cube.from_string("---").oldest_care_index == -1
        assert Cube.from_string("--1").oldest_care_index == 0
        assert Cube.from_string("1--").oldest_care_index == 2

    def test_pattern_cost_prefers_recent(self):
        recent = Cube.from_string("---1")
        old = Cube.from_string("1---")
        assert recent.pattern_cost < old.pattern_cost

    def test_pattern_cost_universe_is_free(self):
        assert Cube.universe(6).pattern_cost == 0


class TestCoverHelpers:
    def test_cover_contains(self):
        cover = [Cube.from_string("1-"), Cube.from_string("01")]
        assert cover_contains(cover, 0b01)
        assert cover_contains(cover, 0b10)
        assert not cover_contains(cover, 0b00)

    def test_cover_literals(self):
        cover = [Cube.from_string("1-"), Cube.from_string("01")]
        assert cover_literals(cover) == 3


@given(st.integers(1, 8).flatmap(lambda w: st.tuples(st.just(w), cube_strings(w))))
def test_property_string_roundtrip(args):
    width, text = args
    cube = Cube.from_string(text)
    assert str(cube) == text
    assert cube.width == width


@given(
    st.integers(1, 6).flatmap(
        lambda w: st.tuples(cube_strings(w), st.integers(0, (1 << w) - 1))
    )
)
def test_property_membership_matches_charwise(args):
    text, minterm = args
    cube = Cube.from_string(text)
    bits = format(minterm, f"0{cube.width}b")
    expected = all(c == "-" or c == b for c, b in zip(text, bits))
    assert cube.contains_minterm(minterm) == expected


@given(st.integers(1, 6).flatmap(lambda w: st.tuples(cube_strings(w), cube_strings(w))))
def test_property_intersection_is_conjunction(args):
    a_text, b_text = args
    a, b = Cube.from_string(a_text), Cube.from_string(b_text)
    inter = a.intersection(b)
    members_a = set(a.minterms())
    members_b = set(b.minterms())
    expected = members_a & members_b
    if inter is None:
        assert not expected
    else:
        assert set(inter.minterms()) == expected


@given(st.integers(1, 6).flatmap(lambda w: st.tuples(cube_strings(w), cube_strings(w))))
def test_property_covers_iff_subset(args):
    a_text, b_text = args
    a, b = Cube.from_string(a_text), Cube.from_string(b_text)
    assert a.covers(b) == set(b.minterms()).issubset(set(a.minterms()))


@given(st.integers(1, 8).flatmap(lambda w: cube_strings(w)))
def test_property_minterm_count(text):
    cube = Cube.from_string(text)
    assert len(list(cube.minterms())) == cube.num_minterms
