"""End-to-end server tests: a real socket, real worker processes.

Each test boots a :class:`DesignServer` on an ephemeral port inside its
own event loop, talks to it over TCP, and shuts it down -- the same code
path the CLI runs, minus argv parsing.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import protocol
from repro.serve.config import ServeConfig
from repro.serve.jobs import DesignRequest, execute_request
from repro.serve.server import DesignServer

PAPER = "000010001011110111101111"


def run(coro):
    return asyncio.run(coro)


async def boot(**overrides) -> DesignServer:
    defaults = dict(host="127.0.0.1", port=0, workers=1, queue_limit=8)
    defaults.update(overrides)
    server = DesignServer(ServeConfig.from_env(**defaults))
    await server.start()
    return server


async def roundtrip(port, obj, timeout_s=60.0):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(protocol.canonical_json(obj) + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionResetError):
            pass
    assert line, "connection closed without a response"
    return json.loads(line)


class TestServerBasics:
    def test_design_roundtrip_matches_batch_reference(self):
        async def scenario():
            server = await boot()
            try:
                payload = {
                    "trace": PAPER * 4,
                    "order": 2,
                    "verify": True,
                    "id": "rt",
                }
                env = await roundtrip(server.port, payload)
                assert (env["status"], env["code"]) == ("ok", 200)
                assert env["id"] == "rt"
                got = protocol.canonical_json(env["payload"])
                want = protocol.canonical_json(
                    execute_request(DesignRequest.from_payload(payload))
                )
                assert got == want
            finally:
                await server.shutdown()

        run(scenario())

    def test_ping_healthz_metrics_ops(self):
        async def scenario():
            server = await boot()
            try:
                ping = await roundtrip(server.port, {"op": "ping", "id": 1})
                assert (ping["status"], ping["op"]) == ("ok", "ping")

                health = await roundtrip(server.port, {"op": "healthz"})
                assert health["ready"] is True
                assert health["workers_alive"] == 1
                assert health["draining"] is False

                stats = await roundtrip(server.port, {"op": "metrics"})
                assert stats["metrics_schema"] == "repro.serve-metrics/1"
                assert "serve.worker_spawns" in stats["counters"]
                assert stats["queue_limit"] == 8
                assert isinstance(stats["breakers"], dict)
                assert stats["pool"]["alive"] == 1
            finally:
                await server.shutdown()

        run(scenario())

    def test_deep_healthz_round_trips_a_verified_probe(self):
        async def scenario():
            server = await boot()
            try:
                health = await roundtrip(
                    server.port, {"op": "healthz", "deep": True}
                )
                assert health["ready"] is True
                assert health["deep"] is True
            finally:
                await server.shutdown()

        run(scenario())

    def test_pipelined_requests_are_not_head_of_line_blocked(self):
        async def scenario():
            server = await boot(workers=1)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # A slow design followed by a ping on the SAME
                # connection: the ping's answer must not wait for the
                # design (responses correlate by id, not by order).
                writer.write(
                    protocol.canonical_json(
                        {"trace": PAPER * 40, "order": 4, "id": "slow"}
                    )
                    + b"\n"
                    + protocol.canonical_json({"op": "ping", "id": "fast"})
                    + b"\n"
                )
                await writer.drain()
                first = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=60)
                )
                second = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=120)
                )
                assert first["id"] == "fast"
                assert first["op"] == "ping"
                assert second["id"] == "slow"
                assert second["status"] == "ok"
                writer.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_half_closed_pipelined_client_still_gets_every_answer(self):
        async def scenario():
            server = await boot(workers=1)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    protocol.canonical_json(
                        {"trace": PAPER * 2, "order": 1, "id": "a"}
                    )
                    + b"\n"
                    + protocol.canonical_json(
                        {"trace": PAPER * 3, "order": 1, "id": "b"}
                    )
                    + b"\n"
                )
                await writer.drain()
                writer.write_eof()  # done sending; still owed 2 envelopes
                got = set()
                for _ in range(2):
                    env = json.loads(
                        await asyncio.wait_for(reader.readline(), timeout=60)
                    )
                    assert env["status"] == "ok"
                    got.add(env["id"])
                assert got == {"a", "b"}
                writer.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_malformed_line_gets_400_and_connection_survives(self):
        async def scenario():
            server = await boot()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                bad = json.loads(await reader.readline())
                assert bad["code"] == 400
                assert bad["kind"] == "ProtocolError"
                # Same connection still works afterwards.
                writer.write(
                    protocol.canonical_json({"op": "ping"}) + b"\n"
                )
                await writer.drain()
                ok = json.loads(await reader.readline())
                assert ok["status"] == "ok"
                writer.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_client_error_envelope(self):
        async def scenario():
            server = await boot()
            try:
                env = await roundtrip(
                    server.port, {"trace": "01x", "order": 1, "id": "bad"}
                )
                assert (env["status"], env["code"]) == ("error", 400)
                assert env["kind"] == "TraceError"
            finally:
                await server.shutdown()

        run(scenario())


class TestAdmissionAndDeadlines:
    def test_queue_full_sheds_with_retry_hint(self):
        async def scenario():
            # workers=1, queue_limit=1: the second concurrent request
            # must be shed while the first is still in flight.
            server = await boot(workers=1, queue_limit=1)
            try:
                slow = asyncio.ensure_future(
                    roundtrip(
                        server.port,
                        {"trace": PAPER * 40, "order": 4, "id": "slow"},
                    )
                )
                # Wait until the slow job is admitted.
                for _ in range(200):
                    if server.pool.depth() >= 1:
                        break
                    await asyncio.sleep(0.01)
                shed = await roundtrip(
                    server.port, {"trace": PAPER * 2, "order": 1, "id": "x"}
                )
                assert (shed["status"], shed["code"]) == ("rejected", 503)
                assert shed["reason"] == "queue full"
                assert shed["retry_after_s"] > 0
                first = await slow
                assert first["status"] == "ok"
            finally:
                await server.shutdown()

        run(scenario())

    def test_deep_healthz_yields_to_admission_when_saturated(self):
        async def scenario():
            server = await boot(workers=1, queue_limit=1)
            try:
                slow = asyncio.ensure_future(
                    roundtrip(
                        server.port,
                        {"trace": PAPER * 40, "order": 4, "id": "slow"},
                    )
                )
                for _ in range(200):
                    if server.pool.depth() >= 1:
                        break
                    await asyncio.sleep(0.01)
                health = await roundtrip(
                    server.port, {"op": "healthz", "deep": True}
                )
                # The probe must not jump the admission queue: shallow
                # readiness is still reported, the deep design is not run.
                assert health["ready"] is True
                assert health["deep"] == "skipped_overloaded"
                first = await slow
                assert first["status"] == "ok"
            finally:
                await server.shutdown()

        run(scenario())

    def test_expired_deadline_maps_to_504(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")  # cold compute every time

        async def scenario():
            server = await boot()
            try:
                env = await roundtrip(
                    server.port,
                    {"trace": PAPER * 4, "order": 3, "deadline_s": 1e-6},
                )
                assert (env["status"], env["code"]) == ("timeout", 504)
            finally:
                await server.shutdown()

        run(scenario())


class TestDegradation:
    def test_open_verify_breaker_sheds_verification_only(self):
        async def scenario():
            server = await boot()
            try:
                # Force the verify breaker open by hand (its failure path
                # needs a buggy oracle; the degrade plumbing is what's
                # under test here).
                breaker = server.breakers.get("verify")
                for _ in range(server.config.breaker_threshold):
                    breaker.record_failure()
                payload = {
                    "trace": PAPER * 4,
                    "order": 2,
                    "verify": True,
                    "id": "d",
                }
                env = await roundtrip(server.port, payload)
                assert env["status"] == "ok"
                assert env["degraded"] == ["no-verify"]
                # Degradation never changes payload bytes.
                want = protocol.canonical_json(
                    execute_request(DesignRequest.from_payload(payload))
                )
                assert protocol.canonical_json(env["payload"]) == want
            finally:
                await server.shutdown()

        run(scenario())

    def test_open_stage_breaker_fast_fails_matching_requests(self):
        async def scenario():
            server = await boot()
            try:
                breaker = server.breakers.get("stage:order=6")
                for _ in range(server.config.breaker_threshold):
                    breaker.record_failure()
                shed = await roundtrip(
                    server.port, {"trace": PAPER * 8, "order": 6}
                )
                assert (shed["status"], shed["code"]) == ("rejected", 503)
                # Other orders are unaffected.
                ok = await roundtrip(
                    server.port, {"trace": PAPER * 4, "order": 2}
                )
                assert ok["status"] == "ok"
            finally:
                await server.shutdown()

        run(scenario())


class TestDrain:
    def test_drain_finishes_inflight_then_rejects_new(self):
        async def scenario():
            server = await boot(workers=1)
            inflight = asyncio.ensure_future(
                roundtrip(
                    server.port,
                    {"trace": PAPER * 40, "order": 4, "id": "inflight"},
                )
            )
            for _ in range(200):
                if server.pool.depth() >= 1:
                    break
                await asyncio.sleep(0.01)
            port = server.port
            shutdown = asyncio.ensure_future(server.shutdown())
            # The in-flight request completes with a real answer.
            env = await inflight
            assert env["status"] == "ok"
            await shutdown
            # The listener is gone: new connections are refused.
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)

        run(scenario())

    def test_shutdown_is_idempotent(self):
        async def scenario():
            server = await boot()
            await server.shutdown()
            await server.shutdown()

        run(scenario())
