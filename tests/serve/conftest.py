"""Fixtures for the serving-layer suite.

Every test here boots real worker processes (fork) and asserts exact
envelope contents, so each test starts from a disarmed fault plan and a
scratch cache directory -- the CI chaos job runs this suite with ambient
``REPRO_FAULTS`` armed, and worker processes inherit the (cleaned) test
environment at fork time.
"""

from __future__ import annotations

import pytest

from repro.reliability import faults as faults_mod


@pytest.fixture(autouse=True)
def serve_scratch_env(monkeypatch, tmp_path):
    """Disarmed faults + scratch cache + fast supervision timings."""
    monkeypatch.setattr(faults_mod, "_plan", None)
    monkeypatch.setattr(faults_mod, "_override", False)
    monkeypatch.setattr(faults_mod, "_env_sig", None)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    for name in (
        "REPRO_SERVE_HOST",
        "REPRO_SERVE_PORT",
        "REPRO_SERVE_WORKERS",
        "REPRO_SERVE_QUEUE",
        "REPRO_SERVE_DEADLINE",
        "REPRO_SERVE_STALL",
        "REPRO_SERVE_BREAKER_FAILS",
        "REPRO_SERVE_BREAKER_RESET",
        "REPRO_SERVE_DRAIN",
        "REPRO_ROUTER_HOST",
        "REPRO_ROUTER_PORT",
        "REPRO_ROUTER_REPLICAS",
        "REPRO_ROUTER_QUEUE",
        "REPRO_ROUTER_PROBE_INTERVAL",
        "REPRO_ROUTER_LEASE",
        "REPRO_ROUTER_EJECT_FAILS",
        "REPRO_ROUTER_RETRIES",
        "REPRO_ROUTER_HEDGE_FLOOR",
        "REPRO_ROUTER_HEDGE_CAP",
        "REPRO_ROUTER_CONNECT_TIMEOUT",
        "REPRO_ROUTER_DRAIN",
    ):
        monkeypatch.delenv(name, raising=False)
    return tmp_path
