"""Circuit-breaker state machine, on an injected clock (no sleeping)."""

from __future__ import annotations

from repro.serve.breaker import BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(threshold=3, reset_after=5.0):
    clock = FakeClock()
    return CircuitBreaker(
        "test", threshold=threshold, reset_after=reset_after, clock=clock
    ), clock


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = make(threshold=3)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == "closed"

    def test_trips_at_threshold_and_blocks(self):
        breaker, _ = make(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after_s() > 0

    def test_half_open_after_cooldown_then_close_on_success(self):
        breaker, clock = make(threshold=1, reset_after=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single trial slot
        assert not breaker.allow()  # concurrent caller refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_reopens_on_failure(self):
        breaker, clock = make(threshold=1, reset_after=5.0)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        # Must wait out a fresh cooldown before the next trial.
        assert breaker.retry_after_s() > 4.9

    def test_trip_count_in_snapshot(self):
        breaker, clock = make(threshold=1, reset_after=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        breaker.allow()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.snapshot()["trips"] == 2


class TestBreakerBoard:
    def test_get_creates_once(self):
        board = BreakerBoard(threshold=2, reset_after=1.0)
        assert board.get("cache") is board.get("cache")

    def test_record_routes_and_snapshot(self):
        board = BreakerBoard(threshold=2, reset_after=1.0)
        board.record("cache", ok=False)
        board.record("cache", ok=False)
        board.record("verify", ok=True)
        snap = board.snapshot()
        assert snap["cache"]["state"] == "open"
        assert snap["verify"]["state"] == "closed"
