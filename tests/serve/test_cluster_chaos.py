"""Cluster failure drills: coalesced-leader death, hedging, replica crash.

Satellite coverage for the fault-tolerance claims: a coalesced upstream
call that dies must deliver the retried result to *every* waiter exactly
once (no hangs, no cross-delivery); a slow primary must be hedged and the
fast secondary's answer must win; a replica lost mid-burst must cost zero
answers and be ejected, then readmitted once it returns.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.obs.metrics import metrics
from repro.serve import protocol
from repro.serve.cluster.client import ResilientClient
from repro.serve.cluster.config import RouterConfig
from repro.serve.cluster.router import ClusterRouter
from repro.serve.config import ServeConfig
from repro.serve.jobs import DesignRequest, execute_request
from repro.serve.server import DesignServer
from tests.serve.fakes import FakeReplica

PAPER = "000010001011110111101111"


def run(coro):
    return asyncio.run(coro)


async def boot_router(ports, **overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        replicas=[("127.0.0.1", p) for p in ports],
        probe_interval=0.1,
        connect_timeout=1.0,
    )
    defaults.update(overrides)
    router = ClusterRouter(RouterConfig.from_env(**defaults))
    await router.start()
    return router


async def roundtrip(port, obj, timeout_s=60.0):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(protocol.canonical_json(obj) + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionResetError):
            pass
    assert line, "connection closed without a response"
    return json.loads(line)


class TestCoalescingUnderFailure:
    def test_dead_leader_call_retries_and_feeds_every_waiter_once(self):
        """The single-flight leader's first upstream attempt dies at the
        connection level; the retried (failed-over) result must reach all
        coalesced waiters exactly once."""

        async def scenario():
            # Replica A kills the connection on its first design; B is
            # slow enough that the burst piles onto one flight.
            fake_a = await FakeReplica(drop_designs=1).start()
            fake_b = await FakeReplica(design_delay_s=0.3).start()
            router = await boot_router(
                [fake_a.port, fake_b.port],
                hedge_cap=10.0,  # keep hedging out of this drill
                retries=3,
            )
            hits_before = metrics().get("serve.coalesce.hits")
            retries_before = metrics().get("serve.router.retries")
            try:
                base = {"trace": PAPER * 2, "order": 1}
                tasks = [
                    asyncio.ensure_future(
                        roundtrip(router.port, dict(base, id=f"w-{i}"))
                    )
                    for i in range(5)
                ]
                envelopes = await asyncio.wait_for(
                    asyncio.gather(*tasks), timeout=30.0
                )
                # Exactly one envelope per waiter, every one ok, every
                # one carrying its own id.
                assert [env["status"] for env in envelopes] == ["ok"] * 5
                assert sorted(env["id"] for env in envelopes) == sorted(
                    f"w-{i}" for i in range(5)
                )
                payloads = {
                    protocol.canonical_json(env["payload"])
                    for env in envelopes
                }
                assert len(payloads) == 1
                # One flight: A saw the doomed attempt, B served the
                # failover, the other four waiters coalesced.
                assert fake_a.design_calls + fake_b.design_calls <= 2
                assert fake_b.design_calls == 1
                assert metrics().get("serve.router.retries") > retries_before
                assert (
                    metrics().get("serve.coalesce.hits") - hits_before >= 4
                )
            finally:
                await router.shutdown()
                await fake_a.stop()
                await fake_b.stop()

        run(scenario())


class TestHedging:
    def test_slow_primary_is_hedged_and_fast_secondary_wins(self):
        async def scenario():
            # Deterministic selection picks replicas[0] first: make it
            # the slow one, hedge after 0.15s, and the fast secondary
            # must answer long before the primary's 5s stall.
            slow = await FakeReplica(design_delay_s=5.0).start()
            fast = await FakeReplica().start()
            router = await boot_router(
                [slow.port, fast.port],
                hedge_floor=0.05,
                hedge_cap=0.15,
            )
            hedges_before = metrics().get("serve.router.hedges")
            wins_before = metrics().get("serve.router.hedge_wins")
            try:
                started = time.monotonic()
                env = await asyncio.wait_for(
                    roundtrip(
                        router.port,
                        {"trace": PAPER * 2, "order": 1, "id": "hedged"},
                    ),
                    timeout=10.0,
                )
                elapsed = time.monotonic() - started
                assert env["status"] == "ok"
                assert env["id"] == "hedged"
                assert elapsed < 4.0  # did not wait out the slow primary
                assert metrics().get("serve.router.hedges") > hedges_before
                assert metrics().get("serve.router.hedge_wins") > wins_before
                assert slow.design_calls == 1
                assert fast.design_calls == 1
                want = protocol.canonical_json(
                    execute_request(
                        DesignRequest.from_payload(
                            {"trace": PAPER * 2, "order": 1}
                        )
                    )
                )
                assert protocol.canonical_json(env["payload"]) == want
            finally:
                await router.shutdown()
                await slow.stop()
                await fast.stop()

        run(scenario())


class TestReplicaCrash:
    def test_replica_lost_mid_burst_costs_nothing_then_readmits(self):
        """Two real DesignServers behind the router; one goes away mid
        burst.  Every accepted request must still come back ok and
        byte-identical, the lost replica must be ejected, and bringing it
        back on the same port must readmit it."""

        async def scenario():
            server_a = DesignServer(
                ServeConfig.from_env(
                    host="127.0.0.1", port=0, workers=1, queue_limit=8
                )
            )
            server_b = DesignServer(
                ServeConfig.from_env(
                    host="127.0.0.1", port=0, workers=1, queue_limit=8
                )
            )
            await server_a.start()
            await server_b.start()
            port_a = server_a.port
            router = await boot_router(
                [port_a, server_b.port],
                probe_interval=0.1,
                eject_fails=1,
                retries=3,
                hedge_cap=10.0,
            )
            ejects_before = metrics().get("serve.router.ejects")
            readmits_before = metrics().get("serve.router.readmits")
            client = ResilientClient(
                "127.0.0.1", router.port, pool_size=4, max_attempts=8
            )
            try:
                payloads = [
                    {
                        "trace": PAPER * (2 + i % 3),
                        "order": 1 + i % 2,
                        "id": f"burst-{i}",
                    }
                    for i in range(8)
                ]
                tasks = [
                    asyncio.ensure_future(
                        client.request(dict(p), timeout_s=60.0)
                    )
                    for p in payloads
                ]
                # Take replica A away while the burst is in flight.
                await asyncio.sleep(0.05)
                await server_a.shutdown()
                envelopes = await asyncio.wait_for(
                    asyncio.gather(*tasks), timeout=60.0
                )
                assert all(env is not None for env in envelopes)
                assert [env["status"] for env in envelopes] == ["ok"] * 8
                for env, payload in zip(envelopes, payloads):
                    assert env["id"] == payload["id"]
                    want = protocol.canonical_json(
                        execute_request(
                            DesignRequest.from_payload(
                                {k: v for k, v in payload.items() if k != "id"}
                            )
                        )
                    )
                    assert protocol.canonical_json(env["payload"]) == want

                # The dead replica is ejected (probe or traffic evidence).
                deadline = time.monotonic() + 10.0
                while (
                    metrics().get("serve.router.ejects") <= ejects_before
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.05)
                assert metrics().get("serve.router.ejects") > ejects_before

                # Bring A back on its original port: readmission is
                # automatic, no operator action.
                server_a2 = DesignServer(
                    ServeConfig.from_env(
                        host="127.0.0.1",
                        port=port_a,
                        workers=1,
                        queue_limit=8,
                    )
                )
                await server_a2.start()
                try:
                    deadline = time.monotonic() + 10.0
                    while (
                        metrics().get("serve.router.readmits")
                        <= readmits_before
                        and time.monotonic() < deadline
                    ):
                        await asyncio.sleep(0.05)
                    assert (
                        metrics().get("serve.router.readmits")
                        > readmits_before
                    )
                    health = await roundtrip(router.port, {"op": "healthz"})
                    assert health["ready"] is True
                    assert health["replicas_up"] == 2
                finally:
                    await server_a2.shutdown()
            finally:
                await client.close()
                await router.shutdown()
                await server_b.shutdown()

        run(scenario())
