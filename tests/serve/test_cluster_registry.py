"""ReplicaRegistry: leases, eject/readmit, holds, selection."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.obs.metrics import metrics
from repro.reliability import faults
from repro.serve.cluster.config import RouterConfig, parse_replica_spec
from repro.serve.cluster.registry import ReplicaRegistry
from tests.serve.fakes import FakeReplica, free_port


def run(coro):
    return asyncio.run(coro)


def make_config(*ports, **overrides):
    defaults = dict(
        replicas=[("127.0.0.1", port) for port in ports],
        probe_interval=0.05,
        eject_fails=2,
        connect_timeout=0.5,
    )
    defaults.update(overrides)
    return RouterConfig.from_env(**defaults)


class TestReplicaSpec:
    def test_parses_comma_separated_endpoints(self):
        assert parse_replica_spec("127.0.0.1:7477, 127.0.0.1:7479") == (
            ("127.0.0.1", 7477),
            ("127.0.0.1", 7479),
        )

    def test_empty_spec_is_empty(self):
        assert parse_replica_spec("") == ()

    @pytest.mark.parametrize(
        "bad", ["localhost", "host:notaport", "host:0", "host:70000", ":7477"]
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_replica_spec(bad)


class TestMembership:
    def test_ready_probe_admits_and_renews_lease(self):
        async def scenario():
            fake = await FakeReplica().start()
            registry = ReplicaRegistry(make_config(fake.port))
            try:
                replica = registry.replicas[0]
                assert not replica.up()
                assert await registry.probe_once(replica)
                assert replica.up()
                assert replica.probe_failures == 0
            finally:
                await registry.stop()
                await fake.stop()

        run(scenario())

    def test_eject_after_consecutive_failures_then_readmit(self):
        async def scenario():
            fake = await FakeReplica().start()
            registry = ReplicaRegistry(make_config(fake.port))
            ejects_before = metrics().get("serve.router.ejects")
            readmits_before = metrics().get("serve.router.readmits")
            try:
                replica = registry.replicas[0]
                await registry.probe_once(replica)
                assert replica.admitted

                fake.ready = False
                await registry.probe_once(replica)
                assert replica.admitted  # one failure < eject_fails
                await registry.probe_once(replica)
                assert not replica.admitted
                assert metrics().get("serve.router.ejects") - ejects_before == 1

                fake.ready = True
                await registry.probe_once(replica)
                assert replica.admitted  # first good probe readmits
                assert (
                    metrics().get("serve.router.readmits") - readmits_before
                    == 1
                )
            finally:
                await registry.stop()
                await fake.stop()

        run(scenario())

    def test_lease_expiry_stops_routing_without_a_probe(self):
        async def scenario():
            fake = await FakeReplica().start()
            registry = ReplicaRegistry(
                make_config(fake.port, probe_interval=0.04)
            )
            try:
                replica = registry.replicas[0]
                await registry.probe_once(replica)
                assert replica.up()
                await asyncio.sleep(0.2)  # > lease (3x probe interval)
                assert replica.admitted  # never ejected...
                assert not replica.up()  # ...but the lease lapsed
                assert registry.up_replicas() == []
            finally:
                await registry.stop()
                await fake.stop()

        run(scenario())

    def test_dead_endpoint_never_admits(self):
        async def scenario():
            registry = ReplicaRegistry(make_config(free_port()))
            try:
                replica = registry.replicas[0]
                assert not await registry.probe_once(replica)
                assert not replica.admitted
                assert replica.probe_failures == 1
            finally:
                await registry.stop()

        run(scenario())

    def test_router_probe_fail_fault_drops_probes(self):
        async def scenario():
            fake = await FakeReplica().start()
            registry = ReplicaRegistry(make_config(fake.port))
            try:
                replica = registry.replicas[0]
                await registry.probe_once(replica)
                assert replica.admitted
                with faults.inject_faults("router_probe_fail:2"):
                    await registry.probe_once(replica)
                    await registry.probe_once(replica)
                assert not replica.admitted
                # The probes were dropped before any socket I/O.
                assert fake.healthz_calls == 1
            finally:
                await registry.stop()
                await fake.stop()

        run(scenario())

    def test_request_path_death_counts_toward_ejection(self):
        async def scenario():
            fake = await FakeReplica().start()
            registry = ReplicaRegistry(make_config(fake.port, eject_fails=2))
            try:
                replica = registry.replicas[0]
                await registry.probe_once(replica)
                registry.record_dead(replica, "connection died")
                assert replica.admitted
                registry.record_dead(replica, "connection died")
                assert not replica.admitted
                assert replica.last_error == "connection died"
            finally:
                await registry.stop()
                await fake.stop()

        run(scenario())


class TestSelectionAndHolds:
    def test_pick_prefers_least_inflight(self):
        async def scenario():
            registry = ReplicaRegistry(make_config(free_port(), free_port()))
            try:
                loaded, idle = registry.replicas
                for replica in registry.replicas:
                    replica.admitted = True
                    replica.lease_until = time.monotonic() + 60.0
                loaded.inflight = 3
                assert registry.pick() is idle
            finally:
                await registry.stop()

        run(scenario())

    def test_pick_prefers_untried_but_falls_back(self):
        async def scenario():
            registry = ReplicaRegistry(make_config(free_port(), free_port()))
            try:
                first, second = registry.replicas
                for replica in registry.replicas:
                    replica.admitted = True
                    replica.lease_until = time.monotonic() + 60.0
                assert registry.pick(exclude=[first]) is second
                # With every candidate excluded, failover still picks one
                # rather than dropping the request.
                assert registry.pick(exclude=[first, second]) is not None
            finally:
                await registry.stop()

        run(scenario())

    def test_backpressure_hold_removes_from_selection(self):
        async def scenario():
            registry = ReplicaRegistry(make_config(free_port()))
            try:
                replica = registry.replicas[0]
                replica.admitted = True
                replica.lease_until = time.monotonic() + 60.0
                assert registry.available() == [replica]
                registry.record_backpressure(replica, 0.5)
                assert registry.available() == []
                assert registry.up_replicas() == [replica]
                hint = registry.earliest_hold_expiry_s()
                assert 0.0 < hint <= 0.5
            finally:
                await registry.stop()

        run(scenario())
