"""Request validation + the pure executor's byte-identity contract."""

from __future__ import annotations

import pytest

from repro.reliability.errors import DesignError, TraceError
from repro.serve.jobs import (
    DesignRequest,
    classify_error,
    execute_envelope,
    execute_request,
)
from repro.serve.protocol import canonical_json

PAPER = "000010001011110111101111"


class TestFromPayload:
    def test_trace_request(self):
        req = DesignRequest.from_payload(
            {"trace": PAPER, "order": 2, "verify": True, "id": 9}
        )
        assert req.trace == PAPER
        assert req.order == 2
        assert req.verify is True
        assert req.request_id == "9"

    def test_profile_request_defaults_order_to_profile(self):
        req = DesignRequest.from_payload(
            {"profile": {"order": 3, "counts": [[0, 1, 4], [7, 4, 4]]}}
        )
        assert req.order == 3
        assert req.profile == ((0, 1, 4), (7, 4, 4))

    def test_missing_source_rejected(self):
        with pytest.raises(TraceError):
            DesignRequest.from_payload({"order": 2})

    def test_non_binary_trace_rejected(self):
        with pytest.raises(TraceError, match="non-0/1"):
            DesignRequest.from_payload({"trace": "01x1"})

    def test_bad_profile_rejected(self):
        with pytest.raises(TraceError):
            DesignRequest.from_payload({"profile": {"order": 2}})
        with pytest.raises(TraceError):
            DesignRequest.from_payload(
                {"profile": {"order": 2, "counts": [[0, 5, 4]]}}  # ones>total
            )

    def test_order_beyond_profile_rejected(self):
        with pytest.raises(DesignError, match="cannot be extended"):
            DesignRequest.from_payload(
                {
                    "profile": {"order": 2, "counts": [[0, 1, 4]]},
                    "order": 5,
                }
            )

    def test_unknown_emit_rejected(self):
        with pytest.raises(DesignError, match="emit"):
            DesignRequest.from_payload({"trace": PAPER, "emit": ["edif"]})

    def test_bad_deadline_rejected(self):
        with pytest.raises(DesignError):
            DesignRequest.from_payload({"trace": PAPER, "deadline_s": -1})
        with pytest.raises(DesignError):
            DesignRequest.from_payload({"trace": PAPER, "deadline_s": "soon"})

    def test_client_errors_classify_as_400(self):
        for payload in ({"order": 2}, {"trace": "01x"}, {"trace": PAPER, "emit": ["x"]}):
            with pytest.raises((TraceError, DesignError)) as excinfo:
                DesignRequest.from_payload(payload)
            code, _kind = classify_error(excinfo.value)
            assert code == 400


class TestExecuteRequest:
    def test_payload_shape(self):
        req = DesignRequest.from_payload({"trace": PAPER * 4, "order": 2})
        payload = execute_request(req)
        assert payload["schema"] == "repro.design-response/1"
        assert payload["states"] == len(payload["machine"]["outputs"])
        assert payload["machine"]["transitions"]
        assert payload["area"]["area"] > 0
        assert "module fsm_predictor" in payload["verilog"]
        assert payload["request"]["source"] == "trace"

    def test_emit_controls_artifacts(self):
        base = {"trace": PAPER * 4, "order": 2}
        bare = execute_request(
            DesignRequest.from_payload({**base, "emit": []})
        )
        assert "verilog" not in bare and "vhdl" not in bare
        full = execute_request(
            DesignRequest.from_payload(
                {**base, "emit": ["verilog", "vhdl", "dot"]}
            )
        )
        assert "entity fsm_predictor" in full["vhdl"]
        assert full["dot"].startswith("digraph")

    def test_cache_and_verify_never_change_payload_bytes(self):
        """The degradation contract: no-cache / no-verify responses are
        byte-identical to the full-fat answer."""
        req = DesignRequest.from_payload(
            {"trace": PAPER * 4, "order": 3, "verify": True}
        )
        reference = canonical_json(execute_request(req))
        for kwargs in (
            {"use_cache": False},
            {"verify": False},
            {"use_cache": False, "verify": False},
        ):
            assert canonical_json(execute_request(req, **kwargs)) == reference

    def test_profile_equals_trace_derived_model(self):
        """Designing from a shipped Markov profile matches designing from
        the trace the profile was measured on."""
        from repro.core.markov import MarkovModel

        trace = [int(ch) for ch in PAPER * 4]
        model = MarkovModel.from_trace(trace, 2)
        profile_payload = {
            "profile": {
                "order": 2,
                "counts": [
                    [h, model.ones.get(h, 0), t]
                    for h, t in sorted(model.totals.items())
                ],
            },
        }
        via_profile = execute_request(
            DesignRequest.from_payload({**profile_payload, "emit": []})
        )
        via_trace = execute_request(
            DesignRequest.from_payload(
                {"trace": PAPER * 4, "order": 2, "emit": []}
            )
        )
        assert via_profile["machine"] == via_trace["machine"]
        assert via_profile["area"] == via_trace["area"]


class TestExecuteEnvelope:
    def test_ok_envelope(self):
        req = DesignRequest.from_payload(
            {"trace": PAPER * 2, "order": 2, "id": "a"}
        )
        env = execute_envelope(req, collect_metrics=True)
        assert (env["status"], env["code"], env["id"]) == ("ok", 200, "a")
        assert isinstance(env.get("metrics"), dict)

    def test_deadline_maps_to_504(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")  # force a cold compute
        req = DesignRequest.from_payload({"trace": PAPER * 2, "order": 2})
        env = execute_envelope(req, deadline_s=1e-9)
        assert (env["status"], env["code"]) == ("timeout", 504)

    def test_design_config_error_maps_to_400(self):
        req = DesignRequest.from_payload(
            {"trace": PAPER * 2, "bias_threshold": 7.0}
        )
        env = execute_envelope(req)
        assert (env["status"], env["code"]) == ("error", 400)

    def test_too_short_trace_maps_to_400(self):
        req = DesignRequest.from_payload({"trace": "01", "order": 5})
        env = execute_envelope(req)
        assert (env["status"], env["code"]) == ("error", 400)
        assert env["kind"] == "TraceError"
