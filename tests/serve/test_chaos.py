"""Serving-layer chaos: workers die mid-request, answers stay perfect.

Two attack modes:

* an external SIGKILL aimed at a random *busy* worker (the OOM-killer
  shape) while a burst of requests is in flight at ``workers=2``;
* the ``serve_worker_crash`` fault point armed by probability in the
  worker processes themselves (the CI serve job's configuration).

In both cases every accepted request must be answered, and every ``ok``
payload must be byte-identical to the batch reference
(:func:`execute_request` in-process -- the same bytes
``python -m repro serve --oneshot`` prints).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal

from repro.serve import protocol
from repro.serve.config import ServeConfig
from repro.serve.jobs import DesignRequest, execute_request
from repro.serve.loadgen import build_request_payload, run_loadgen
from repro.serve.server import DesignServer

PAPER = "000010001011110111101111"


def run(coro):
    return asyncio.run(coro)


async def roundtrip(port, obj, timeout_s=120.0):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(protocol.canonical_json(obj) + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionResetError):
            pass
    assert line, "connection closed without a response"
    return json.loads(line)


def _payloads(seed: int, count: int):
    return [build_request_payload(seed, index) for index in range(count)]


class TestSigkillChaos:
    def test_sigkill_random_busy_worker_mid_request(self):
        """SIGKILL a random busy worker while a burst is in flight at
        workers=2; every request is answered byte-identical to the batch
        reference and the pool ends the test healthy."""

        async def scenario():
            server = DesignServer(
                ServeConfig.from_env(
                    host="127.0.0.1", port=0, workers=2, queue_limit=64
                )
            )
            await server.start()
            try:
                payloads = _payloads(seed=11, count=8)
                # Guarantee sustained busy windows for the assassin:
                # a few deliberately heavier cold designs in the burst.
                payloads += [
                    {
                        "trace": PAPER * 30,
                        "order": order,
                        "id": f"heavy-{i}",
                        "dont_care_fraction": 0.01,
                    }
                    for i, order in enumerate((3, 4, 4))
                ]
                clients = [
                    asyncio.ensure_future(roundtrip(server.port, p))
                    for p in payloads
                ]

                async def assassin():
                    rng = random.Random(0xDEAD)
                    kills = 0
                    for _ in range(400):
                        await asyncio.sleep(0.02)
                        busy = [
                            w
                            for w in server.pool._workers.values()
                            if w.job is not None and not w.dead
                        ]
                        if busy and kills < 3:
                            victim = rng.choice(busy)
                            try:
                                os.kill(victim.process.pid, signal.SIGKILL)
                                kills += 1
                            except (ProcessLookupError, OSError):
                                pass
                        if all(c.done() for c in clients):
                            break
                    return kills

                kills = (
                    await asyncio.gather(assassin(), *clients)
                )[0]
                assert kills >= 1, "chaos never found a busy worker"
                for payload, client in zip(payloads, clients):
                    env = client.result()
                    assert env["status"] == "ok", env
                    want = protocol.canonical_json(
                        execute_request(DesignRequest.from_payload(payload))
                    )
                    assert protocol.canonical_json(env["payload"]) == want
                # The supervisor restored the pool.
                for _ in range(100):
                    if server.pool.workers_alive() == 2:
                        break
                    await asyncio.sleep(0.05)
                assert server.pool.workers_alive() == 2
            finally:
                await server.shutdown()

        run(scenario())


class TestFaultPointChaos:
    def test_loadgen_under_armed_worker_crashes(self, monkeypatch):
        """The CI serve-job scenario at test scale: crash probability
        armed in workers, concurrent seeded clients, zero lost and zero
        incorrect (byte-checked) responses."""
        monkeypatch.setenv("REPRO_FAULTS", "serve_worker_crash:0.15")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "42")

        async def scenario():
            server = DesignServer(
                ServeConfig.from_env(
                    host="127.0.0.1", port=0, workers=2, queue_limit=64
                )
            )
            await server.start()
            try:
                summary = await run_loadgen(
                    "127.0.0.1",
                    server.port,
                    clients=12,
                    requests=2,
                    seed=9,
                    check=True,
                )
                assert summary["passed"], summary
                assert summary["ok"] == 24
                assert summary["lost"] == []
                assert summary["incorrect"] == []
            finally:
                await server.shutdown()
            from repro.obs.metrics import metrics

            assert metrics().get("serve.worker_deaths") > 0, (
                "the fault plan never fired -- chaos proved nothing"
            )

        run(scenario())

    def test_worker_hang_is_detected_and_request_recovers(self, monkeypatch):
        """A wedged worker (serve_worker_hang) is SIGKILLed by the stall
        watchdog and its request is re-dispatched and answered."""
        monkeypatch.setenv("REPRO_FAULTS", "serve_worker_hang:1")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "0")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "60")
        monkeypatch.setenv("REPRO_SERVE_STALL", "0.5")

        async def scenario():
            server = DesignServer(
                ServeConfig.from_env(
                    host="127.0.0.1", port=0, workers=1, queue_limit=8
                )
            )
            await server.start()
            try:
                payload = {
                    "trace": PAPER * 4,
                    "order": 2,
                    "id": "hung",
                    "deadline_s": 60.0,
                }
                env = await roundtrip(server.port, payload)
                assert env["status"] == "ok", env
                want = protocol.canonical_json(
                    execute_request(DesignRequest.from_payload(payload))
                )
                assert protocol.canonical_json(env["payload"]) == want
            finally:
                await server.shutdown()
            from repro.obs.metrics import metrics

            assert metrics().get("serve.watchdog_stall_kills") >= 1

        run(scenario())
