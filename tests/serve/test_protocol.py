"""Wire-protocol unit tests: parsing, canonical bytes, envelopes."""

from __future__ import annotations

import json

import pytest

from repro.serve import protocol


class TestParseRequest:
    def test_minimal_design_request_defaults_op(self):
        obj = protocol.parse_request(b'{"trace": "0101", "order": 1}')
        assert obj["op"] == "design"

    def test_explicit_ops_accepted(self):
        for op in protocol.OPS:
            obj = protocol.parse_request(
                json.dumps({"op": op}).encode("utf-8")
            )
            assert obj["op"] == op

    def test_garbage_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(b"not json {{{")

    def test_non_object_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_request(b"[1, 2, 3]")

    def test_unknown_op_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.parse_request(b'{"op": "frobnicate"}')


class TestCanonicalJson:
    def test_key_order_invariant(self):
        a = protocol.canonical_json({"b": 1, "a": {"y": 2, "x": 3}})
        b = protocol.canonical_json({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b

    def test_compact_no_whitespace(self):
        blob = protocol.canonical_json({"a": [1, 2], "b": "c"})
        assert b" " not in blob and b"\n" not in blob


class TestEnvelopes:
    def test_ok_response_shape(self):
        env = protocol.ok_response({"x": 1}, request_id="r1")
        assert env["status"] == "ok"
        assert env["code"] == 200
        assert env["id"] == "r1"
        assert env["payload"] == {"x": 1}
        assert "degraded" not in env

    def test_ok_response_degraded_sorted(self):
        env = protocol.ok_response({}, degraded={"no-verify", "no-cache"})
        assert env["degraded"] == ["no-cache", "no-verify"]

    def test_rejected_carries_retry_hint(self):
        env = protocol.rejected_response("queue full", 1.23456)
        assert env["status"] == "rejected"
        assert env["code"] == 503
        assert env["retry_after_s"] == pytest.approx(1.235)

    def test_error_and_timeout_codes(self):
        assert protocol.error_response(400, "bad")["code"] == 400
        assert protocol.error_response(500, "boom")["code"] == 500
        timeout = protocol.timeout_response("late")
        assert (timeout["status"], timeout["code"]) == ("timeout", 504)

    def test_envelope_roundtrips_through_canonical_json(self):
        env = protocol.ok_response({"machine": {"start": 0}}, request_id=7)
        again = json.loads(protocol.canonical_json(env))
        assert again == env
