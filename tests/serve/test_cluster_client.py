"""ResilientClient: pooling, reconnect-with-backoff, retry budget."""

from __future__ import annotations

import asyncio

from repro.reliability import faults
from repro.serve.cluster.client import ResilientClient
from tests.serve.fakes import FakeReplica, free_port


def run(coro):
    return asyncio.run(coro)


def make_client(port, **overrides):
    defaults = dict(
        pool_size=1,
        max_attempts=3,
        connect_timeout_s=1.0,
        backoff_base_s=0.001,
        backoff_cap_s=0.01,
    )
    defaults.update(overrides)
    return ResilientClient("127.0.0.1", port, **defaults)


class TestPooling:
    def test_sequential_requests_reuse_one_connection(self):
        async def scenario():
            fake = await FakeReplica().start()
            client = make_client(fake.port)
            try:
                for _ in range(3):
                    env = await client.request({"op": "ping"})
                    assert env["status"] == "ok"
                assert client.counters["dials"] == 1
                assert client.counters["reuses"] == 2
            finally:
                await client.close()
                await fake.stop()

        run(scenario())

    def test_close_keeps_client_usable(self):
        async def scenario():
            fake = await FakeReplica().start()
            client = make_client(fake.port)
            try:
                assert (await client.request({"op": "ping"}))["status"] == "ok"
                await client.close()
                # The pool is empty but the next request just dials fresh.
                assert (await client.request({"op": "ping"}))["status"] == "ok"
                assert client.counters["dials"] == 2
            finally:
                await client.close()
                await fake.stop()

        run(scenario())


class TestReconnect:
    def test_dropped_connection_is_retried_on_a_fresh_dial(self):
        async def scenario():
            fake = await FakeReplica(drop_designs=1).start()
            client = make_client(fake.port)
            try:
                payload = {"op": "ping"}
                # Prime a pooled connection, then have the fake kill it
                # mid-design: the retry must transparently redial.
                assert (await client.request(payload))["status"] == "ok"
                env = await client.request(
                    {"trace": "0101" * 16, "order": 1, "id": "retry-me"}
                )
                assert env["status"] == "ok"
                assert env["id"] == "retry-me"
                assert client.counters["reconnects"] >= 1
                assert client.counters["dials"] >= 2
                assert fake.dropped == 1
            finally:
                await client.close()
                await fake.stop()

        run(scenario())

    def test_budget_exhaustion_returns_none(self):
        async def scenario():
            client = make_client(free_port(), max_attempts=2)
            try:
                env = await client.request({"op": "ping"}, timeout_s=1.0)
                assert env is None
                assert client.counters["exhausted"] == 1
                assert client.counters["reconnects"] == 1
            finally:
                await client.close()

        run(scenario())

    def test_per_request_budget_overrides_client_default(self):
        async def scenario():
            client = make_client(free_port(), max_attempts=8)
            try:
                env = await client.request(
                    {"op": "ping"}, timeout_s=1.0, max_attempts=1
                )
                assert env is None
                # One attempt: no reconnect ever happened.
                assert client.counters["reconnects"] == 0
            finally:
                await client.close()

        run(scenario())


class TestPartitionFault:
    def test_replica_partition_fault_exhausts_then_recovers(self):
        async def scenario():
            fake = await FakeReplica().start()
            client = make_client(fake.port, max_attempts=2)
            try:
                with faults.inject_faults("replica_partition:2"):
                    env = await client.request({"op": "ping"}, timeout_s=1.0)
                    assert env is None  # both attempts hit the partition
                # The partition fires before the dial: no socket was used.
                assert client.counters["dials"] == 0
                env = await client.request({"op": "ping"})
                assert env["status"] == "ok"
            finally:
                await client.close()
                await fake.stop()

        run(scenario())
