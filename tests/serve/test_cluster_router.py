"""ClusterRouter end-to-end: wire compatibility, coalescing, shedding."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.metrics import metrics
from repro.serve import protocol
from repro.serve.cluster.config import RouterConfig
from repro.serve.cluster.router import ClusterRouter
from repro.serve.jobs import DesignRequest, execute_request
from tests.serve.fakes import FakeReplica, free_port

PAPER = "000010001011110111101111"


def run(coro):
    return asyncio.run(coro)


async def boot_router(ports, **overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        replicas=[("127.0.0.1", p) for p in ports],
        probe_interval=0.1,
        connect_timeout=1.0,
    )
    defaults.update(overrides)
    router = ClusterRouter(RouterConfig.from_env(**defaults))
    await router.start()
    return router


async def roundtrip(port, obj, timeout_s=60.0):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(protocol.canonical_json(obj) + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionResetError):
            pass
    assert line, "connection closed without a response"
    return json.loads(line)


class TestWireCompatibility:
    def test_requires_at_least_one_replica(self):
        with pytest.raises(ValueError):
            ClusterRouter(RouterConfig.from_env(replicas=[]))

    def test_design_through_router_matches_batch_reference(self):
        async def scenario():
            fakes = [await FakeReplica().start(), await FakeReplica().start()]
            router = await boot_router([f.port for f in fakes])
            try:
                payload = {
                    "trace": PAPER * 4,
                    "order": 2,
                    "verify": True,
                    "id": "via-router",
                }
                env = await roundtrip(router.port, payload)
                assert (env["status"], env["code"]) == ("ok", 200)
                assert env["id"] == "via-router"
                want = protocol.canonical_json(
                    execute_request(DesignRequest.from_payload(payload))
                )
                assert protocol.canonical_json(env["payload"]) == want
            finally:
                await router.shutdown()
                for fake in fakes:
                    await fake.stop()

        run(scenario())

    def test_ping_healthz_metrics_ops(self):
        async def scenario():
            fakes = [await FakeReplica().start(), await FakeReplica().start()]
            router = await boot_router([f.port for f in fakes])
            try:
                ping = await roundtrip(router.port, {"op": "ping", "id": 1})
                assert (ping["status"], ping["op"]) == ("ok", "ping")

                health = await roundtrip(router.port, {"op": "healthz"})
                assert health["ready"] is True
                assert health["role"] == "router"
                assert health["replicas_up"] == 2
                assert health["replicas_total"] == 2

                stats = await roundtrip(router.port, {"op": "metrics"})
                assert (
                    stats["metrics_schema"] == "repro.serve-router-metrics/1"
                )
                assert stats["queue_limit"] == router.config.queue_limit
                assert stats["hedge_delay_s"] > 0
                assert len(stats["replicas"]) == 2
            finally:
                await router.shutdown()
                for fake in fakes:
                    await fake.stop()

        run(scenario())

    def test_malformed_and_invalid_requests_rejected_at_the_edge(self):
        async def scenario():
            fake = await FakeReplica().start()
            router = await boot_router([fake.port])
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                writer.write(b"not json\n")
                await writer.drain()
                bad = json.loads(await reader.readline())
                assert bad["code"] == 400
                assert bad["kind"] == "ProtocolError"
                writer.close()

                # Invalid design payloads are 400'd locally: the replica
                # never sees them.
                env = await roundtrip(
                    router.port, {"trace": "01x", "order": 1, "id": "bad"}
                )
                assert (env["status"], env["code"]) == ("error", 400)
                assert env["kind"] == "TraceError"
                assert env["id"] == "bad"
                assert fake.design_calls == 0
            finally:
                await router.shutdown()
                await fake.stop()

        run(scenario())


class TestCoalescing:
    def test_same_digest_burst_collapses_to_one_upstream_call(self):
        async def scenario():
            fake = await FakeReplica(design_delay_s=0.3).start()
            router = await boot_router([fake.port], hedge_cap=10.0)
            hits_before = metrics().get("serve.coalesce.hits")
            try:
                base = {"trace": PAPER * 2, "order": 1}
                tasks = [
                    asyncio.ensure_future(
                        roundtrip(router.port, dict(base, id=f"burst-{i}"))
                    )
                    for i in range(8)
                ]
                envelopes = await asyncio.wait_for(
                    asyncio.gather(*tasks), timeout=30.0
                )
                assert fake.design_calls == 1
                assert (
                    metrics().get("serve.coalesce.hits") - hits_before >= 7
                )
                payloads = {
                    protocol.canonical_json(env["payload"])
                    for env in envelopes
                }
                assert len(payloads) == 1  # byte-identical fan-out
                assert sorted(env["id"] for env in envelopes) == sorted(
                    f"burst-{i}" for i in range(8)
                )
            finally:
                await router.shutdown()
                await fake.stop()

        run(scenario())

    def test_mixed_digest_burst_never_cross_delivers(self):
        async def scenario():
            fake = await FakeReplica(design_delay_s=0.2).start()
            router = await boot_router([fake.port], hedge_cap=10.0)
            try:
                payload_a = {"trace": PAPER * 2, "order": 1, "id": "a"}
                payload_b = {"trace": PAPER * 3, "order": 2, "id": "b"}
                env_a, env_b = await asyncio.wait_for(
                    asyncio.gather(
                        roundtrip(router.port, payload_a),
                        roundtrip(router.port, payload_b),
                    ),
                    timeout=30.0,
                )
                assert fake.design_calls == 2
                assert env_a["id"] == "a" and env_b["id"] == "b"
                for env, payload in ((env_a, payload_a), (env_b, payload_b)):
                    want = protocol.canonical_json(
                        execute_request(DesignRequest.from_payload(payload))
                    )
                    assert protocol.canonical_json(env["payload"]) == want
            finally:
                await router.shutdown()
                await fake.stop()

        run(scenario())


class TestShedding:
    def test_no_up_replicas_sheds_with_503(self):
        async def scenario():
            router = await boot_router([free_port()], probe_interval=0.2)
            try:
                health = await roundtrip(router.port, {"op": "healthz"})
                assert health["ready"] is False
                env = await roundtrip(
                    router.port, {"trace": PAPER * 2, "order": 1, "id": "x"}
                )
                assert (env["status"], env["code"]) == ("rejected", 503)
                assert env["reason"] == "no replicas available"
                assert env["retry_after_s"] > 0
            finally:
                await router.shutdown()

        run(scenario())

    def test_backpressure_aggregates_replica_503s(self):
        async def scenario():
            fake = await FakeReplica(
                reject_all=True, retry_after_s=0.5
            ).start()
            router = await boot_router([fake.port], retries=2)
            shed_before = metrics().get("serve.router.shed_backpressure")
            try:
                first = await roundtrip(
                    router.port, {"trace": PAPER * 2, "order": 1, "id": "f"}
                )
                # The replica's own 503 passes through...
                assert (first["status"], first["code"]) == ("rejected", 503)
                # ...and puts it on hold: the next request sheds at the
                # router without an upstream round trip.
                calls_after_first = fake.design_calls
                second = await roundtrip(
                    router.port, {"trace": PAPER * 2, "order": 1, "id": "g"}
                )
                assert (second["status"], second["code"]) == ("rejected", 503)
                assert second["reason"] == "cluster saturated"
                assert 0 < second["retry_after_s"] <= 0.5
                assert fake.design_calls == calls_after_first
                assert (
                    metrics().get("serve.router.shed_backpressure")
                    - shed_before
                    >= 1
                )
            finally:
                await router.shutdown()
                await fake.stop()

        run(scenario())


class TestDrain:
    def test_drain_closes_listener_and_is_idempotent(self):
        async def scenario():
            fake = await FakeReplica().start()
            router = await boot_router([fake.port])
            port = router.port
            serve_task = asyncio.ensure_future(router.serve_until_shutdown())
            assert (await roundtrip(port, {"op": "ping"}))["status"] == "ok"
            await router.shutdown()
            await router.shutdown()  # idempotent
            await asyncio.wait_for(serve_task, timeout=5.0)
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)
            await fake.stop()

        run(scenario())
