"""Scripted in-process replicas for the cluster-router suite.

A :class:`FakeReplica` speaks just enough ``repro.serve/1`` to stand in
for a :class:`~repro.serve.server.DesignServer` behind the router, with
failure behaviour injected per instance instead of per process:

* ``ready`` (mutable) -- what ``healthz`` reports, so membership tests
  toggle a replica "down" without tearing sockets;
* ``drop_designs`` -- the next N design requests close the connection
  without answering (a crash / partition as the router sees it);
* ``design_delay_s`` -- served designs stall first (hedge-delay bait);
* ``reject_all`` -- every design answers 503 with ``retry_after_s``
  (a saturated replica, for backpressure aggregation tests).

Designs that *are* answered run :func:`execute_envelope` in-process, so
responses carry the same canonical payload bytes a real replica would --
byte-identity assertions stay meaningful against fakes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Set

from repro.serve import protocol
from repro.serve.jobs import DesignRequest, execute_envelope


class FakeReplica:
    """One scripted replica endpoint on an ephemeral port."""

    def __init__(
        self,
        *,
        ready: bool = True,
        design_delay_s: float = 0.0,
        drop_designs: int = 0,
        reject_all: bool = False,
        retry_after_s: float = 0.5,
    ):
        self.ready = ready
        self.design_delay_s = design_delay_s
        self.drop_designs = drop_designs
        self.reject_all = reject_all
        self.retry_after_s = retry_after_s
        self.design_calls = 0
        self.healthz_calls = 0
        self.dropped = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set[asyncio.Task] = set()

    async def start(self) -> "FakeReplica":
        self._server = await asyncio.start_server(
            self._handle,
            host="127.0.0.1",
            port=0,
            limit=protocol.MAX_LINE_BYTES,
        )
        return self

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        # Cancel stalled handlers (a slow fake mid-``design_delay_s``)
        # instead of waiting them out at teardown.
        for task in list(self._handlers):
            task.cancel()
        await asyncio.gather(*self._handlers, return_exceptions=True)
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
        except asyncio.TimeoutError:
            pass
        self._server = None

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                obj = json.loads(line)
                op = obj.get("op", "design")
                request_id = obj.get("id")
                if op == "healthz":
                    self.healthz_calls += 1
                    envelope = protocol.response(
                        "ok" if self.ready else "error",
                        200 if self.ready else 503,
                        request_id,
                        op="healthz",
                        ready=self.ready,
                    )
                elif op == "ping":
                    envelope = protocol.response(
                        "ok", 200, request_id, op="ping"
                    )
                elif op == "metrics":
                    envelope = protocol.response(
                        "ok", 200, request_id, op="metrics", counters={}
                    )
                else:
                    self.design_calls += 1
                    if self.drop_designs > 0:
                        self.drop_designs -= 1
                        self.dropped += 1
                        writer.close()
                        return
                    if self.design_delay_s:
                        await asyncio.sleep(self.design_delay_s)
                    if self.reject_all:
                        envelope = protocol.rejected_response(
                            "fake overloaded", self.retry_after_s, request_id
                        )
                    else:
                        request = DesignRequest.from_payload(obj)
                        envelope = execute_envelope(
                            request, deadline_s=request.deadline_s
                        )
                        envelope.pop("id", None)
                        if request_id is not None:
                            envelope["id"] = request_id
                writer.write(protocol.canonical_json(envelope) + b"\n")
                await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
            except OSError:
                pass


def free_port() -> int:
    """A TCP port with no listener (bound, inspected, released)."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
