"""Regression tests for the loadgen latency quantile math.

The CI serve job runs closed-loop with only a handful of latency samples
per client, so small-n quantiles matter: the old floor-rank math made
p90 of two samples return the *minimum* and p90 of three return the
median.  The fixed ``_quantile`` matches numpy's default linear
interpolation; values below are pinned by hand.
"""

import pytest

from repro.serve.loadgen import _quantile


class TestQuantileSmallN:
    def test_empty(self):
        assert _quantile([], 0.5) == 0.0
        assert _quantile([], 0.99) == 0.0

    def test_n1_all_quantiles_are_the_sample(self):
        assert _quantile([5.0], 0.50) == pytest.approx(5.0)
        assert _quantile([5.0], 0.90) == pytest.approx(5.0)
        assert _quantile([5.0], 0.99) == pytest.approx(5.0)

    def test_n2_interpolates_toward_max(self):
        values = [1.0, 3.0]
        assert _quantile(values, 0.50) == pytest.approx(2.0)
        # Pre-fix: int(0.9 * 1) == 0 returned 1.0 -- the MINIMUM.
        assert _quantile(values, 0.90) == pytest.approx(2.8)
        assert _quantile(values, 0.99) == pytest.approx(2.98)

    def test_n3_tail_quantiles_reach_past_median(self):
        values = [1.0, 2.0, 10.0]
        assert _quantile(values, 0.50) == pytest.approx(2.0)
        # Pre-fix: int(0.9 * 2) == 1 returned the median 2.0.
        assert _quantile(values, 0.90) == pytest.approx(8.4)
        assert _quantile(values, 0.99) == pytest.approx(9.84)

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _quantile(values, 0.0) == pytest.approx(1.0)
        assert _quantile(values, 1.0) == pytest.approx(4.0)

    def test_matches_linear_interpolation_convention(self):
        # Same convention as numpy.quantile's default for a larger sample.
        values = [float(v) for v in range(10)]  # 0..9
        assert _quantile(values, 0.90) == pytest.approx(8.1)
        assert _quantile(values, 0.25) == pytest.approx(2.25)

    def test_monotone_in_q(self):
        values = [0.3, 0.1, 4.0, 2.5, 0.9]
        values.sort()
        qs = [i / 20 for i in range(21)]
        results = [_quantile(values, q) for q in qs]
        assert results == sorted(results)
        assert results[0] == pytest.approx(values[0])
        assert results[-1] == pytest.approx(values[-1])
