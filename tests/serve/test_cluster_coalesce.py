"""SingleFlight: one upstream call per key, copies out, no wedged waiters."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.metrics import metrics
from repro.serve.cluster.coalesce import SingleFlight


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_same_key_runs_supplier_once(self):
        async def scenario():
            flights = SingleFlight()
            calls = {"n": 0}
            release = asyncio.Event()

            async def supplier():
                calls["n"] += 1
                await release.wait()
                return {"status": "ok", "payload": {"x": 1}}

            hits_before = metrics().get("serve.coalesce.hits")
            tasks = [
                asyncio.ensure_future(flights.run(b"key", supplier))
                for _ in range(5)
            ]
            await asyncio.sleep(0.01)  # let every waiter park
            release.set()
            results = await asyncio.gather(*tasks)
            assert calls["n"] == 1
            coalesced_flags = sorted(flag for _env, flag in results)
            assert coalesced_flags == [False, True, True, True, True]
            assert all(
                env == {"status": "ok", "payload": {"x": 1}}
                for env, _flag in results
            )
            assert metrics().get("serve.coalesce.hits") - hits_before == 4
            assert flights.inflight() == 0

        run(scenario())

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flights = SingleFlight()
            calls = []

            def supplier_for(key):
                async def supplier():
                    calls.append(key)
                    await asyncio.sleep(0.01)
                    return {"status": "ok", "key": key}

                return supplier

            results = await asyncio.gather(
                flights.run("a", supplier_for("a")),
                flights.run("b", supplier_for("b")),
            )
            assert sorted(calls) == ["a", "b"]
            assert {env["key"] for env, _flag in results} == {"a", "b"}
            assert [flag for _env, flag in results] == [False, False]

        run(scenario())

    def test_waiters_get_independent_copies(self):
        async def scenario():
            flights = SingleFlight()
            release = asyncio.Event()

            async def supplier():
                await release.wait()
                return {"status": "ok", "payload": {"nested": [1, 2]}}

            tasks = [
                asyncio.ensure_future(flights.run(b"k", supplier))
                for _ in range(3)
            ]
            await asyncio.sleep(0.01)
            release.set()
            results = await asyncio.gather(*tasks)
            first = results[0][0]
            first["id"] = "mutated"
            first["payload"]["nested"].append(99)
            for env, _flag in results[1:]:
                assert "id" not in env
                assert env["payload"]["nested"] == [1, 2]

        run(scenario())

    def test_completed_flight_does_not_serve_late_arrivals(self):
        async def scenario():
            flights = SingleFlight()
            calls = {"n": 0}

            async def supplier():
                calls["n"] += 1
                return {"status": "ok", "call": calls["n"]}

            env1, flag1 = await flights.run(b"k", supplier)
            env2, flag2 = await flights.run(b"k", supplier)
            # Sequential calls each run the supplier: coalescing is for
            # *concurrent* work; memoization is the cache's job.
            assert (flag1, flag2) == (False, False)
            assert (env1["call"], env2["call"]) == (1, 2)

        run(scenario())


class TestFailurePropagation:
    def test_leader_exception_reaches_every_waiter_then_clears(self):
        async def scenario():
            flights = SingleFlight()
            release = asyncio.Event()

            async def boom():
                await release.wait()
                raise RuntimeError("upstream died")

            tasks = [
                asyncio.ensure_future(flights.run(b"k", boom))
                for _ in range(4)
            ]
            await asyncio.sleep(0.01)
            release.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert len(results) == 4
            assert all(isinstance(r, RuntimeError) for r in results)
            assert flights.inflight() == 0

            # The table is clean: a new call runs fresh and succeeds.
            async def fine():
                return {"status": "ok"}

            env, coalesced = await flights.run(b"k", fine)
            assert env == {"status": "ok"}
            assert coalesced is False

        run(scenario())

    def test_cancelled_waiter_does_not_kill_the_leader(self):
        async def scenario():
            flights = SingleFlight()
            release = asyncio.Event()

            async def supplier():
                await release.wait()
                return {"status": "ok"}

            leader = asyncio.ensure_future(flights.run(b"k", supplier))
            await asyncio.sleep(0.01)
            waiter = asyncio.ensure_future(flights.run(b"k", supplier))
            await asyncio.sleep(0.01)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            release.set()
            env, coalesced = await leader
            assert env == {"status": "ok"}
            assert coalesced is False

        run(scenario())
