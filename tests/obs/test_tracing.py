"""Span tracing: disarmed-by-default, sinks, nesting, and overhead."""

from __future__ import annotations

import json
import time

from repro.obs import tracing
from repro.obs.tracing import (
    NULL_SPAN,
    profile_rows,
    render_profile,
    reset_tracing,
    set_tracing,
    spans,
    trace_span,
    tracing_armed,
)


class TestDisarmed:
    def test_disarmed_by_default(self):
        assert not tracing_armed()

    def test_disarmed_returns_shared_null_span(self):
        assert trace_span("design.cover", order=4) is NULL_SPAN

    def test_disarmed_records_nothing(self):
        with trace_span("design.cover", order=4) as span:
            span.set(product_terms=3)
        assert spans() == []

    def test_disarmed_overhead_is_negligible(self):
        """The acceptance bound: with tracing off, an instrumented stage
        pays only the armed-check.  At <5us per span and one span per
        *stage* (never per bit/branch), that is far below 2% of any
        pipeline stage or simulation call, which take milliseconds."""
        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with trace_span("overhead.probe", size=1):
                pass
        per_call = (time.perf_counter() - start) / n
        assert per_call < 50e-6, f"disarmed span cost {per_call * 1e6:.1f}us"

    def test_env_arms_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracing_armed()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not tracing_armed()
        monkeypatch.setenv("REPRO_TRACE_FILE", "/tmp/x.jsonl")
        assert tracing_armed()


class TestArmedMemorySink:
    def test_span_records_timing_attrs_outcome(self):
        set_tracing(True)
        with trace_span("design.cover", order=4) as span:
            span.set(product_terms=3)
        (record,) = spans()
        assert record["span"] == "design.cover"
        assert record["outcome"] == "ok"
        assert record["attrs"] == {"order": 4, "product_terms": 3}
        assert record["dur_s"] >= 0
        assert record["parent_id"] is None

    def test_nesting_links_parents(self):
        set_tracing(True)
        with trace_span("outer"):
            with trace_span("inner"):
                pass
        inner, outer = spans()
        assert inner["span"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_exception_outcome_and_propagation(self):
        set_tracing(True)
        try:
            with trace_span("explodes"):
                raise KeyError("x")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("span swallowed the exception")
        (record,) = spans()
        assert record["outcome"] == "KeyError"

    def test_reset_clears_sink(self):
        set_tracing(True)
        with trace_span("a"):
            pass
        reset_tracing()
        assert spans() == []


class TestJsonlSink:
    def test_spans_append_as_json_lines(self, monkeypatch, tmp_path):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", str(path))
        with trace_span("design.cover", order=2) as span:
            span.set(product_terms=1)
        with trace_span("design.regex"):
            pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["span"] == "design.cover"
        assert records[0]["schema"] == tracing.SPAN_SCHEMA
        assert records[0]["attrs"]["product_terms"] == 1
        assert all("pid" in record for record in records)

    def test_workers_append_to_the_same_file(self, monkeypatch, tmp_path):
        from repro.perf.parallel import parallel_map

        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", str(path))
        parallel_map(_traced_shard, [1, 2, 3, 4], jobs=2)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        worker_tasks = [
            record
            for record in records
            if record["span"] == "parallel.task"
            and record["attrs"].get("where") == "worker"
        ]
        assert len(worker_tasks) == 4

    def test_unwritable_file_never_breaks_the_run(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TRACE_FILE", "/nonexistent-dir-xyz/trace.jsonl"
        )
        with trace_span("still.works"):
            pass  # no exception is the assertion


class TestProfileAggregation:
    def test_profile_rows_aggregate_by_stage(self):
        set_tracing(True)
        for _ in range(3):
            with trace_span("stage.a"):
                pass
        with trace_span("stage.b"):
            pass
        rows = {row[0]: row for row in profile_rows()}
        assert rows["stage.a"][1] == 3
        assert rows["stage.b"][1] == 1

    def test_render_profile_is_a_table(self):
        set_tracing(True)
        with trace_span("stage.a"):
            pass
        text = render_profile()
        assert "stage.a" in text
        assert "total_s" in text


class TestFigureOutputUnaffected:
    def test_design_flow_output_identical_armed_vs_disarmed(self, monkeypatch, tmp_path):
        """Instrumentation must observe, never alter: the same design run
        with tracing armed and disarmed renders identically (with the
        cache off so both legs do the full computation)."""
        from repro.core.pipeline import design_predictor

        monkeypatch.setenv("REPRO_CACHE", "0")
        trace = [int(c) for c in "000010001011110111101111"] * 4

        set_tracing(False)
        disarmed = design_predictor(trace, order=3)
        set_tracing(True)
        armed = design_predictor(trace, order=3)

        assert disarmed.summary() == armed.summary()
        assert disarmed.machine.describe() == armed.machine.describe()
        assert spans(), "armed leg recorded no spans"


def _traced_shard(x: int) -> int:
    return x + 1
