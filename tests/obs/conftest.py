"""Fixtures for the observability suite.

These tests assert exact counter totals and disarmed-by-default
behaviour, so each one starts with a clean registry, disarmed tracing,
and no ambient fault plan or trace file (the CI chaos and tracing jobs
arm both suite-wide).
"""

from __future__ import annotations

import pytest

import sys

import repro.obs.metrics  # noqa: F401  (binds the real submodule below)
import repro.obs.tracing  # noqa: F401

# `repro.obs` re-exports a `metrics()` *function*, which shadows the
# submodule as a package attribute; go through sys.modules instead.
metrics_mod = sys.modules["repro.obs.metrics"]
tracing_mod = sys.modules["repro.obs.tracing"]
from repro.perf import cache as cache_mod
from repro.reliability import faults as faults_mod


@pytest.fixture(autouse=True)
def clean_observability(monkeypatch):
    monkeypatch.setattr(faults_mod, "_plan", None)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
    monkeypatch.setattr(tracing_mod, "_runtime_armed", False)
    tracing_mod.reset_tracing()
    metrics_mod.reset_metrics()
    yield
    tracing_mod.reset_tracing()
    metrics_mod.reset_metrics()


@pytest.fixture
def tmp_cache(monkeypatch, tmp_path):
    """A fresh, enabled cache directory with zeroed counters."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
    monkeypatch.setattr(cache_mod, "_runtime_enabled", True)
    cache_mod.reset_cache_stats()
    return tmp_path / "cache"
