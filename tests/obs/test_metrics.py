"""MetricsRegistry semantics and the worker-aggregation correctness fix."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, metrics, reset_metrics
from repro.perf.cache import cache_stats, cached, digest_of, reset_cache_stats
from repro.perf.parallel import parallel_map


def _cached_square(x: int) -> int:
    """Picklable shard doing one cache round per item (distinct keys)."""
    key = digest_of("obs-aggregation-shard", x)
    return cached("obstest", key, lambda: x * x)


class TestRegistry:
    def test_incr_and_get(self):
        reg = MetricsRegistry()
        assert reg.get("a.b") == 0
        reg.incr("a.b")
        reg.incr("a.b", 4)
        assert reg.get("a.b") == 5

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.incr("x")
        snap = reg.snapshot()
        reg.incr("x")
        assert snap == {"x": 1}
        assert reg.get("x") == 2

    def test_diff_since_only_positive_gains(self):
        reg = MetricsRegistry()
        reg.incr("kept", 2)
        before = reg.snapshot()
        reg.incr("kept")
        reg.incr("new", 3)
        assert reg.diff_since(before) == {"kept": 1, "new": 3}

    def test_merge_folds_deltas(self):
        reg = MetricsRegistry()
        reg.incr("cache.hits", 2)
        reg.merge({"cache.hits": 3, "cache.misses": 1})
        reg.merge(None)
        reg.merge({})
        assert reg.get("cache.hits") == 5
        assert reg.get("cache.misses") == 1

    def test_reset_by_prefix(self):
        reg = MetricsRegistry()
        reg.incr("cache.hits")
        reg.incr("parallel.retries")
        reg.reset(prefix="cache.")
        assert reg.get("cache.hits") == 0
        assert reg.get("parallel.retries") == 1

    def test_rows_sorted_and_filtered(self):
        reg = MetricsRegistry()
        reg.incr("b.two", 2)
        reg.incr("a.one")
        assert reg.rows() == [("a.one", 1), ("b.two", 2)]
        assert reg.rows(prefix="b.") == [("b.two", 2)]


class TestCacheStatsView:
    def test_cache_stats_reads_registry(self, tmp_cache):
        reset_cache_stats()
        key = digest_of("obs-view", 1)
        cached("obstest", key, lambda: 42)  # miss + write
        cached("obstest", key, lambda: 0)  # hit
        stats = cache_stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert metrics().get("cache.hits") == 1

    def test_reset_cache_stats_only_touches_cache(self, tmp_cache):
        metrics().incr("parallel.retries")
        metrics().incr("cache.hits", 7)
        reset_cache_stats()
        assert cache_stats().hits == 0
        assert metrics().get("parallel.retries") == 1


class TestWorkerAggregation:
    """The headline bugfix: counters from pool workers must not vanish."""

    def _sweep_totals(self, jobs: int) -> tuple:
        items = list(range(8))
        cold = parallel_map(_cached_square, items, jobs=jobs)
        warm = parallel_map(_cached_square, items, jobs=jobs)
        assert cold == warm == [x * x for x in items]
        stats = cache_stats()
        return stats.hits, stats.misses, stats.writes

    def test_parallel_equals_serial_cache_totals(self, tmp_cache):
        reset_metrics()
        serial = self._sweep_totals(jobs=1)
        assert serial == (8, 8, 8)

        # Fresh cache + counters; the pooled sweep must report the same
        # totals even though every hit/miss happens in a worker process.
        import shutil

        shutil.rmtree(tmp_cache, ignore_errors=True)
        reset_metrics()
        pooled = self._sweep_totals(jobs=2)
        assert pooled == serial

    def test_pool_task_counter(self, tmp_cache):
        reset_metrics()
        parallel_map(_cached_square, list(range(6)), jobs=2)
        assert metrics().get("parallel.pool_tasks") == 6
        assert metrics().get("parallel.serial_fallbacks") == 0

    def test_fault_hits_counted_in_registry(self, tmp_cache):
        from repro.reliability.faults import inject_faults

        reset_metrics()
        key = digest_of("obs-fault-count", 1)
        with inject_faults("cache_read:1"):
            cached("obstest", key, lambda: 1)
        assert metrics().get("faults.fired.cache_read") == 1


class TestWorkerErrorPath:
    def test_application_errors_still_propagate(self):
        import pytest

        def boom(x):
            raise ValueError("boom")

        with pytest.raises(ValueError):
            parallel_map(_explode_module_level, [1, 2], jobs=2)
        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], jobs=1)


def _explode_module_level(x):
    raise ValueError(f"boom {x}")
