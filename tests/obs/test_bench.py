"""The BENCH_pipeline.json exporter: collection, schema, validation."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    collect_bench_snapshot,
    validate_bench_snapshot,
    write_bench_snapshot,
)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    """One reduced-scale telemetry pass shared by the module's tests."""
    import os

    # Pin a scratch cache and force it *on*: the stage-mix and counter
    # assertions need real cache traffic even when the surrounding CI
    # job runs the suite with REPRO_CACHE=0.
    cache_dir = tmp_path_factory.mktemp("bench-cache")
    saved = {
        key: os.environ.get(key) for key in ("REPRO_CACHE_DIR", "REPRO_CACHE")
    }
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    os.environ["REPRO_CACHE"] = "1"
    try:
        return collect_bench_snapshot(
            {
                "fig2_loads": 3_000,
                "fig5_branches": 3_000,
                "design_orders_max": 4,
                "kernel_bits": 20_000,
            }
        )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


class TestCollection:
    def test_snapshot_is_schema_valid(self, snapshot):
        validate_bench_snapshot(snapshot)  # raises on failure

    def test_snapshot_covers_figures_and_design(self, snapshot):
        names = {entry["name"] for entry in snapshot["timings"]}
        assert "fig2.gcc" in names
        assert "fig5.gsm" in names
        assert any(name.startswith("design.order") for name in names)

    def test_snapshot_stage_mix(self, snapshot):
        stages = {entry["stage"] for entry in snapshot["stages"]}
        # The figure drivers must exercise the full pipeline.
        for expected in (
            "design.flow",
            "design.cover",
            "design.nfa",
            "design.dfa",
            "design.minimize",
            "sim.predictor",
            "trace.generate",
            "parallel.task",
        ):
            assert expected in stages, f"missing stage {expected}"

    def test_snapshot_metrics_include_cache_counters(self, snapshot):
        assert any(key.startswith("cache.") for key in snapshot["metrics"])

    def test_tracing_left_disarmed(self, snapshot):
        from repro.obs.tracing import spans, tracing_armed

        assert not tracing_armed()
        assert spans() == []

    def test_snapshot_round_trips_through_json(self, snapshot, tmp_path):
        path = tmp_path / "BENCH_pipeline.json"
        write_bench_snapshot(str(path), snapshot)
        loaded = json.loads(path.read_text())
        validate_bench_snapshot(loaded)
        assert loaded["schema"] == BENCH_SCHEMA


class TestValidation:
    def _minimal(self) -> dict:
        return {
            "schema": BENCH_SCHEMA,
            "generated_by": "test",
            "python": "3.11.0",
            "platform": "test",
            "scale": {"fig2_loads": 1},
            "timings": [{"name": "fig2.gcc", "seconds": 0.5}],
            "stages": [
                {"stage": "design.flow", "calls": 1, "total_s": 0.1}
            ],
            "metrics": {"cache.hits": 1},
        }

    def test_minimal_document_passes(self):
        validate_bench_snapshot(self._minimal())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("schema"),
            lambda d: d.__setitem__("schema", "repro.bench/999"),
            lambda d: d.__setitem__("timings", []),
            lambda d: d.__setitem__("stages", []),
            lambda d: d["timings"].append({"name": "x", "seconds": -1}),
            lambda d: d["stages"].append({"stage": "x", "calls": 0, "total_s": 0}),
            lambda d: d.__setitem__("metrics", {"cache.hits": "many"}),
            lambda d: d.__setitem__("scale", {"fig2_loads": 0}),
            lambda d: d.pop("python"),
        ],
    )
    def test_malformed_documents_rejected(self, mutate):
        document = self._minimal()
        mutate(document)
        with pytest.raises(ValueError):
            validate_bench_snapshot(document)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_bench_snapshot([1, 2, 3])
