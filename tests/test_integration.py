"""Cross-module integration tests: the full design-to-silicon story."""

import pytest

from repro.automata.equivalence import equivalent
from repro.core.direct import direct_history_machine
from repro.core.pipeline import design_predictor
from repro.harness.branch_training import (
    collect_branch_models,
    design_branch_predictors,
    fsm_correct_counts,
    rank_branches_by_misses,
)
from repro.predictors.base import simulate_predictor
from repro.predictors.custom import CustomBranchPredictor
from repro.predictors.xscale import XScalePredictor
from repro.synth.area import estimate_area
from repro.synth.logic_synthesis import synthesize_machine
from repro.synth.vhdl import generate_vhdl
from repro.workloads.programs import branch_trace


class TestDesignToSilicon:
    """trace -> machine -> encoded netlist -> VHDL, all consistent."""

    def test_full_stack_on_paper_trace(self, paper_trace):
        result = design_predictor(paper_trace, order=2)
        machine = result.machine

        # The machine provably realizes its cover.
        oracle = direct_history_machine(result.cover, order=2)
        assert equivalent(machine, oracle)

        # The synthesized netlist simulates identically.
        synth = synthesize_machine(machine)
        for text in ("", "0", "1", "0110", "111000111"):
            _code, output = synth.run_codes(text)
            assert output == machine.output_after(text)

        # The VHDL mentions exactly the machine's states.
        vhdl = generate_vhdl(machine)
        assert f"type state_type is ({', '.join(f's{i}' for i in range(machine.num_states))});" in vhdl

        # And the area report is consistent with the netlist.
        report, synth2 = estimate_area(machine, return_synth=True)
        assert report.flip_flops == synth2.num_flip_flops

    @pytest.mark.parametrize("order", [3, 5, 7])
    def test_full_stack_on_benchmark_branch(self, cached_trace, order):
        trace = cached_trace("ijpeg", 8_000)
        models = collect_branch_models(trace, order=order)
        ranked = rank_branches_by_misses(trace)
        pc = ranked[0][0]
        designs = design_branch_predictors(models, [pc])
        machine = designs[pc].machine
        oracle = direct_history_machine(designs[pc].cover, order=order)
        assert equivalent(machine, oracle)
        synth = synthesize_machine(machine)
        for text in ("0" * order, "1" * order, "01" * order):
            _code, output = synth.run_codes(text)
            assert output == machine.output_after(text)


class TestCustomArchitectureEndToEnd:
    def test_customization_improves_ijpeg(self, cached_trace):
        """The Section 7 flow on real VM traces: profile, design, deploy,
        and beat the baseline on a *different* input."""
        train = cached_trace("ijpeg", 12_000)
        evaluation = branch_trace("ijpeg", "eval", 12_000)

        ranked = rank_branches_by_misses(train)
        models = collect_branch_models(train)
        designs = design_branch_predictors(models, [pc for pc, _ in ranked[:4]])
        custom = CustomBranchPredictor.from_machines(
            {pc: d.machine for pc, d in designs.items()}
        )
        baseline_stats = simulate_predictor(XScalePredictor(), evaluation)
        custom_stats = simulate_predictor(custom, evaluation)
        assert custom_stats.miss_rate < baseline_stats.miss_rate

    def test_replay_matches_simulation(self, cached_trace):
        """The harness's fast update-all replay must agree with the real
        CustomBranchPredictor simulation, branch for branch."""
        trace = cached_trace("ijpeg", 6_000)
        ranked = rank_branches_by_misses(trace)
        models = collect_branch_models(trace)
        pc = ranked[0][0]
        designs = design_branch_predictors(models, [pc])
        machine = designs[pc].machine

        fast = fsm_correct_counts(trace, {pc: machine})
        execs, correct = fast[pc]

        custom = CustomBranchPredictor.from_machines({pc: machine})
        slow_execs = slow_correct = 0
        for branch_pc, taken in trace:
            prediction = custom.predict(branch_pc)
            if branch_pc == pc:
                slow_execs += 1
                slow_correct += prediction == taken
            custom.update(branch_pc, taken)
        assert (execs, correct) == (slow_execs, slow_correct)


class TestPublicAPI:
    def test_package_exports(self):
        import repro

        assert callable(repro.design_predictor)
        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_readme_quickstart_snippet(self):
        from repro import design_predictor as dp

        trace = [int(c) for c in "000010001011110111101111"]
        result = dp(trace, order=2)
        assert result.cover_strings() == ["x1", "1x"]
