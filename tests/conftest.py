"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

# One shared profile: the default deadline is too tight for the design
# pipeline's end-to-end property tests.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

# The paper's worked example (Section 4.2): t = 0000 1000 1011 1101 1110 1111
PAPER_TRACE_BITS = "000010001011110111101111"


@pytest.fixture
def paper_trace():
    return [int(ch) for ch in PAPER_TRACE_BITS]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_branch_trace():
    """A deterministic 5k-branch ijpeg trace, session-cached."""
    return _cached_branch_trace("ijpeg", 5_000)


_TRACE_CACHE = {}


def _cached_branch_trace(benchmark: str, n: int):
    key = (benchmark, n)
    if key not in _TRACE_CACHE:
        from repro.workloads.programs import branch_trace

        _TRACE_CACHE[key] = branch_trace(benchmark, "train", n)
    return _TRACE_CACHE[key]


@pytest.fixture
def cached_trace():
    """Factory fixture: cached_trace(benchmark, n) with session caching."""
    return _cached_branch_trace
