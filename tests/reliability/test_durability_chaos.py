"""Kill/resume chaos: SIGKILL a journaled sweep mid-flight (the armed
``kill_point`` fault), resume it with the same run id, and prove the
output is byte-identical to an uninterrupted run's.

These tests run the sweep in a *subprocess* -- ``kill_point`` delivers a
real ``SIGKILL``, which must never land on the pytest process itself.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

DRIVER = Path(__file__).with_name("_durability_driver.py")
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class _Run:
    def __init__(self, returncode, log):
        self.returncode = returncode
        self._log = log

    @property
    def stderr(self):
        try:
            return self._log.read_text()
        except OSError:
            return "<no output captured>"


def _run_driver(tmp_path, run_id, out_name, jobs, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RUN_DIR"] = str(tmp_path / "runs")
    env["REPRO_JOBS"] = str(jobs)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_SEED", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    out = tmp_path / out_name
    log = tmp_path / (out_name + ".log")
    # Output goes to a *file*, not a pipe: after the parent SIGKILLs
    # itself, orphaned pool workers still hold the pipe's write end, and
    # waiting on a pipe (capture_output) would hang forever.  Waiting on
    # the pid returns the instant the parent dies; the process *group*
    # (its own session) is then killed to reap any orphan workers.
    with open(log, "w") as handle:
        proc = subprocess.Popen(
            [sys.executable, str(DRIVER), run_id, str(out)],
            env=env,
            stdout=handle,
            stderr=subprocess.STDOUT,
            start_new_session=True,
        )
        try:
            returncode = proc.wait(timeout=120)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass
    return _Run(returncode, log), out


@pytest.mark.parametrize("jobs", [1, 2])
def test_sigkill_mid_sweep_then_resume_is_byte_identical(tmp_path, jobs):
    # Uninterrupted reference run (its own run id, same parameters).
    clean_proc, clean_out = _run_driver(tmp_path, "clean", "clean.json", jobs)
    assert clean_proc.returncode == 0, clean_proc.stderr
    reference = clean_out.read_bytes()

    # Chaos run: the process SIGKILLs itself right after the 2nd shard
    # of 6 is journaled -- no cleanup, no atexit, the real thing.
    killed_proc, killed_out = _run_driver(
        tmp_path, "chaos", "chaos.json", jobs, faults="kill_point:@2"
    )
    assert killed_proc.returncode == -signal.SIGKILL
    assert not killed_out.exists()  # died before any output was written

    # Resume with the same run id, faults disarmed: completed shards
    # replay from the journal, the rest compute, output is identical.
    resumed_proc, resumed_out = _run_driver(
        tmp_path, "chaos", "chaos.json", jobs
    )
    assert resumed_proc.returncode == 0, resumed_proc.stderr
    assert resumed_out.read_bytes() == reference


def test_resume_replays_instead_of_recomputing(tmp_path, monkeypatch):
    _run_driver(tmp_path, "replay", "a.json", jobs=1, faults="kill_point:@3")
    proc, _out = _run_driver(tmp_path, "replay", "a.json", jobs=1)
    assert proc.returncode == 0, proc.stderr

    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
    from repro.reliability.durability import Journal, read_journal

    # The kill fired after the 3rd completion was journaled; the resumed
    # run must have started only the remaining 3 of 6 shards.
    records = read_journal("replay")
    sweeps = [r for r in records if r["event"] == "sweep_started"]
    assert [r["pending"] for r in sweeps] == [6, 3]
    assert len(Journal("replay").completed_keys("chaos")) == 6


def test_dropped_journal_write_costs_one_recompute(tmp_path):
    # The sweep appends sweep_started (1), six shard_started (2-7), then
    # six shard_completed (8-13); journal_write:@8 loses the *first
    # completion* record.  That shard's bytes are stored but unjournaled
    # -- resume recomputes at most that one shard and the final output is
    # still identical to a clean run's.
    clean_proc, clean_out = _run_driver(tmp_path, "clean2", "c.json", jobs=1)
    assert clean_proc.returncode == 0, clean_proc.stderr

    first, _ = _run_driver(
        tmp_path, "lossy", "l.json", jobs=1, faults="journal_write:@8"
    )
    assert first.returncode == 0, first.stderr
    second, lossy_out = _run_driver(tmp_path, "lossy", "l.json", jobs=1)
    assert second.returncode == 0, second.stderr
    assert lossy_out.read_bytes() == clean_out.read_bytes()
