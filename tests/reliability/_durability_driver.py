"""Subprocess driver for the kill/resume chaos tests.

Runs a small journaled sweep and writes the results as canonical JSON.
The chaos tests launch it with ``REPRO_FAULTS=kill_point:@k`` armed (the
process SIGKILLs itself right after the k-th shard is journaled), then
relaunch it clean with the same run id and prove the resumed output is
byte-identical to an uninterrupted run's.

Usage: python _durability_driver.py <run-id> <output-json>
Environment: REPRO_RUN_DIR, REPRO_JOBS, REPRO_FAULTS (optional).
"""

import json
import sys


def shard(x):
    # Deterministic but non-trivial: the design flow in miniature.
    return {"x": x, "sq": x * x, "bits": format(x, "04b")}


def main() -> int:
    from repro.reliability.durability import durable_map

    run_id, out_path = sys.argv[1], sys.argv[2]
    values = durable_map(shard, list(range(6)), run_id=run_id, sweep="chaos")
    with open(out_path, "w") as handle:
        json.dump(values, handle, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
