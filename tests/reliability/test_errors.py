"""The ReproError hierarchy: structure, rendering, and back-compat."""

import pickle

import pytest

from repro.reliability.errors import (
    CacheError,
    DesignError,
    ReproError,
    TraceError,
    WorkerError,
)


class TestHierarchy:
    def test_all_are_repro_errors(self):
        for cls in (TraceError, DesignError, CacheError, WorkerError):
            assert issubclass(cls, ReproError)

    def test_value_error_back_compat(self):
        """Pre-hierarchy callers catch ValueError; they must keep working."""
        assert issubclass(TraceError, ValueError)
        assert issubclass(DesignError, ValueError)

    def test_runtime_error_back_compat(self):
        assert issubclass(CacheError, RuntimeError)
        assert issubclass(WorkerError, RuntimeError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise TraceError("empty trace", stage="profile")


class TestRendering:
    def test_str_names_stage_and_context(self):
        err = DesignError("stage failed", stage="compile", order=4, item=7)
        text = str(err)
        assert "stage failed" in text
        assert "stage=compile" in text
        assert "order=4" in text
        assert "item=7" in text

    def test_plain_message_stays_plain(self):
        assert str(ReproError("just a message")) == "just a message"


class TestPickleRoundTrip:
    def test_stage_and_context_survive_pool_boundary(self):
        original = WorkerError(
            "item failed", stage="parallel_map", item_index=3, attempts=2
        )
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is WorkerError
        assert clone.message == "item failed"
        assert clone.stage == "parallel_map"
        assert clone.context == {"item_index": 3, "attempts": 2}
