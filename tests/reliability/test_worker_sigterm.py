"""A SIGTERMed pool worker must die quietly, not poison the pool.

Regression for the ``_mark_worker`` signal fix: forked workers inherit
the CLI parent's ``SIGTERM -> raise KeyboardInterrupt`` handler, so a
worker receiving SIGTERM mid-task (systemd unit reload, container
rescheduling, an operator's stray ``kill``) used to raise
KeyboardInterrupt *inside the pool machinery* -- which parallel_map
treats as operator shutdown: it terminates every sibling worker and
propagates, losing the whole batch.  With SIGTERM reset to the default
action in ``_mark_worker`` the victim simply dies, the parent sees a
broken pool, and the retry ladder recomputes the lost items.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.perf.parallel import parallel_map

_MARKER_ENV = "REPRO_TEST_SIGTERM_MARKER"


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


def _sigterm_self_once(x):
    """Shard that SIGTERMs its own process the first time any worker runs
    it; the marker file makes the retry (and the serial oracle) clean."""
    marker = Path(os.environ[_MARKER_ENV])
    try:
        marker.touch(exist_ok=False)
    except FileExistsError:
        return x * x
    os.kill(os.getpid(), signal.SIGTERM)
    # With SIG_DFL the line above never returns; if the inherited
    # KeyboardInterrupt handler were still installed we'd survive to
    # here -- sleep so the pending interrupt fires inside the task.
    time.sleep(5)
    return x * x


class TestWorkerSigterm:
    def test_sigterm_mid_task_does_not_poison_pool(self, monkeypatch, tmp_path):
        """Parent installs the CLI-style SIGTERM handler; one worker
        SIGTERMs itself mid-task; the batch still completes and matches
        the serial answer, and the parent handler never fires."""
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "fired"))
        items = [1, 2, 3, 4]
        expected = [x * x for x in items]
        previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
        try:
            result = parallel_map(_sigterm_self_once, items, jobs=2)
        finally:
            signal.signal(signal.SIGTERM, previous)
        assert result == expected
        assert (tmp_path / "fired").exists(), "the shard never self-SIGTERMed"

    def test_serial_oracle_matches(self, monkeypatch, tmp_path):
        """Same shard, marker pre-claimed, serial path: the baseline the
        pooled run above must reproduce."""
        marker = tmp_path / "fired"
        marker.touch()
        monkeypatch.setenv(_MARKER_ENV, str(marker))
        assert parallel_map(_sigterm_self_once, [1, 2, 3, 4], jobs=1) == [
            1,
            4,
            9,
            16,
        ]
