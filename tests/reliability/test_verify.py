"""verify_design: proves good machines, rejects tampered artifacts."""

import pytest

from repro.automata.moore import MooreMachine
from repro.core.pipeline import DesignConfig, FSMDesigner, design_predictor
from repro.reliability.errors import DesignError
from repro.reliability.verify import design_issues, design_ok, verify_design

PAPER_TRACE = [int(ch) for ch in "000010001011110111101111"]


def _flip_outputs(machine: MooreMachine) -> MooreMachine:
    return MooreMachine(
        alphabet=machine.alphabet,
        start=machine.start,
        outputs=tuple(1 - out for out in machine.outputs),
        transitions=machine.transitions,
    )


class TestGoodDesigns:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_paper_trace_designs_verify(self, order):
        result = design_predictor(PAPER_TRACE * 4, order=order)
        verify_design(result)  # must not raise
        assert design_ok(result)
        assert design_issues(result) == []

    def test_dont_care_designs_verify(self):
        result = design_predictor(
            PAPER_TRACE * 40, order=4, dont_care_fraction=0.01
        )
        verify_design(result)

    def test_config_verify_flag_proves_cold_computes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        config = DesignConfig(order=3, verify=True)
        result = FSMDesigner(config).design_from_trace(PAPER_TRACE * 4)
        assert result.machine.num_states >= 1


class TestTamperedDesigns:
    def test_flipped_outputs_rejected_with_stage(self):
        result = design_predictor(PAPER_TRACE * 4, order=2)
        result.machine = _flip_outputs(result.machine)
        assert not design_ok(result)
        with pytest.raises(DesignError) as excinfo:
            verify_design(result)
        assert excinfo.value.stage == "verify"

    def test_truncated_cover_rejected(self):
        result = design_predictor(PAPER_TRACE * 4, order=2)
        assert result.cover  # paper example has a non-empty cover
        result.cover = []
        issues = design_issues(result)
        assert issues  # predict-1 histories are no longer covered

    def test_malformed_artifact_is_not_ok(self):
        class Hollow:
            pass

        assert not design_ok(Hollow())


class TestVerifyFlagCacheKeys:
    def test_verify_flag_does_not_split_the_key_space(self):
        base = DesignConfig(order=4)
        checked = DesignConfig(order=4, verify=True)
        assert base.cache_fields() == checked.cache_fields()
