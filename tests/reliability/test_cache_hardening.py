"""Cache hardening: checksums, quarantine, eviction, counters, env knob.

The acceptance case lives here too: a hand-corrupted design entry that is
a perfectly valid pickle of the *wrong* machine must be detected on load,
quarantined, and recomputed.
"""

import pickle

import pytest

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.perf import cache as cache_mod
from repro.perf.cache import (
    cache_enabled,
    cache_stats,
    cached,
    digest_of,
    quarantine_dir,
    reset_cache_stats,
    set_cache_enabled,
)
from repro.reliability.faults import inject_faults

TRACE = [int(ch) for ch in "000010001011110111101111"] * 4


def _entry_paths(tmp_cache, category, key):
    pkl = tmp_cache / category / key[:2] / f"{key}.pkl"
    return pkl, pkl.with_suffix(".sha256")


class TestChecksum:
    def test_sidecar_written_alongside_payload(self, tmp_cache):
        key = digest_of("hardening", 1)
        cached("unit", key, lambda: [1, 2, 3])
        pkl, sidecar = _entry_paths(tmp_cache, "unit", key)
        assert pkl.exists() and sidecar.exists()
        import hashlib

        assert sidecar.read_text().strip() == hashlib.sha256(
            pkl.read_bytes()
        ).hexdigest()

    def test_bit_rot_that_still_unpickles_is_caught(self, tmp_cache):
        """Flip a byte inside a payload crafted so the pickle still loads:
        only the checksum can catch it."""
        key = digest_of("hardening", 2)
        cached("unit", key, lambda: b"AAAA-BBBB-CCCC")
        pkl, _sidecar = _entry_paths(tmp_cache, "unit", key)
        payload = bytearray(pkl.read_bytes())
        # Flip one bit inside the bytes literal: still a loadable pickle,
        # but the content silently changed.
        index = payload.index(b"BBBB") + 1
        payload[index] ^= 0x01
        pkl.write_bytes(bytes(payload))
        assert pickle.loads(bytes(payload)) != b"AAAA-BBBB-CCCC"  # loads fine

        reset_cache_stats()
        healed = cached("unit", key, lambda: b"AAAA-BBBB-CCCC")
        assert healed == b"AAAA-BBBB-CCCC"
        assert cache_stats().quarantined == 1
        assert any(quarantine_dir().rglob(f"{key}.pkl"))

    def test_truncation_is_caught_and_quarantined(self, tmp_cache):
        key = digest_of("hardening", 3)
        cached("unit", key, lambda: list(range(100)))
        pkl, _ = _entry_paths(tmp_cache, "unit", key)
        pkl.write_bytes(pkl.read_bytes()[: 10])
        reset_cache_stats()
        assert cached("unit", key, lambda: list(range(100))) == list(range(100))
        assert cache_stats().quarantined == 1

    def test_missing_sidecar_is_a_plain_miss(self, tmp_cache):
        """Legacy entries (pre-checksum) are recomputed, not quarantined."""
        key = digest_of("hardening", 4)
        cached("unit", key, lambda: "value")
        _pkl, sidecar = _entry_paths(tmp_cache, "unit", key)
        sidecar.unlink()
        reset_cache_stats()
        assert cached("unit", key, lambda: "value") == "value"
        stats = cache_stats()
        assert stats.quarantined == 0
        assert stats.misses == 1


class TestCorruptDesignResult:
    def test_valid_pickle_wrong_machine_is_quarantined_and_recomputed(
        self, tmp_cache
    ):
        """The acceptance case: an entry that unpickles fine but carries a
        tampered machine must never reach a caller."""
        good = design_predictor(TRACE, order=2)
        pkls = list((tmp_cache / "designs").rglob("*.pkl"))
        assert len(pkls) == 1
        entry = pkls[0]

        tampered = pickle.loads(entry.read_bytes())
        machine = tampered.machine
        tampered.machine = MooreMachine(
            alphabet=machine.alphabet,
            start=machine.start,
            outputs=tuple(1 - out for out in machine.outputs),  # all wrong
            transitions=machine.transitions,
        )
        payload = pickle.dumps(tampered, protocol=pickle.HIGHEST_PROTOCOL)
        entry.write_bytes(payload)
        # Forge a *matching* checksum: only design verification can catch
        # this now.
        import hashlib

        entry.with_suffix(".sha256").write_text(
            hashlib.sha256(payload).hexdigest()
        )

        reset_cache_stats()
        recovered = design_predictor(TRACE, order=2)
        assert recovered.machine.outputs == good.machine.outputs
        assert recovered.machine.transitions == good.machine.transitions
        stats = cache_stats()
        assert stats.quarantined == 1
        assert any(quarantine_dir().rglob("*.pkl"))
        # And the repaired entry is a clean hit afterwards.
        again = design_predictor(TRACE, order=2)
        assert again.machine.outputs == good.machine.outputs
        assert cache_stats().hits == 1


class TestEviction:
    def test_size_bound_evicts_oldest_first(self, tmp_cache, monkeypatch):
        import os
        import time

        blob = b"x" * 4096
        keys = [digest_of("evict", i) for i in range(6)]
        for i, key in enumerate(keys):
            cached("unit", key, lambda: blob)
            # Strictly increasing mtimes without sleeping.
            pkl, _ = _entry_paths(tmp_cache, "unit", key)
            os.utime(pkl, (time.time() + i, time.time() + i))
        reset_cache_stats()
        # ~12KB budget over ~24KB of entries: oldest ones must go.
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", str(12 / 1024))
        cached("unit", digest_of("evict", "trigger"), lambda: blob)
        assert cache_stats().evictions >= 2
        first_pkl, _ = _entry_paths(tmp_cache, "unit", keys[0])
        last_pkl, _ = _entry_paths(tmp_cache, "unit", keys[-1])
        assert not first_pkl.exists()
        assert last_pkl.exists()


class TestEnvKnob:
    def test_repro_cache_env_read_at_call_time(self, tmp_cache, monkeypatch):
        """REPRO_CACHE=0 set *after* import must bypass the cache (the old
        import-time freeze broke tests and pool workers)."""
        calls = []

        def compute():
            calls.append(1)
            return "v"

        key = digest_of("envknob", 1)
        cached("unit", key, compute)
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache_enabled()
        cached("unit", key, compute)
        assert len(calls) == 2
        monkeypatch.delenv("REPRO_CACHE")
        assert cache_enabled()
        cached("unit", key, compute)
        assert len(calls) == 2  # hit again

    def test_runtime_switch_still_wins(self, tmp_cache):
        set_cache_enabled(False)
        try:
            assert not cache_enabled()
        finally:
            set_cache_enabled(True)
        assert cache_enabled()


class TestFaultHooks:
    def test_cache_read_fault_is_a_recovered_miss(self, tmp_cache):
        key = digest_of("faults", 1)
        cached("unit", key, lambda: "truth")
        reset_cache_stats()
        with inject_faults("cache_read:1"):
            assert cached("unit", key, lambda: "truth") == "truth"
        stats = cache_stats()
        assert stats.misses == 1 and stats.quarantined == 0

    def test_cache_write_fault_drops_the_entry_silently(self, tmp_cache):
        key = digest_of("faults", 2)
        with inject_faults("cache_write:1"):
            assert cached("unit", key, lambda: "truth") == "truth"
        pkl, _ = _entry_paths(tmp_cache, "unit", key)
        assert not pkl.exists()
        assert cached("unit", key, lambda: "truth") == "truth"
        assert pkl.exists()

    def test_cache_corrupt_fault_is_healed_on_next_read(self, tmp_cache):
        key = digest_of("faults", 3)
        with inject_faults("cache_corrupt:1"):
            cached("unit", key, lambda: "truth")
        reset_cache_stats()
        assert cached("unit", key, lambda: "truth") == "truth"
        assert cache_stats().quarantined == 1
