"""Every ``REPRO_*`` knob must be read at *call* time, not import time.

The bug class this guards against: PR 7 found that the fault-injection
plan was parsed once at module import, so ``REPRO_FAULTS`` armed *after*
``import repro...`` (by a test, a CI driver, or a server supervisor
configuring freshly spawned workers) was silently ignored.  The fix made
every knob accessor re-read the environment; this suite pins that
contract for the whole knob surface so the next knob added the lazy way
fails here immediately.

Each case flips one variable *after* the owning module is imported and
asserts the accessor observes both the flipped value and the restored
default.  (``monkeypatch`` guarantees restoration, so the ambient CI
environment -- chaos jobs arm some of these -- is never disturbed.)
"""

from __future__ import annotations

from pathlib import Path

import pytest

# Import the owning modules up front: the whole point is that the
# accessors below are called long after import.
from repro.conformance import fuzz as fuzz_mod
from repro.conformance import golden as golden_mod
from repro.harness import reporting as reporting_mod
from repro.obs import tracing as tracing_mod
from repro.perf import batched as batched_mod
from repro.perf import cache as cache_mod
from repro.perf import parallel as parallel_mod
from repro.reliability import durability as durability_mod
from repro.reliability import faults as faults_mod
from repro.serve import config as serve_config_mod
from repro.workloads import sources as sources_mod

#: (env var, flipped value, accessor, expectation on the flipped value).
#: Each accessor is a zero-arg callable evaluated after the flip.
KNOB_CASES = [
    (
        "REPRO_CACHE",
        "0",
        cache_mod.cache_enabled,
        lambda value: value is False,
    ),
    (
        "REPRO_CACHE_DIR",
        "{tmp}/knob-cache",
        cache_mod.cache_dir,
        lambda value: str(value).endswith("knob-cache"),
    ),
    (
        "REPRO_CACHE_MAX_MB",
        "7",
        cache_mod._max_cache_bytes,
        lambda value: value == 7 * 1024 * 1024,
    ),
    (
        "REPRO_LOCK_TIMEOUT",
        "3.5",
        cache_mod.lock_timeout,
        lambda value: value == pytest.approx(3.5),
    ),
    (
        "REPRO_JOBS",
        "6",
        parallel_mod.default_jobs,
        lambda value: value == 6,
    ),
    (
        "REPRO_TASK_TIMEOUT",
        "2.5",
        parallel_mod.task_timeout,
        lambda value: value == pytest.approx(2.5),
    ),
    (
        "REPRO_TASK_RETRIES",
        "5",
        parallel_mod.task_retries,
        lambda value: value == 5,
    ),
    (
        "REPRO_FAULT_HANG_SECONDS",
        "1.5",
        parallel_mod._hang_seconds,
        lambda value: value == pytest.approx(1.5),
    ),
    (
        "REPRO_BATCH",
        "0",
        batched_mod.batch_enabled,
        lambda value: value is False,
    ),
    (
        "REPRO_TRACE_FILE",
        "{tmp}/spans.jsonl",
        tracing_mod.trace_file,
        lambda value: str(value).endswith("spans.jsonl"),
    ),
    (
        "REPRO_RESULTS_DIR",
        "{tmp}/knob-results",
        reporting_mod.results_dir,
        lambda value: str(value).endswith("knob-results"),
    ),
    (
        "REPRO_DURABLE",
        "0",
        durability_mod.durability_enabled,
        lambda value: value is False,
    ),
    (
        "REPRO_RUN_DIR",
        "{tmp}/knob-runs",
        durability_mod.runs_root,
        lambda value: str(value).endswith("knob-runs"),
    ),
    (
        "REPRO_JOURNAL_FSYNC",
        "0",
        durability_mod.fsync_enabled,
        lambda value: value is False,
    ),
    (
        "REPRO_FUZZ_SEED",
        "99",
        fuzz_mod.fuzz_seed,
        lambda value: value == 99,
    ),
    (
        "REPRO_FUZZ_BUDGET",
        "17",
        fuzz_mod.fuzz_budget,
        lambda value: value == 17,
    ),
    (
        "REPRO_GOLDEN_DIR",
        "{tmp}/knob-golden",
        golden_mod.golden_dir,
        lambda value: str(value).endswith("knob-golden"),
    ),
    (
        "REPRO_SOURCE_SEED",
        "42",
        sources_mod.source_seed,
        lambda value: value == 42,
    ),
    (
        "REPRO_SOURCE_LENGTH",
        "1234",
        sources_mod.source_length,
        lambda value: value == 1234,
    ),
    (
        "REPRO_SERVE_HOST",
        "0.0.0.0",
        serve_config_mod.serve_host,
        lambda value: value == "0.0.0.0",
    ),
    (
        "REPRO_SERVE_PORT",
        "9100",
        serve_config_mod.serve_port,
        lambda value: value == 9100,
    ),
    (
        "REPRO_SERVE_WORKERS",
        "5",
        serve_config_mod.serve_workers,
        lambda value: value == 5,
    ),
    (
        "REPRO_SERVE_QUEUE",
        "12",
        serve_config_mod.serve_queue_limit,
        lambda value: value == 12,
    ),
    (
        "REPRO_SERVE_DEADLINE",
        "9.5",
        serve_config_mod.serve_deadline_s,
        lambda value: value == pytest.approx(9.5),
    ),
    (
        "REPRO_SERVE_STALL",
        "4.25",
        serve_config_mod.serve_stall_s,
        lambda value: value == pytest.approx(4.25),
    ),
    (
        "REPRO_SERVE_BREAKER_FAILS",
        "9",
        serve_config_mod.breaker_threshold,
        lambda value: value == 9,
    ),
    (
        "REPRO_SERVE_BREAKER_RESET",
        "1.25",
        serve_config_mod.breaker_reset_s,
        lambda value: value == pytest.approx(1.25),
    ),
    (
        "REPRO_SERVE_DRAIN",
        "2.75",
        serve_config_mod.drain_timeout_s,
        lambda value: value == pytest.approx(2.75),
    ),
]


@pytest.mark.parametrize(
    "name,flipped,accessor,expect",
    KNOB_CASES,
    ids=[case[0] for case in KNOB_CASES],
)
def test_knob_flipped_after_import_is_honored(
    monkeypatch, tmp_path, name, flipped, accessor, expect
):
    # Start from the unset state: CI legs run this suite with some of
    # these armed ambiently (REPRO_TRACE_FILE, REPRO_CACHE, REPRO_JOBS);
    # monkeypatch restores the ambient value afterwards.
    monkeypatch.delenv(name, raising=False)
    default = accessor()
    monkeypatch.setenv(name, flipped.format(tmp=tmp_path))
    after = accessor()
    assert expect(after), f"{name} flip ignored: accessor returned {after!r}"
    monkeypatch.delenv(name)
    # Clearing the variable must restore the default behaviour.
    assert accessor() == default


class TestFaultPlanCallTime:
    """The original offender, pinned explicitly: ``REPRO_FAULTS`` armed
    or re-armed *after* import must be honoured -- and the parsed plan's
    PRNG/count state must survive across queries while the spec text is
    unchanged (re-parsing per call would reset ``@k``/count budgets)."""

    def test_arm_after_import(self, monkeypatch):
        assert faults_mod.active_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "cache_read:2")
        plan = faults_mod.active_plan()
        assert plan is not None
        assert faults_mod.faults_enabled()

    def test_rearm_with_different_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache_read:1")
        assert faults_mod.should_fire("cache_read")
        monkeypatch.setenv("REPRO_FAULTS", "cache_write:1")
        assert not faults_mod.should_fire("cache_read")
        assert faults_mod.should_fire("cache_write")

    def test_plan_state_survives_between_queries(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache_read:2")
        assert faults_mod.should_fire("cache_read")
        assert faults_mod.should_fire("cache_read")
        # Count budget exhausted -- proof the plan was parsed once, not
        # re-parsed (and thereby reset) on every query.
        assert not faults_mod.should_fire("cache_read")

    def test_disarm_after_import(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache_read:1")
        assert faults_mod.faults_enabled()
        monkeypatch.delenv("REPRO_FAULTS")
        assert not faults_mod.faults_enabled()
        assert faults_mod.active_plan() is None

    def test_seed_change_reparses(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_reorder:0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "1")
        rng_one = faults_mod.plan_rng()
        assert rng_one is not None
        draws_one = [rng_one.random() for _ in range(3)]
        monkeypatch.setenv("REPRO_FAULTS_SEED", "2")
        rng_two = faults_mod.plan_rng()
        draws_two = [rng_two.random() for _ in range(3)]
        assert draws_one != draws_two
