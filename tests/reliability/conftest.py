"""Fixtures for the reliability/chaos suite.

The CI chaos job runs the *whole* test suite with an ambient
``REPRO_FAULTS`` plan armed to prove that recovered faults are invisible.
The targeted tests here assert exact counter values and clean-path
behaviour, so each one starts disarmed and injects its own plan.
"""

from __future__ import annotations

import pytest

from repro.perf import cache as cache_mod
from repro.reliability import faults as faults_mod


@pytest.fixture(autouse=True)
def disarm_ambient_faults(monkeypatch):
    """Each test controls its own fault plan via inject_faults()."""
    monkeypatch.setattr(faults_mod, "_plan", None)
    monkeypatch.setattr(faults_mod, "_override", False)
    monkeypatch.setattr(faults_mod, "_env_sig", None)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)


@pytest.fixture
def tmp_cache(monkeypatch, tmp_path):
    """A fresh, enabled cache directory with zeroed counters."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
    monkeypatch.setattr(cache_mod, "_runtime_enabled", True)
    cache_mod.reset_cache_stats()
    return tmp_path / "cache"
