"""Fault injector: spec parsing, determinism, scoping, zero overhead."""

import os
import pickle

import pytest

from repro.reliability import faults
from repro.reliability.faults import (
    FaultPlan,
    InjectedFault,
    inject_faults,
    no_faults,
)


class TestSpecParsing:
    def test_count_spec_fires_exactly_n_times(self):
        plan = FaultPlan("worker_crash:2")
        fired = [plan.query("worker_crash") for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_probability_spec_is_seed_deterministic(self):
        plan_a = FaultPlan("cache_read:0.5", seed=42)
        plan_b = FaultPlan("cache_read:0.5", seed=42)
        a = [plan_a.query("cache_read") for _ in range(50)]
        b = [plan_b.query("cache_read") for _ in range(50)]
        assert a == b
        assert any(a) and not all(a)  # p=0.5 over 50 queries

    def test_bare_name_means_once(self):
        plan = FaultPlan("stage_fail")
        assert plan.query("stage_fail") is True
        assert plan.query("stage_fail") is False

    def test_multiple_clauses(self):
        plan = FaultPlan("worker_crash:1, cache_write:1")
        assert plan.query("worker_crash") is True
        assert plan.query("cache_write") is True
        assert plan.query("cache_read") is False

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan("warp_core_breach:1")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan("cache_read:maybe")
        with pytest.raises(ValueError):
            FaultPlan("cache_read:1.5")


class TestScoping:
    def test_disabled_by_default_here(self):
        # conftest disarms ambient plans; every point must be cold.
        assert faults.should_fire("worker_crash") is False
        assert faults.faults_enabled() is False
        faults.fire("stage_fail")  # must not raise

    def test_inject_faults_scopes_and_restores(self):
        with inject_faults("stage_fail:1"):
            assert faults.faults_enabled()
            with pytest.raises(InjectedFault):
                faults.fire("stage_fail")
        assert not faults.faults_enabled()

    def test_propagate_env_exports_and_restores(self):
        assert "REPRO_FAULTS" not in os.environ
        with inject_faults("worker_crash:3", seed=9, propagate_env=True):
            assert os.environ["REPRO_FAULTS"] == "worker_crash:3"
            assert os.environ["REPRO_FAULTS_SEED"] == "9"
        assert "REPRO_FAULTS" not in os.environ

    def test_no_faults_disarms_inner_scope(self):
        with inject_faults("stage_fail:5"):
            with no_faults():
                assert faults.should_fire("stage_fail") is False
            assert faults.should_fire("stage_fail") is True

    def test_env_plan_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache_read:0.25")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        plan = faults._plan_from_env()
        assert plan is not None
        assert plan.probabilities == {"cache_read": 0.25}
        assert plan.seed == 7

    def test_injected_fault_pickles_cleanly(self):
        clone = pickle.loads(pickle.dumps(InjectedFault("worker_crash")))
        assert clone.point == "worker_crash"
        assert str(clone) == "injected fault: worker_crash"
