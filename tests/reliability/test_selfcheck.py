"""The selfcheck battery itself, and its CLI plumbing."""

from repro.cli import main
from repro.reliability.selfcheck import CHECKS, run_selfcheck


def test_selfcheck_passes(capsys):
    assert run_selfcheck(verbose=True) == 0
    out = capsys.readouterr().out
    for name, _check in CHECKS:
        assert f"[PASS] {name}" in out
    assert "cache counters:" in out


def test_selfcheck_cli_quiet(capsys):
    assert main(["selfcheck", "--quiet"]) == 0
    assert "[PASS]" not in capsys.readouterr().out


def test_selfcheck_reports_failures(monkeypatch, capsys):
    import repro.reliability.selfcheck as selfcheck_mod

    def broken():
        raise AssertionError("deliberately broken")

    monkeypatch.setattr(
        selfcheck_mod, "CHECKS", (("broken-check", broken),) + CHECKS[:1]
    )
    assert run_selfcheck(verbose=True) == 1
    out = capsys.readouterr().out
    assert "[FAIL] broken-check" in out
    assert "1 FAILED" in out
