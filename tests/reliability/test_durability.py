"""The durability layer's contract: a journaled sweep resumed after any
interruption returns exactly what the uninterrupted sweep would have --
and replayed shards are *never* recomputed."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import metrics, reset_metrics
from repro.reliability import durability
from repro.reliability.durability import (
    Journal,
    derive_run_id,
    durable_call,
    durable_map,
    journal_path,
    load_blob,
    read_journal,
    run_dir,
    sanitize_run_id,
    store_blob,
)


@pytest.fixture(autouse=True)
def run_env(monkeypatch, tmp_path):
    """A fresh run root, durability on, no ambient run id, zeroed counters."""
    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv("REPRO_DURABLE", raising=False)
    monkeypatch.delenv("REPRO_JOURNAL_FSYNC", raising=False)
    monkeypatch.setattr(durability, "_current_run_id", None)
    reset_metrics()
    return tmp_path / "runs"


def _square(x):
    return x * x


def _poison(x):
    raise AssertionError(f"replay recomputed shard {x!r}")


# ----------------------------------------------------------------------
# Run identity
# ----------------------------------------------------------------------

def test_derive_run_id_is_deterministic():
    assert derive_run_id("figures", "fig2", "all") == derive_run_id(
        "figures", "fig2", "all"
    )
    assert derive_run_id("figures", "fig2") != derive_run_id("figures", "fig5")
    assert derive_run_id("figures", "fig2").startswith("figures-")


def test_sanitize_run_id():
    assert sanitize_run_id("my run/4!") == "my-run-4"
    assert sanitize_run_id("ok-id_1.2") == "ok-id_1.2"
    with pytest.raises(ValueError):
        sanitize_run_id("///")


def test_set_run_id_is_the_default(run_env):
    durability.set_run_id("ambient-run")
    assert durability.current_run_id() == "ambient-run"
    values = durable_map(_square, [1, 2], sweep="ambient")
    assert values == [1, 4]
    assert journal_path("ambient-run").exists()


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------

def test_journal_roundtrip_schema_and_seq(run_env):
    with Journal("unit") as journal:
        journal.append("sweep_started", sweep="s", total=2)
        journal.append("shard_completed", sweep="s", index=0, key="k0")
        journal.append("sweep_completed", sweep="s", total=2)
    records = read_journal("unit")
    assert [r["event"] for r in records] == [
        "sweep_started", "shard_completed", "sweep_completed",
    ]
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert all(r["schema"] == "repro.journal/1" for r in records)
    assert all(r["run"] == "unit" for r in records)
    # A re-opened journal continues the sequence instead of restarting it.
    with Journal("unit") as journal:
        journal.append("sweep_started", sweep="s2", total=1)
    assert read_journal("unit")[-1]["seq"] == 3


def test_journal_torn_final_line_is_skipped(run_env):
    with Journal("torn") as journal:
        journal.append("sweep_started", sweep="s", total=1)
        journal.append("shard_completed", sweep="s", index=0, key="k0")
    with open(journal_path("torn"), "ab") as handle:
        handle.write(b'{"schema": "repro.journal/1", "event": "shard_co')
    reset_metrics()
    records = read_journal("torn")
    assert len(records) == 2
    assert metrics().get("journal.torn_records") == 1
    assert Journal("torn").completed_keys("s") == {"k0"}


def test_journal_missing_file_reads_empty(run_env):
    assert read_journal("never-ran") == []


# ----------------------------------------------------------------------
# durable_map
# ----------------------------------------------------------------------

def test_durable_map_matches_plain_map_and_replays(run_env):
    items = [1, 2, 3, 4]
    first = durable_map(_square, items, run_id="sweep-a", sweep="sq")
    assert first == [x * x for x in items]
    # Resume: the poisoned fn proves no shard re-executes.
    replayed = durable_map(_poison, items, run_id="sweep-a", sweep="sq")
    assert replayed == first
    assert metrics().get("durable.replayed") == len(items)


def test_partial_resume_computes_only_missing_shards(run_env):
    items = [1, 2, 3, 4]
    durable_map(_square, items, run_id="partial", sweep="sq")
    # Lose one shard's stored bytes (the crash landed between the store
    # and nothing -- or the disk ate the file): journaled but unreadable.
    shards = sorted((run_dir("partial") / "shards").rglob("*.pkl"))
    shards[0].unlink()

    recomputed = []

    def tracked(x):
        recomputed.append(x)
        return x * x

    values = durable_map(tracked, items, run_id="partial", sweep="sq")
    assert values == [x * x for x in items]
    assert len(recomputed) == 1  # exactly the shard whose bytes were lost


def test_fingerprint_change_forces_recompute(run_env):
    items = [1, 2]
    durable_map(_square, items, run_id="fp", sweep="s", fingerprint="v1")
    with pytest.raises(AssertionError):
        # Same run id, different parameters: stale results must NOT replay.
        durable_map(_poison, items, run_id="fp", sweep="s", fingerprint="v2")


def test_different_sweeps_do_not_collide(run_env):
    items = [1, 2]
    durable_map(_square, items, run_id="multi", sweep="alpha")
    with pytest.raises(AssertionError):
        durable_map(_poison, items, run_id="multi", sweep="beta")


def test_disabled_durability_is_plain_parallel_map(run_env, monkeypatch):
    monkeypatch.setenv("REPRO_DURABLE", "0")
    assert durable_map(_square, [3], run_id="off", sweep="s") == [9]
    assert not run_dir("off").exists()


def test_no_run_id_is_plain_parallel_map(run_env):
    assert durable_map(_square, [3], sweep="s") == [9]
    assert not run_env.exists()  # nothing journaled anywhere


def test_journal_records_lifecycle_events(run_env):
    durable_map(_square, [5, 6], run_id="events", sweep="sq")
    events = [r["event"] for r in read_journal("events")]
    assert events[0] == "sweep_started"
    assert events.count("shard_started") == 2
    assert events.count("shard_completed") == 2
    assert events[-1] == "sweep_completed"


def test_durable_call_replays(run_env):
    calls = []

    def compute():
        calls.append(1)
        return {"answer": 42}

    first = durable_call(compute, "one-shot", "examples")
    second = durable_call(compute, "one-shot", "examples")
    assert first == second == {"answer": 42}
    assert len(calls) == 1


# ----------------------------------------------------------------------
# Checkpoint blobs
# ----------------------------------------------------------------------

def test_blob_roundtrip_and_corruption_detected(run_env, tmp_path):
    path = tmp_path / "ckpt" / "state.pkl"
    assert store_blob(path, {"generation": 3, "rng": (1, 2, 3)})
    assert load_blob(path) == {"generation": 3, "rng": (1, 2, 3)}
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0x01
    path.write_bytes(bytes(payload))
    assert load_blob(path) is None  # checksum catches the rot
    assert metrics().get("durable.load_failures") == 1


def test_unpicklable_blob_degrades_gracefully(run_env, tmp_path):
    path = tmp_path / "ckpt.pkl"
    assert store_blob(path, lambda: None) is False
    assert not path.exists()


def test_journal_lines_are_valid_json(run_env):
    durable_map(_square, [1], run_id="json-check", sweep="s")
    for line in journal_path("json-check").read_text().splitlines():
        json.loads(line)  # raises on any torn/invalid line
