"""Hardened parallel_map under injected crashes, hangs, and reordering.

The contract: serial/parallel byte-identity survives every injected fault
that does not exhaust retries; exhausted retries raise a WorkerError
naming the item index; genuine exceptions from the shard function are
never retried and propagate unchanged.
"""

import pytest

from repro.perf.parallel import parallel_map, task_retries, task_timeout
from repro.reliability import faults
from repro.reliability.errors import WorkerError
from repro.reliability.faults import inject_faults


def _square(x):
    return x * x


def _fire_crash(x):
    """A shard whose *serial* recompute also hits the armed fault point,
    forcing the retry ladder all the way to WorkerError."""
    faults.fire("worker_crash")
    return x


def _explode(x):
    raise KeyError(f"boom {x}")


ITEMS = list(range(8))
EXPECTED = [x * x for x in ITEMS]


class TestCrashIsolation:
    def test_injected_crashes_recovered_byte_identical(self):
        with inject_faults("worker_crash:2", seed=3, propagate_env=True):
            assert parallel_map(_square, ITEMS, jobs=2) == EXPECTED

    def test_probabilistic_crashes_recovered(self):
        with inject_faults("worker_crash:0.5", seed=11, propagate_env=True):
            assert parallel_map(_square, ITEMS, jobs=2) == EXPECTED

    def test_exhausted_retries_raise_worker_error_naming_item(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "1")
        with inject_faults("worker_crash:1.0", seed=5, propagate_env=True):
            with pytest.raises(WorkerError) as excinfo:
                parallel_map(_fire_crash, [10, 20], jobs=2)
        err = excinfo.value
        assert err.stage == "parallel_map"
        assert err.context["item_index"] in (0, 1)
        assert err.context["attempts"] == 2

    def test_genuine_exception_propagates_unretried(self):
        with inject_faults("worker_crash:0", seed=1, propagate_env=True):
            with pytest.raises(KeyError):
                parallel_map(_explode, ITEMS, jobs=2)


class TestHangIsolation:
    def test_hung_worker_times_out_and_item_is_recovered(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.4")
        monkeypatch.setenv("REPRO_TASK_RETRIES", "1")
        monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "10")
        with inject_faults("worker_hang:1", seed=3, propagate_env=True):
            assert parallel_map(_square, [1, 2, 3, 4], jobs=2) == [1, 4, 9, 16]


class TestReordering:
    def test_shuffled_submission_order_is_invisible(self):
        with inject_faults("worker_reorder:1", seed=17, propagate_env=True):
            assert parallel_map(_square, ITEMS, jobs=2) == EXPECTED


class TestEnvKnobs:
    def test_task_timeout_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert task_timeout() is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert task_timeout() == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert task_timeout() is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        assert task_timeout() is None

    def test_task_retries_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        assert task_retries() == 2
        monkeypatch.setenv("REPRO_TASK_RETRIES", "0")
        assert task_retries() == 0
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-3")
        assert task_retries() == 0
        monkeypatch.setenv("REPRO_TASK_RETRIES", "many")
        assert task_retries() == 2
