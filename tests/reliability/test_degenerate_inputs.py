"""Defined behaviour for degenerate design inputs (satellite task).

Every case either produces an exactly-specified machine or raises a
TraceError/DesignError -- never "whatever the internals happen to do".
"""

import math

import pytest

from repro.cli import main
from repro.core.markov import MarkovModel
from repro.core.pipeline import DesignConfig, design_predictor
from repro.reliability.errors import DesignError, TraceError


class TestDesignPredictorBoundaries:
    def test_empty_trace_raises_trace_error(self):
        with pytest.raises(TraceError) as excinfo:
            design_predictor([], order=2)
        assert excinfo.value.stage == "profile"

    def test_trace_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            design_predictor([], order=2)

    def test_trace_shorter_than_order_raises(self):
        with pytest.raises(TraceError) as excinfo:
            design_predictor([0, 1, 0], order=4)
        assert excinfo.value.context["trace_length"] == 3
        assert excinfo.value.context["order"] == 4

    def test_trace_equal_to_order_raises(self):
        # order bits fill the history register but observe no outcome.
        with pytest.raises(TraceError):
            design_predictor([0, 1, 0, 1], order=4)

    def test_all_zero_trace_gives_always_zero_machine(self):
        result = design_predictor([0] * 40, order=3)
        assert result.machine.num_states == 1
        assert result.machine.outputs == (0,)
        assert result.cover == []

    def test_all_one_trace_gives_always_one_machine(self):
        result = design_predictor([1] * 40, order=3)
        assert result.machine.num_states == 1
        assert result.machine.outputs == (1,)

    def test_non_binary_symbol_raises_trace_error(self):
        with pytest.raises(TraceError):
            design_predictor([0, 1, 2, 0, 1, 0], order=2)


class TestConfigBoundaries:
    @pytest.mark.parametrize("threshold", [float("nan"), float("inf"), -0.1, 1.5])
    def test_bad_bias_threshold_raises_design_error(self, threshold):
        with pytest.raises(DesignError) as excinfo:
            DesignConfig(order=2, bias_threshold=threshold)
        assert excinfo.value.stage == "config"

    @pytest.mark.parametrize("fraction", [float("nan"), -0.01, 1.0, 2.0])
    def test_bad_dont_care_fraction_raises_design_error(self, fraction):
        with pytest.raises(DesignError):
            DesignConfig(order=2, dont_care_fraction=fraction)

    def test_bad_order_raises_design_error(self):
        with pytest.raises(DesignError):
            DesignConfig(order=0)

    def test_design_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            DesignConfig(order=2, bias_threshold=math.nan)


class TestMarkovModelBoundaries:
    def test_empty_trace_builds_empty_model(self):
        model = MarkovModel.from_trace([], order=3)
        assert model.total_observations == 0
        assert model.num_histories == 0

    def test_short_trace_builds_empty_model(self):
        model = MarkovModel.from_trace([0, 1], order=3)
        assert model.total_observations == 0

    def test_constant_trace_counts_one_history(self):
        model = MarkovModel.from_trace([0] * 20, order=3)
        assert model.num_histories == 1
        assert model.probability_of_one(0) == 0.0

    def test_non_binary_symbol_raises_trace_error(self):
        with pytest.raises(TraceError):
            MarkovModel.from_trace([0, 1, 7, 0, 1], order=1)

    def test_non_binary_symbol_raises_trace_error_batch(self):
        # Long enough to take the numpy fast path when numpy is present.
        trace = [0, 1] * 1000 + [9] + [0] * 100
        with pytest.raises(TraceError):
            MarkovModel.from_trace(trace, order=2)


class TestCliBoundaries:
    def test_constant_trace_designs_constant_machine(self, tmp_path, capsys):
        trace = tmp_path / "zeros.txt"
        trace.write_text("0" * 64)
        assert main(["design", "--order", "3", "--trace-file", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "MooreMachine: 1 states" in out

    def test_short_trace_exits_with_structured_error(self, tmp_path, capsys):
        trace = tmp_path / "short.txt"
        trace.write_text("010")
        assert main(["design", "--order", "4", "--trace-file", str(trace)]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "stage=profile" in err

    def test_missing_trace_file_is_clean_systemexit(self, tmp_path):
        missing = tmp_path / "nope.txt"
        with pytest.raises(SystemExit) as excinfo:
            main(["design", "--trace-file", str(missing)])
        assert "cannot read trace file" in str(excinfo.value)

    def test_nan_threshold_exits_with_structured_error(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0101" * 20)
        code = main(
            ["design", "--order", "2", "--threshold", "nan",
             "--trace-file", str(trace)]
        )
        assert code == 2
        assert "bias_threshold" in capsys.readouterr().err
