"""End-to-end chaos: real experiment sweeps under injected faults.

The acceptance contract: with any injector armed, a sweep either
completes with output identical to a clean serial run (recovered fault)
or fails with a structured ReproError naming the stage -- never a silent
wrong result.
"""

import pytest

from repro.harness.ablations import render_dontcare, run_dontcare_ablation
from repro.reliability.errors import DesignError, ReproError
from repro.reliability.faults import inject_faults


@pytest.fixture(scope="module")
def clean_rows():
    """The clean serial baseline, computed once."""
    return run_dontcare_ablation(
        benchmark="ijpeg",
        fractions=(0.0, 0.01),
        order=4,
        max_branches=6_000,
        top_branches=2,
    )


def _chaos_rows(jobs_env, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", jobs_env)
    return run_dontcare_ablation(
        benchmark="ijpeg",
        fractions=(0.0, 0.01),
        order=4,
        max_branches=6_000,
        top_branches=2,
    )


class TestRecoveredFaultsAreInvisible:
    def test_worker_crashes_leave_sweep_byte_identical(
        self, clean_rows, monkeypatch
    ):
        with inject_faults("worker_crash:2", seed=23, propagate_env=True):
            rows = _chaos_rows("2", monkeypatch)
        assert rows == clean_rows
        assert render_dontcare(rows) == render_dontcare(clean_rows)

    def test_cache_faults_leave_sweep_byte_identical(
        self, clean_rows, monkeypatch
    ):
        with inject_faults(
            "cache_read:0.5,cache_write:0.5,cache_corrupt:0.5",
            seed=29,
            propagate_env=True,
        ):
            rows = _chaos_rows("2", monkeypatch)
        assert rows == clean_rows

    def test_reorder_fault_leaves_sweep_byte_identical(
        self, clean_rows, monkeypatch
    ):
        with inject_faults("worker_reorder:1", seed=31, propagate_env=True):
            rows = _chaos_rows("2", monkeypatch)
        assert rows == clean_rows


class TestUnrecoverableFaultsAreStructured:
    def test_stage_failure_surfaces_as_design_error_naming_stage(
        self, monkeypatch, tmp_path
    ):
        # A cold cache forces the stages to actually run.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_JOBS", "1")
        with inject_faults("stage_fail:1", seed=37, propagate_env=True):
            with pytest.raises(ReproError) as excinfo:
                run_dontcare_ablation(
                    benchmark="ijpeg",
                    fractions=(0.0,),
                    order=4,
                    max_branches=6_000,
                    top_branches=1,
                )
        assert isinstance(excinfo.value, DesignError)
        assert excinfo.value.stage is not None
