"""parallel_map: same answer as the list comprehension, in the same order,
no matter how the pool behaves."""

import os

import pytest

from repro.obs.metrics import metrics, reset_metrics
from repro.perf import parallel as parallel_mod
from repro.perf.parallel import default_jobs, parallel_map


def _square(x):
    return x * x


def _pid_of(_x):
    return os.getpid()


def _explode(x):
    raise ValueError(f"boom {x}")


def _interrupt(x):
    raise KeyboardInterrupt


def test_serial_matches_comprehension():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=1) == [x * x for x in items]


def test_parallel_preserves_input_order():
    items = list(range(37))
    assert parallel_map(_square, items, jobs=4) == [x * x for x in items]


def test_unpicklable_fn_falls_back_to_serial():
    offset = 3  # closure makes the lambda unpicklable for pool workers
    items = list(range(10))
    assert parallel_map(lambda x: x + offset, items, jobs=2) == [
        x + 3 for x in items
    ]


def test_worker_exceptions_propagate():
    with pytest.raises(ValueError):
        parallel_map(_explode, [1, 2, 3], jobs=1)
    with pytest.raises(ValueError):
        parallel_map(_explode, [1, 2, 3], jobs=2)


def test_nested_calls_run_serially(monkeypatch):
    monkeypatch.setattr(parallel_mod, "_IN_WORKER", True)
    pids = parallel_map(_pid_of, [1, 2, 3, 4], jobs=4)
    assert set(pids) == {os.getpid()}


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert default_jobs() == 1


def test_empty_and_single_item():
    assert parallel_map(_square, [], jobs=8) == []
    assert parallel_map(_square, [5], jobs=8) == [25]


class TestKeyboardInterrupt:
    """An interrupt is a shutdown request, not an infrastructure failure:
    it must propagate immediately -- never retried, never converted into a
    WorkerError by the serial fallback, never swallowed."""

    def test_serial_interrupt_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            parallel_map(_interrupt, [1, 2, 3], jobs=1)

    def test_pooled_interrupt_propagates_without_retries(self):
        reset_metrics()
        with pytest.raises(KeyboardInterrupt):
            parallel_map(_interrupt, [1, 2, 3], jobs=2)
        assert metrics().get("parallel.interrupts") == 1
        assert metrics().get("parallel.retries") == 0
        assert metrics().get("parallel.serial_fallbacks") == 0

    def test_pooled_interrupt_reaps_workers(self):
        import multiprocessing
        import time

        with pytest.raises(KeyboardInterrupt):
            parallel_map(_interrupt, [1, 2, 3, 4], jobs=2)
        # _reap() terminated the pool on the way out; give the OS a beat
        # to deliver the signals, then assert no worker survived.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not [p for p in multiprocessing.active_children() if p.is_alive()]:
                return
            time.sleep(0.05)
        raise AssertionError("pool workers still alive after interrupt")


class TestOnResult:
    def test_serial_on_result_once_per_item(self):
        seen = []
        parallel_map(_square, [3, 4, 5], jobs=1, on_result=lambda i, v: seen.append((i, v)))
        assert seen == [(0, 9), (1, 16), (2, 25)]

    def test_pooled_on_result_once_per_item(self):
        seen = {}
        parallel_map(
            _square, list(range(8)), jobs=2,
            on_result=lambda i, v: seen.__setitem__(i, v),
        )
        assert seen == {i: i * i for i in range(8)}

    def test_fallback_on_result_once_per_item(self):
        # Unpicklable fn -> serial path; the hook still fires exactly once.
        seen = []
        offset = 1
        parallel_map(
            lambda x: x + offset, [1, 2], jobs=2,
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert seen == [(0, 2), (1, 3)]
