"""parallel_map: same answer as the list comprehension, in the same order,
no matter how the pool behaves."""

import os

import pytest

from repro.perf import parallel as parallel_mod
from repro.perf.parallel import default_jobs, parallel_map


def _square(x):
    return x * x


def _pid_of(_x):
    return os.getpid()


def _explode(x):
    raise ValueError(f"boom {x}")


def test_serial_matches_comprehension():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=1) == [x * x for x in items]


def test_parallel_preserves_input_order():
    items = list(range(37))
    assert parallel_map(_square, items, jobs=4) == [x * x for x in items]


def test_unpicklable_fn_falls_back_to_serial():
    offset = 3  # closure makes the lambda unpicklable for pool workers
    items = list(range(10))
    assert parallel_map(lambda x: x + offset, items, jobs=2) == [
        x + 3 for x in items
    ]


def test_worker_exceptions_propagate():
    with pytest.raises(ValueError):
        parallel_map(_explode, [1, 2, 3], jobs=1)
    with pytest.raises(ValueError):
        parallel_map(_explode, [1, 2, 3], jobs=2)


def test_nested_calls_run_serially(monkeypatch):
    monkeypatch.setattr(parallel_mod, "_IN_WORKER", True)
    pids = parallel_map(_pid_of, [1, 2, 3, 4], jobs=4)
    assert set(pids) == {os.getpid()}


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert default_jobs() == 1


def test_empty_and_single_item():
    assert parallel_map(_square, [], jobs=8) == []
    assert parallel_map(_square, [5], jobs=8) == [25]
