"""Property tests: the compiled Moore fast paths are exact.

Every claim the perf layer makes rests on `CompiledMoore` computing the
same thing as the one-symbol-at-a-time interpreter, for any machine and
any input length (including the block-boundary edge cases the blocked
kernel is most likely to get wrong).
"""

import pickle
import random

import pytest

from repro.automata.moore import MooreMachine
from repro.perf.compiled import CompiledMoore

numpy = pytest.importorskip("numpy")


def _random_machine(rng: random.Random, num_states: int) -> MooreMachine:
    return MooreMachine(
        alphabet=("0", "1"),
        start=rng.randrange(num_states),
        outputs=tuple(rng.randrange(2) for _ in range(num_states)),
        transitions=tuple(
            (rng.randrange(num_states), rng.randrange(num_states))
            for _ in range(num_states)
        ),
    )


def _reference_states(machine: MooreMachine, bits) -> list:
    state = machine.start
    states = []
    for bit in bits:
        state = machine.transitions[state][bit]
        states.append(state)
    return states


# State counts straddle the block-size tiers (16/12/8 bits) and the
# scan-vs-scalar-walk split at 64 states; lengths straddle block
# boundaries for every tier.
SIZES = [1, 2, 3, 5, 12, 16, 17, 63, 64, 65, 70, 300]
LENGTHS = [0, 1, 7, 8, 11, 12, 15, 16, 17, 96, 97, 333, 4097]


@pytest.mark.parametrize("num_states", SIZES)
def test_run_bits_matches_interpreter(num_states):
    rng = random.Random(num_states)
    for trial in range(3):
        machine = _random_machine(rng, num_states)
        compiled = machine.compile()
        for length in LENGTHS:
            bits = [rng.randrange(2) for _ in range(length)]
            expected = machine.trace_outputs("".join(map(str, bits)))
            assert list(compiled.run_bits(bits)) == expected
            assert list(compiled.run_bits(numpy.asarray(bits))) == expected


@pytest.mark.parametrize("num_states", [1, 5, 17, 70])
def test_run_states_and_final_state_match_interpreter(num_states):
    rng = random.Random(100 + num_states)
    machine = _random_machine(rng, num_states)
    compiled = machine.compile()
    for length in LENGTHS:
        bits = [rng.randrange(2) for _ in range(length)]
        expected = _reference_states(machine, bits)
        assert list(compiled.run_states(bits)) == expected
        assert compiled.final_state(bits) == (
            expected[-1] if expected else machine.start
        )


def test_explicit_start_state():
    rng = random.Random(7)
    machine = _random_machine(rng, 9)
    compiled = machine.compile()
    bits = [rng.randrange(2) for _ in range(45)]
    for start in range(machine.num_states):
        rebased = machine.with_start(start)
        expected = _reference_states(rebased, bits)
        assert list(compiled.run_states(bits, start=start)) == expected


def test_compile_is_memoized_and_excluded_from_pickle():
    machine = _random_machine(random.Random(3), 6)
    compiled = machine.compile()
    assert machine.compile() is compiled

    clone = pickle.loads(pickle.dumps(machine))
    assert "_compiled" not in clone.__dict__
    assert clone == machine
    bits = [1, 0, 1, 1, 0, 0, 1] * 9
    assert list(clone.compile().run_bits(bits)) == list(compiled.run_bits(bits))


def test_rejects_non_binary_alphabet():
    machine = MooreMachine(
        alphabet=("a", "b", "c"),
        start=0,
        outputs=(0, 1),
        transitions=((0, 1, 0), (1, 0, 1)),
    )
    with pytest.raises(ValueError):
        CompiledMoore(machine)
