"""Property tests: the machine-batched kernels are exact.

``BatchedMoore`` must agree with per-machine ``CompiledMoore``/
``MooreMachine.trace_outputs`` for arbitrary stacks (heterogeneous state
counts, ragged padding, empty traces, single-machine stacks), and
``banked_replay`` with its per-event reference loop for arbitrary index
streams, masks, and per-entry initial states.  The predictor
``_batch_simulate`` fast paths must be bit-identical to the serial
simulation loop, stats *and* post-simulation predictor state.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.moore import MooreMachine
from repro.perf.batched import (
    BATCH_THRESHOLD,
    BatchedMoore,
    _banked_replay_py,
    backend_info,
    banked_replay,
    batch_enabled,
    simulate_predictors_batched,
)

numpy = pytest.importorskip("numpy")


def _random_machine(rng: random.Random, num_states: int) -> MooreMachine:
    return MooreMachine(
        alphabet=("0", "1"),
        start=rng.randrange(num_states),
        outputs=tuple(rng.randrange(2) for _ in range(num_states)),
        transitions=tuple(
            (rng.randrange(num_states), rng.randrange(num_states))
            for _ in range(num_states)
        ),
    )


def _reference_states(machine: MooreMachine, bits) -> list:
    state = machine.start
    out = []
    for bit in bits:
        state = machine.transitions[state][bit]
        out.append(state)
    return out


@st.composite
def machine_stacks(draw):
    """Stacks with heterogeneous state counts (ragged padding on purpose)
    and a shared bit stream, lengths straddling block boundaries."""
    sizes = draw(
        st.lists(
            st.sampled_from([1, 2, 3, 5, 8, 17, 40, 65, 70]),
            min_size=1,
            max_size=6,
        )
    )
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    machines = [_random_machine(rng, n) for n in sizes]
    length = draw(st.sampled_from([0, 1, 7, 9, 10, 11, 16, 33, 100, 1111]))
    bits = [rng.randrange(2) for _ in range(length)]
    return machines, bits


@settings(max_examples=60, deadline=None)
@given(machine_stacks())
def test_batched_moore_matches_per_machine(stack):
    machines, bits = stack
    batched = BatchedMoore(machines)
    states = batched.run_states(bits)
    pre = batched.pre_states(bits)
    outs = batched.run_outputs(bits)
    finals = batched.final_states(bits)
    for m, machine in enumerate(machines):
        expected = _reference_states(machine, bits)
        assert list(states[m]) == expected
        assert list(pre[m]) == (
            [machine.start] + expected[:-1] if expected else []
        )
        text = "".join(map(str, bits))
        assert list(outs[m]) == machine.trace_outputs(text)
        assert finals[m] == (expected[-1] if expected else machine.start)


@settings(max_examples=30, deadline=None)
@given(machine_stacks())
def test_batched_moore_matches_pure_python_fallback(stack):
    machines, bits = stack
    batched = BatchedMoore(machines)
    slow = batched._run_states_slow(bits)
    fast = batched.run_states(bits)
    for m in range(len(machines)):
        assert list(fast[m]) == slow[m]


def test_long_stream_chunked_scan_matches_compiled():
    """Streams long enough for the B=12 table and the chunked scan's
    multi-block chunks (K > 1), which hypothesis's short traces miss."""
    rng = random.Random(41)
    machines = [_random_machine(rng, n) for n in (3, 8, 24, 64, 70)]
    length = 12 * 4096 + 77  # trips the B=12 path, leaves a ragged tail
    bits = numpy.asarray([rng.randrange(2) for _ in range(length)])
    stack = BatchedMoore(machines)
    states = stack.run_states(bits)
    outs = stack.run_outputs(bits)
    for m, machine in enumerate(machines):
        compiled = machine.compile()
        assert numpy.array_equal(states[m], compiled.run_states(bits))
        assert numpy.array_equal(outs[m], compiled.run_bits(bits))


def test_single_machine_stack_equals_compiled():
    rng = random.Random(7)
    for num_states in (1, 2, 17, 70):
        machine = _random_machine(rng, num_states)
        bits = [rng.randrange(2) for _ in range(513)]
        stacked = BatchedMoore([machine]).run_states(bits)
        compiled = machine.compile().run_states(numpy.asarray(bits))
        assert list(stacked[0]) == list(compiled)


def test_empty_stack_rejected():
    with pytest.raises(ValueError):
        BatchedMoore([])


def test_non_binary_alphabet_rejected():
    machine = MooreMachine(
        alphabet=("a", "b"), start=0, outputs=(0,), transitions=((0, 0),)
    )
    with pytest.raises(ValueError):
        BatchedMoore([machine])


# ----------------------------------------------------------------------
# banked_replay vs the per-event reference loop
# ----------------------------------------------------------------------

@st.composite
def bank_cases(draw):
    num_states = draw(st.sampled_from([2, 3, 4, 8, 17, 41]))
    seed = draw(st.integers(0, 2**16))
    rng = random.Random(seed)
    transitions = [
        (rng.randrange(num_states), rng.randrange(num_states))
        for _ in range(num_states)
    ]
    n = draw(st.sampled_from([0, 1, 5, 16, 17, 100, 1000]))
    num_entries = draw(st.sampled_from([1, 2, 7, 64, 1000]))
    indices = [rng.randrange(num_entries) for _ in range(n)]
    bits = [rng.randrange(2) for _ in range(n)]
    masked = draw(st.booleans())
    mask = [rng.randrange(2) for _ in range(n)] if masked else None
    custom_init = draw(st.booleans())
    start = rng.randrange(num_states)
    return transitions, start, indices, bits, mask, custom_init


@settings(max_examples=60, deadline=None)
@given(bank_cases())
def test_banked_replay_matches_reference(case):
    transitions, start, indices, bits, mask, custom_init = case
    num_states = len(transitions)
    if custom_init:
        def entry_initial(entries):
            return [(int(e) * 7 + 3) % num_states for e in entries]
    else:
        entry_initial = None
    got = banked_replay(
        transitions, start, indices, bits, update_mask=mask,
        entry_initial=entry_initial,
    )
    want = _banked_replay_py(
        transitions, start, indices, bits, mask, entry_initial
    )
    assert list(got.entries) == list(want.entries)
    assert list(got.pre_states) == list(want.pre_states)
    assert list(got.final_states) == list(want.final_states)


# ----------------------------------------------------------------------
# Predictor fast paths: stats and post-simulation state bit-identical
# ----------------------------------------------------------------------

def _synthetic_trace(n: int, seed: int = 5):
    class Trace:
        def __init__(self):
            rng = random.Random(seed)
            pcs = [0x1000 + 4 * rng.randrange(60) for _ in range(n)]
            self.pcs = pcs
            # Correlate outcomes with pc so predictors have signal.
            self.outcomes = [
                1 if (pc >> 2) % 3 != 0 else rng.randrange(2) for pc in pcs
            ]

        def __len__(self):
            return len(self.pcs)

        def __iter__(self):
            return iter(zip(self.pcs, self.outcomes))

    return Trace()


def _simulate_both(monkeypatch, make_predictor, trace, warmup=0):
    from repro.predictors.base import simulate_predictor

    monkeypatch.setenv("REPRO_BATCH", "0")
    serial = make_predictor()
    serial_stats = simulate_predictor(serial, trace, warmup=warmup)
    monkeypatch.setenv("REPRO_BATCH", "1")
    batched = make_predictor()
    batched_stats = simulate_predictor(batched, trace, warmup=warmup)
    assert (serial_stats.lookups, serial_stats.hits) == (
        batched_stats.lookups,
        batched_stats.hits,
    )
    return serial, batched


@pytest.mark.parametrize("warmup", [0, 257])
def test_gshare_batch_matches_serial(monkeypatch, warmup):
    from repro.predictors.gshare import GSharePredictor

    trace = _synthetic_trace(BATCH_THRESHOLD + 321)
    # Guard against a silently-declining fast path (which would make the
    # equality below vacuous: serial vs serial).
    assert (
        GSharePredictor(8)._batch_simulate(trace.pcs, trace.outcomes, 0)
        is not None
    )
    serial, batched = _simulate_both(
        monkeypatch, lambda: GSharePredictor(8), trace, warmup=warmup
    )
    assert serial._history == batched._history
    assert [c.value for c in serial._counters] == [
        c.value for c in batched._counters
    ]


def test_lgc_batch_matches_serial(monkeypatch):
    from repro.predictors.local_global import LocalGlobalChooser

    trace = _synthetic_trace(BATCH_THRESHOLD + 100, seed=11)
    serial, batched = _simulate_both(
        monkeypatch, lambda: LocalGlobalChooser(6), trace
    )
    assert serial._global_history == batched._global_history
    assert serial._local_histories == batched._local_histories
    for bank in ("_local_counters", "_global_counters", "_chooser"):
        assert [c.value for c in getattr(serial, bank)] == [
            c.value for c in getattr(batched, bank)
        ]


def test_xscale_batch_matches_serial(monkeypatch):
    from repro.predictors.xscale import XScalePredictor

    trace = _synthetic_trace(BATCH_THRESHOLD + 50, seed=3)
    serial, batched = _simulate_both(
        monkeypatch, lambda: XScalePredictor(16), trace
    )
    for a, b in zip(serial._entries, batched._entries):
        if a is None or b is None:
            assert a is None and b is None
        else:
            assert (a.tag, a.counter.value) == (b.tag, b.counter.value)


def test_simulate_predictors_batched_matches_loop(monkeypatch):
    from repro.predictors.base import simulate_predictor
    from repro.predictors.gshare import GSharePredictor

    trace = _synthetic_trace(BATCH_THRESHOLD + 10)
    monkeypatch.setenv("REPRO_BATCH", "0")
    want = [
        simulate_predictor(GSharePredictor(bits), trace) for bits in (4, 6, 8)
    ]
    monkeypatch.setenv("REPRO_BATCH", "1")
    got = simulate_predictors_batched(
        [GSharePredictor(bits) for bits in (4, 6, 8)], trace
    )
    assert [(s.lookups, s.hits) for s in got] == [
        (s.lookups, s.hits) for s in want
    ]


# ----------------------------------------------------------------------
# Knobs and metadata
# ----------------------------------------------------------------------

def test_repro_batch_knob(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH", "0")
    assert not batch_enabled()
    monkeypatch.setenv("REPRO_BATCH", "off")
    assert not batch_enabled()
    monkeypatch.setenv("REPRO_BATCH", "1")
    assert batch_enabled()
    monkeypatch.delenv("REPRO_BATCH")
    assert batch_enabled()


def test_backend_info_names_numpy():
    info = backend_info()
    assert info["backend"].startswith("numpy-")
    assert isinstance(info["batch_enabled"], bool)


def test_design_flow_cache_salt_covers_batched_kernels():
    """Kernel-era designs must never be served from pre-batch cache
    entries: the salt was bumped when the batched kernels landed."""
    from repro.perf.cache import DESIGN_FLOW_VERSION, digest_of

    assert DESIGN_FLOW_VERSION >= 3
    old = digest_of("design-from-trace", b"x", (), DESIGN_FLOW_VERSION - 1)
    new = digest_of("design-from-trace", b"x", (), DESIGN_FLOW_VERSION)
    assert old != new
