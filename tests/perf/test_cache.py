"""The design cache must be invisible: hits return exactly what a cold
computation returns, and a warm figure run renders byte-identical text."""

import pickle

import pytest

from repro.perf import cache as cache_mod
from repro.perf.cache import cache_dir, cached, digest_of, set_cache_enabled


@pytest.fixture
def tmp_cache(monkeypatch, tmp_path):
    """Point the cache at a fresh directory and make sure it is on."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.setattr(cache_mod, "_runtime_enabled", True)
    return tmp_path / "cache"


def test_digest_is_deterministic_and_sensitive():
    assert digest_of("a", 1, (2.5, True)) == digest_of("a", 1, (2.5, True))
    assert digest_of("a", 1) != digest_of("a", 2)
    # Length prefixing: the concatenation "ab"+"c" must not collide "a"+"bc".
    assert digest_of("ab", "c") != digest_of("a", "bc")


def test_cached_computes_once_then_hits(tmp_cache):
    calls = []

    def compute():
        calls.append(1)
        return {"rows": [1, 2, 3]}

    key = digest_of("unit", 1)
    first = cached("traces", key, compute)
    second = cached("traces", key, compute)
    assert first == second == {"rows": [1, 2, 3]}
    assert len(calls) == 1
    assert (tmp_cache / "traces" / key[:2] / f"{key}.pkl").exists()


def test_corrupt_entry_is_a_miss(tmp_cache):
    key = digest_of("unit", 2)
    assert cached("designs", key, lambda: 42) == 42
    path = tmp_cache / "designs" / key[:2] / f"{key}.pkl"
    path.write_bytes(b"not a pickle")
    assert cached("designs", key, lambda: 42) == 42
    # The recompute also repaired the entry.
    with open(path, "rb") as fh:
        assert pickle.load(fh) == 42


def test_disabled_cache_recomputes(tmp_cache):
    calls = []

    def compute():
        calls.append(1)
        return "value"

    key = digest_of("unit", 3)
    cached("traces", key, compute)
    set_cache_enabled(False)
    try:
        cached("traces", key, compute)
    finally:
        set_cache_enabled(True)
    assert len(calls) == 2


def test_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert cache_dir() == tmp_path / "elsewhere"


def test_warm_figure_run_is_byte_identical(tmp_cache):
    """Cold run populates the cache; the warm run must render the exact
    same figure text from cached traces and designs."""
    from repro.harness.fig2 import run_fig2_benchmark

    kwargs = dict(
        num_loads=6_000, history_lengths=(2, 3), bias_thresholds=(0.5, 0.9)
    )
    cold = run_fig2_benchmark("gcc", **kwargs).render()
    # The cold run must have left entries behind (traces and designs).
    categories = {p.name for p in tmp_cache.iterdir()}
    assert "loads" in categories
    warm = run_fig2_benchmark("gcc", **kwargs).render()
    assert warm == cold
