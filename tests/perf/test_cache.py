"""The design cache must be invisible: hits return exactly what a cold
computation returns, and a warm figure run renders byte-identical text."""

import pickle

import pytest

from repro.perf import cache as cache_mod
from repro.perf.cache import cache_dir, cached, digest_of, set_cache_enabled


@pytest.fixture
def tmp_cache(monkeypatch, tmp_path):
    """Point the cache at a fresh directory and make sure it is on."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.setattr(cache_mod, "_runtime_enabled", True)
    return tmp_path / "cache"


def test_digest_is_deterministic_and_sensitive():
    assert digest_of("a", 1, (2.5, True)) == digest_of("a", 1, (2.5, True))
    assert digest_of("a", 1) != digest_of("a", 2)
    # Length prefixing: the concatenation "ab"+"c" must not collide "a"+"bc".
    assert digest_of("ab", "c") != digest_of("a", "bc")


def test_cached_computes_once_then_hits(tmp_cache):
    calls = []

    def compute():
        calls.append(1)
        return {"rows": [1, 2, 3]}

    key = digest_of("unit", 1)
    first = cached("traces", key, compute)
    second = cached("traces", key, compute)
    assert first == second == {"rows": [1, 2, 3]}
    assert len(calls) == 1
    assert (tmp_cache / "traces" / key[:2] / f"{key}.pkl").exists()


def test_corrupt_entry_is_a_miss(tmp_cache):
    key = digest_of("unit", 2)
    assert cached("designs", key, lambda: 42) == 42
    path = tmp_cache / "designs" / key[:2] / f"{key}.pkl"
    path.write_bytes(b"not a pickle")
    assert cached("designs", key, lambda: 42) == 42
    # The recompute also repaired the entry.
    with open(path, "rb") as fh:
        assert pickle.load(fh) == 42


def test_disabled_cache_recomputes(tmp_cache):
    calls = []

    def compute():
        calls.append(1)
        return "value"

    key = digest_of("unit", 3)
    cached("traces", key, compute)
    set_cache_enabled(False)
    try:
        cached("traces", key, compute)
    finally:
        set_cache_enabled(True)
    assert len(calls) == 2


def test_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert cache_dir() == tmp_path / "elsewhere"


# ----------------------------------------------------------------------
# Cross-process single-flight locking
# ----------------------------------------------------------------------

def _locked_compute(args):
    """Pool helper: a slow cached compute that logs every execution."""
    import os
    import time

    cache_dir_str, marker = args
    os.environ["REPRO_CACHE_DIR"] = cache_dir_str

    def compute():
        with open(marker, "a") as fh:
            fh.write(f"{os.getpid()}\n")
        time.sleep(0.6)
        return "computed-once"

    key = digest_of("single-flight", 1)
    return cached("sf", key, compute)


def test_single_flight_computes_once_across_processes(tmp_cache, tmp_path):
    """Two processes missing on the same key: one computes, the loser
    waits on the lock and then *reads* the winner's entry."""
    from concurrent.futures import ProcessPoolExecutor

    marker = tmp_path / "computes.log"
    args = (str(tmp_cache), str(marker))
    with ProcessPoolExecutor(max_workers=2) as pool:
        values = list(pool.map(_locked_compute, [args, args]))
    assert values == ["computed-once", "computed-once"]
    computes = marker.read_text().splitlines()
    assert len(computes) == 1, f"both processes computed: {computes}"


def test_stale_lock_is_broken(tmp_cache, monkeypatch):
    import os
    import time

    from repro.obs.metrics import metrics, reset_metrics

    key = digest_of("stale", 1)
    path = tmp_cache / "locks" / key[:2] / f"{key}.pkl"
    lock = path.with_suffix(".lock")
    lock.parent.mkdir(parents=True)
    lock.write_text("99999\n")  # a holder that died without cleanup
    stale = time.time() - 3600
    os.utime(lock, (stale, stale))
    reset_metrics()
    assert cached("locks", key, lambda: "fresh") == "fresh"
    assert metrics().get("cache.lock_stale_broken") == 1
    assert not lock.exists()


def test_lock_timeout_computes_anyway(tmp_cache, monkeypatch):
    import os
    import time

    from repro.obs.metrics import metrics, reset_metrics

    monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "0.2")
    key = digest_of("timeout", 1)
    path = tmp_cache / "locks" / key[:2] / f"{key}.pkl"
    lock = path.with_suffix(".lock")
    lock.parent.mkdir(parents=True)
    lock.write_text("1\n")
    # mtime in the future: the lock never looks stale, so the waiter must
    # exhaust its deadline and proceed unlocked -- never deadlock.
    future = time.time() + 3600
    os.utime(lock, (future, future))
    reset_metrics()
    assert cached("locks", key, lambda: "anyway") == "anyway"
    assert metrics().get("cache.lock_timeouts") == 1


# ----------------------------------------------------------------------
# Eviction races
# ----------------------------------------------------------------------

def _populate(count):
    for i in range(count):
        cached("bulk", digest_of("bulk", i), lambda i=i: bytes(4096) + bytes([i]))


def test_eviction_tolerates_vanishing_entries(tmp_cache, monkeypatch):
    """An entry deleted between the eviction scan's listing and its
    stat() (a concurrent evictor) is skipped, never a crash."""
    from pathlib import Path

    _populate(4)  # no size bound yet: all four entries survive
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.001")

    real_stat = Path.stat
    tripped = []

    def flaky_stat(self, **kwargs):
        if self.suffix == ".pkl" and not tripped:
            tripped.append(self)
            raise FileNotFoundError(2, "vanished under the scan", str(self))
        return real_stat(self, **kwargs)

    monkeypatch.setattr(Path, "stat", flaky_stat)
    cache_mod._evict_if_needed()  # must not raise
    assert tripped, "the injected ENOENT was never exercised"


def _evict_worker(cache_dir_str):
    import os

    os.environ["REPRO_CACHE_DIR"] = cache_dir_str
    os.environ["REPRO_CACHE_MAX_MB"] = "0.001"
    cache_mod._evict_if_needed()
    return True


def test_two_process_eviction_race(tmp_cache):
    """Two processes evicting the same directory concurrently: entries
    vanish under both scans; neither may crash."""
    from concurrent.futures import ProcessPoolExecutor

    _populate(24)
    args = str(tmp_cache)
    with ProcessPoolExecutor(max_workers=2) as pool:
        assert list(pool.map(_evict_worker, [args, args])) == [True, True]


def test_warm_figure_run_is_byte_identical(tmp_cache):
    """Cold run populates the cache; the warm run must render the exact
    same figure text from cached traces and designs."""
    from repro.harness.fig2 import run_fig2_benchmark

    kwargs = dict(
        num_loads=6_000, history_lengths=(2, 3), bias_thresholds=(0.5, 0.9)
    )
    cold = run_fig2_benchmark("gcc", **kwargs).render()
    # The cold run must have left entries behind (traces and designs).
    categories = {p.name for p in tmp_cache.iterdir()}
    assert "loads" in categories
    warm = run_fig2_benchmark("gcc", **kwargs).render()
    assert warm == cold
