"""The column-oriented simulate_predictor fast path must be observationally
identical to the generic (pc, taken) iterable path: same predict/update
sequence, same stats, same warmup accounting."""

import random

import pytest

from repro.predictors.base import BranchPredictor, simulate_predictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.xscale import XScalePredictor
from repro.workloads.trace import BranchTrace


def _trace(length=4000, seed=99):
    rng = random.Random(seed)
    pcs = [rng.choice((4, 8, 12, 16, 20)) * 16 for _ in range(length)]
    outcomes = [1 if rng.random() < 0.6 else 0 for _ in range(length)]
    return BranchTrace(pcs=pcs, outcomes=outcomes)


class _Recorder(BranchPredictor):
    """Logs the exact call sequence it sees; predicts a pc parity hash."""

    name = "recorder"

    def __init__(self):
        self.calls = []

    def predict(self, pc):
        self.calls.append(("predict", pc))
        return bool(pc & 16)

    def update(self, pc, taken):
        self.calls.append(("update", pc, taken))

    def area(self):
        return 0.0

    def reset(self):
        self.calls = []


@pytest.mark.parametrize("warmup", [0, 1, 1000])
def test_column_trace_equals_tuple_iterable(warmup):
    trace = _trace()
    rows = list(zip(trace.pcs, [bool(o) for o in trace.outcomes]))

    fast = simulate_predictor(GSharePredictor(8), trace, warmup=warmup)
    slow = simulate_predictor(GSharePredictor(8), rows, warmup=warmup)
    assert fast == slow

    fast = simulate_predictor(XScalePredictor(), trace, warmup=warmup)
    slow = simulate_predictor(XScalePredictor(), rows, warmup=warmup)
    assert fast == slow


def test_call_sequence_is_identical():
    trace = _trace(length=500)
    rows = list(zip(trace.pcs, [bool(o) for o in trace.outcomes]))

    fast = _Recorder()
    simulate_predictor(fast, trace, warmup=7)
    slow = _Recorder()
    simulate_predictor(slow, rows, warmup=7)
    assert fast.calls == slow.calls
