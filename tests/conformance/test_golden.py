"""Golden vectors: the checked-in files reproduce byte-for-byte on a
clean tree, and tampering (or drift) is detected with a named vector."""

from __future__ import annotations

import json

from repro.conformance.golden import (
    GOLDEN_SCHEMA,
    check_golden_vectors,
    compute_vector,
    golden_corpus,
    golden_dir,
    write_golden_vectors,
)
from repro.core.pipeline import design_predictor


class TestCorpus:
    def test_corpus_is_deterministic(self):
        first = golden_corpus()
        second = golden_corpus()
        assert first == second

    def test_corpus_covers_every_family_and_degenerates(self):
        groups = {case.group for case in golden_corpus()}
        assert groups == {
            "paper",
            "uniform",
            "periodic",
            "bursty",
            "markov",
            "adversarial",
            "degenerate",
        }

    def test_names_are_unique(self):
        names = [case.name for case in golden_corpus()]
        assert len(names) == len(set(names))


class TestCheckedInVectors:
    def test_clean_tree_round_trips(self):
        # The acceptance criterion: regen on clean main produces no diff.
        assert check_golden_vectors() == []

    def test_checked_in_files_carry_schema(self):
        # golden_optimal.json is the oracle-bound family with its own
        # schema (see tests/predictors/test_optimal.py); every other
        # golden file is a pipeline vector under GOLDEN_SCHEMA.
        schemas = {
            "golden_optimal.json": "repro.golden-optimal/1",
            "golden_sources.json": "repro.golden-sources/1",
        }
        paths = sorted(golden_dir().glob("golden_*.json"))
        assert paths, "no golden files checked in"
        for path in paths:
            expected = schemas.get(path.name, GOLDEN_SCHEMA)
            assert json.loads(path.read_text())["schema"] == expected

    def test_regen_is_byte_identical(self, tmp_path):
        written = write_golden_vectors(tmp_path)
        for fresh in written:
            checked_in = golden_dir() / fresh.name
            assert fresh.read_bytes() == checked_in.read_bytes()


class TestVectorSemantics:
    def test_vector_machine_matches_pipeline(self):
        case = next(c for c in golden_corpus() if c.name == "paper_order2")
        vector = compute_vector(case)
        result = design_predictor(
            case.trace,
            order=case.order,
            bias_threshold=case.bias_threshold,
            dont_care_fraction=case.dont_care_fraction,
        )
        machine = result.machine
        assert vector["machine"]["start"] == machine.start
        assert tuple(vector["machine"]["outputs"]) == machine.outputs
        assert (
            tuple(tuple(row) for row in vector["machine"]["transitions"])
            == machine.transitions
        )
        assert vector["states"]["final"] == machine.num_states
        assert 0 <= vector["accuracy"]["hits"] <= vector["accuracy"]["lookups"]


class TestTamperDetection:
    def test_missing_file_reported(self, tmp_path):
        issues = check_golden_vectors(tmp_path)
        assert issues and all("missing golden file" in issue for issue in issues)

    def test_tampered_vector_reported(self, tmp_path):
        write_golden_vectors(tmp_path)
        path = tmp_path / "golden_paper.json"
        document = json.loads(path.read_text())
        document["vectors"][0]["accuracy"]["hits"] += 1
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        issues = check_golden_vectors(tmp_path)
        assert any(
            "differs" in issue and "accuracy" in issue for issue in issues
        )

    def test_stale_vector_reported(self, tmp_path):
        write_golden_vectors(tmp_path)
        path = tmp_path / "golden_paper.json"
        document = json.loads(path.read_text())
        document["vectors"].append(dict(document["vectors"][0], name="ghost"))
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        issues = check_golden_vectors(tmp_path)
        assert any("stale vector 'ghost'" in issue for issue in issues)

    def test_wrong_schema_reported(self, tmp_path):
        write_golden_vectors(tmp_path)
        path = tmp_path / "golden_paper.json"
        document = json.loads(path.read_text())
        document["schema"] = "repro.golden/0"
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        assert any("schema" in issue for issue in check_golden_vectors(tmp_path))
