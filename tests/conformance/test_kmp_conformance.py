"""Conformance check #11: the KMP closed forms hold, and the opt(k)
oracle is never beaten by a designed machine on analytic source traces."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.diff import run_stages
from repro.conformance.kmp_check import CASES, DESIGN_SLACK, check_kmp_corpus
from repro.predictors.optimal import (
    MAX_KMAX,
    machine_mispredicts,
    optimal_predictors,
)
from repro.workloads.sources import create_source


class TestPinnedCorpus:
    def test_every_case_honors_its_closed_form(self):
        assert check_kmp_corpus() == []

    def test_cases_fit_the_pure_python_oracle_budget(self):
        # The no-numpy CI leg runs this check with the exhaustive
        # oracle; every pinned chain must stay within its reach.
        for case in CASES:
            _rate, k_needed = create_source(case.spec).closed_form()
            assert k_needed <= 3, case.name

    def test_case_names_and_specs_are_unique(self):
        names = [case.name for case in CASES]
        specs = [case.spec for case in CASES]
        assert len(set(names)) == len(names)
        assert len(set(specs)) == len(specs)

    def test_kmax_cap_skips_expensive_cases(self):
        # A cap of 0 skips every case (all chains need >= 1 state), so
        # the corpus trivially passes -- the skip path, not a failure.
        assert check_kmp_corpus(kmax=0) == []

    def test_slack_is_sane(self):
        assert 0 < DESIGN_SLACK < 0.1


kmp_specs = st.builds(
    lambda pattern, variant, q, seed: (
        f"kmp:pattern={pattern},q={q},text=iid,variant={variant}",
        seed,
    ),
    pattern=st.sampled_from(["b", "ab", "aab", "abb"]),
    variant=st.sampled_from(["mp", "kmp"]),
    q=st.sampled_from(["1/5", "3/10", "1/2", "7/10"]),
    seed=st.integers(min_value=0, max_value=2**16),
)


class TestOracleIsNeverBeaten:
    @settings(max_examples=12)
    @given(case=kmp_specs, length=st.sampled_from([512, 1024, 2048]))
    def test_designed_machines_never_beat_opt_k(self, case, length):
        """opt(k) is exhaustive: any machine the design pipeline emits
        with S <= MAX_KMAX states must mispredict at least as often as
        opt(S) on the very trace both are scored on (traces <= 4096
        bits, per the conformance contract)."""
        spec, seed = case
        trace = create_source(spec).generate(length, seed)
        bits = trace.outcome_bits()
        art = run_stages(bits, order=2, bias_threshold=0.5)
        machine = art.final
        if machine.num_states > MAX_KMAX:
            return  # outside the oracle's exhaustive reach
        optima = optimal_predictors(bits, kmax=machine.num_states)
        best = optima[machine.num_states].mispredicts
        assert machine_mispredicts(machine, bits) >= best

    def test_closed_form_is_exact_not_floating(self):
        rate, _k = create_source(
            "kmp:pattern=ab,q=1/2,text=iid,variant=mp"
        ).closed_form()
        assert isinstance(rate, Fraction)
        assert rate == Fraction(2, 5)
