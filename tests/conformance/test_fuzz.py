"""Fuzzer determinism and artifact contracts: same seed, same bytes."""

from __future__ import annotations

import json

import pytest

from repro.conformance.fuzz import (
    FAMILIES,
    FuzzCase,
    fuzz_budget,
    fuzz_seed,
    generate_case,
    load_replay,
    replay_path,
    run_fuzz,
)
from repro.reliability.faults import inject_faults


class TestDeterminism:
    def test_generate_case_is_pure(self):
        for index in range(10):
            assert generate_case(5, index) == generate_case(5, index)

    def test_cases_cycle_through_families(self):
        families = [generate_case(0, i).family for i in range(len(FAMILIES))]
        assert families == list(FAMILIES)

    def test_traces_are_long_enough_to_design(self):
        for index in range(30):
            case = generate_case(1, index)
            assert len(case.bits) > case.order

    def test_replay_file_is_byte_identical(self, tmp_path):
        a = run_fuzz(seed=11, budget=6, out_dir=str(tmp_path / "a"))
        b = run_fuzz(seed=11, budget=6, out_dir=str(tmp_path / "b"))
        assert a.replay_file.read_bytes() == b.replay_file.read_bytes()
        assert a.ok and b.ok

    def test_different_seeds_differ(self, tmp_path):
        a = run_fuzz(seed=1, budget=4, out_dir=str(tmp_path / "a"))
        b = run_fuzz(seed=2, budget=4, out_dir=str(tmp_path / "b"))
        assert a.replay_file.read_bytes() != b.replay_file.read_bytes()


class TestReplayFiles:
    def test_round_trip(self, tmp_path):
        report = run_fuzz(seed=4, budget=5, out_dir=str(tmp_path))
        cases = load_replay(report.replay_file)
        assert cases == [generate_case(4, i) for i in range(5)]

    def test_replay_lines_carry_schema(self, tmp_path):
        report = run_fuzz(seed=4, budget=3, out_dir=str(tmp_path))
        for line in report.replay_file.read_text().splitlines():
            assert json.loads(line)["schema"] == "repro.fuzz/1"

    def test_single_document_replay(self, tmp_path):
        case = generate_case(0, 2)
        path = tmp_path / "one.json"
        path.write_text(json.dumps(case.to_json(), indent=2))
        assert load_replay(path) == [case]

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            FuzzCase.from_json({"schema": "bogus/9", "order": 2, "bits": "0101"})

    def test_replay_path_embeds_seed(self, tmp_path):
        assert replay_path(tmp_path, 42).name == "replay_42.jsonl"


class TestEnvironmentKnobs:
    def test_fuzz_seed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_SEED", "99")
        assert fuzz_seed() == 99
        monkeypatch.delenv("REPRO_FUZZ_SEED")
        assert fuzz_seed() == 0

    def test_fuzz_budget_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_BUDGET", "7")
        assert fuzz_budget() == 7


class TestCounterexampleArtifacts:
    def test_injected_fault_produces_artifacts(self, tmp_path):
        with inject_faults("hopcroft_offby1:1.0", seed=3):
            report = run_fuzz(seed=0, budget=5, out_dir=str(tmp_path))
        assert not report.ok
        assert report.counterexample_files
        record = json.loads(report.counterexample_files[0].read_text())
        assert record["schema"] == "repro.counterexample/1"
        assert record["stage"] == "automata.hopcroft"
        assert set(record["bits"]) <= {"0", "1"}
        # The artifact carries enough provenance to re-run the original.
        assert record["family"] in FAMILIES
        assert len(record["original_bits"]) >= len(record["bits"])

    def test_counterexample_loads_as_replay_case(self, tmp_path):
        with inject_faults("hopcroft_offby1:1.0", seed=3):
            report = run_fuzz(seed=0, budget=5, out_dir=str(tmp_path))
            (case,) = load_replay(report.counterexample_files[0])
            divergence = case.run()
        assert divergence is not None
        assert divergence.stage == "automata.hopcroft"


class TestSourceFamilies:
    def test_source_families_are_registered(self):
        assert "source_kmp" in FAMILIES
        assert "source_pybc" in FAMILIES

    def _source_cases(self, seed, count=60):
        cases = [generate_case(seed, i) for i in range(count)]
        return [c for c in cases if c.family.startswith("source_")]

    def test_source_cases_carry_provenance(self):
        cases = self._source_cases(3)
        assert cases, "the cycle must reach the source families"
        for case in cases:
            spec, _, rest = case.source.partition("#")
            assert spec.split(":", 1)[0] in ("kmp", "pybytecode")
            assert rest.startswith("seed=")

    def test_source_cases_replay_byte_identically(self):
        for case in self._source_cases(9, count=30):
            again = FuzzCase.from_json(case.to_json())
            assert again == case
            assert again.bits == case.bits
            assert again.source == case.source

    def test_provenance_regenerates_the_same_bits(self):
        from repro.workloads.sources import create_source

        for case in self._source_cases(5, count=30):
            spec, _, tail = case.source.partition("#")
            seed = int(tail.split("=", 1)[1])
            trace = create_source(spec).generate(len(case.bits), seed)
            assert "".join(map(str, trace.outcome_bits())) == case.bits

    def test_non_source_cases_omit_the_field(self):
        case = generate_case(0, 0)
        assert case.family == FAMILIES[0]
        assert "source" not in case.to_json()
