"""Golden vectors for the TraceSource registry: the checked-in
``golden_sources.json`` reproduces byte-for-byte on a clean tree and any
tamper or drift is reported with the vector's name."""

from __future__ import annotations

import json

import pytest

from repro.conformance.golden import (
    GOLDEN_SOURCES_SCHEMA,
    check_golden_sources,
    compute_source_vector,
    golden_dir,
    sources_corpus,
    write_golden_sources,
)
from repro.workloads.pybc import python_tag


def _checked_in_matches_this_interpreter() -> bool:
    stored = json.loads((golden_dir() / "golden_sources.json").read_text())
    tags = {v.get("python") for v in stored["vectors"]} - {None}
    return tags <= {python_tag()}


class TestCorpus:
    def test_corpus_covers_every_registered_source(self):
        prefixes = {case.spec.split(":", 1)[0] for case in sources_corpus()}
        assert prefixes == {"minivm", "pybytecode", "kmp"}

    def test_names_are_unique(self):
        names = [case.name for case in sources_corpus()]
        assert len(names) == len(set(names))

    def test_kmp_vectors_pin_their_closed_form(self):
        case = next(c for c in sources_corpus() if c.name == "kmp_ab_iid")
        vector = compute_source_vector(case)
        assert vector["closed_form"] == "2/5"
        assert vector["k_needed"] == 3

    def test_pybytecode_vectors_carry_the_dialect_tag(self):
        case = next(c for c in sources_corpus() if c.name == "pybc_sort")
        assert compute_source_vector(case)["python"] == python_tag()


class TestCheckedInVectors:
    def test_clean_tree_round_trips(self):
        # The acceptance criterion: regen on clean main produces no diff.
        assert check_golden_sources() == []

    def test_checked_in_file_carries_schema(self):
        stored = json.loads(
            (golden_dir() / "golden_sources.json").read_text()
        )
        assert stored["schema"] == GOLDEN_SOURCES_SCHEMA

    def test_regen_is_byte_identical(self, tmp_path):
        if not _checked_in_matches_this_interpreter():
            pytest.skip("checked-in vectors are for another bytecode dialect")
        fresh = write_golden_sources(tmp_path)
        checked_in = golden_dir() / fresh.name
        assert fresh.read_bytes() == checked_in.read_bytes()


class TestTamperDetection:
    def test_missing_file_reported(self, tmp_path):
        issues = check_golden_sources(tmp_path)
        assert issues and "missing golden file" in issues[0]

    def test_tampered_digest_reported(self, tmp_path):
        write_golden_sources(tmp_path)
        path = tmp_path / "golden_sources.json"
        document = json.loads(path.read_text())
        document["vectors"][0]["trace_sha256"] = "0" * 64
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        issues = check_golden_sources(tmp_path)
        assert any("differs" in issue for issue in issues)

    def test_stale_vector_reported(self, tmp_path):
        write_golden_sources(tmp_path)
        path = tmp_path / "golden_sources.json"
        document = json.loads(path.read_text())
        document["vectors"].append(dict(document["vectors"][0], name="ghost"))
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        issues = check_golden_sources(tmp_path)
        assert any("stale vector 'ghost'" in issue for issue in issues)

    def test_missing_vector_reported(self, tmp_path):
        write_golden_sources(tmp_path)
        path = tmp_path / "golden_sources.json"
        document = json.loads(path.read_text())
        dropped = document["vectors"].pop()
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        issues = check_golden_sources(tmp_path)
        assert any(dropped["name"] in issue and "missing" in issue for issue in issues)

    def test_wrong_schema_reported(self, tmp_path):
        write_golden_sources(tmp_path)
        path = tmp_path / "golden_sources.json"
        document = json.loads(path.read_text())
        document["schema"] = "repro.golden-sources/0"
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        assert any("schema" in issue for issue in check_golden_sources(tmp_path))

    def test_foreign_dialect_vectors_are_skipped_not_failed(self, tmp_path):
        write_golden_sources(tmp_path)
        path = tmp_path / "golden_sources.json"
        document = json.loads(path.read_text())
        for vector in document["vectors"]:
            if vector.get("python") is not None:
                vector["python"] = "0.0"
                vector["trace_sha256"] = "0" * 64  # would fail if compared
        path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        assert check_golden_sources(tmp_path) == []
