"""Conformance check #10: the optimal-predictor bound.

The stage's contract: a designed machine small enough for the exhaustive
oracle to search can never mispredict *fewer* times than the oracle's
exact optimum at that size.  These tests prove the stage is wired in,
passes on honest pipelines, and actually fires when the bound is
(artificially) violated.
"""

from __future__ import annotations

from repro.automata.moore import BINARY_ALPHABET, MooreMachine
from repro.conformance.diff import OPTIMAL_CHECK_MAX_BITS, STAGES, check_conformance
from repro.conformance.golden import check_oracle_corpus
from repro.predictors.optimal import OptimalResult


class TestStageRegistration:
    def test_sim_optimal_is_the_tenth_stage(self):
        assert STAGES[-1] == "sim.optimal"
        assert len(STAGES) == 10

    def test_trace_length_gate_is_sane(self):
        assert OPTIMAL_CHECK_MAX_BITS >= 1024


class TestHonestPipelinesConform:
    def test_paper_trace_passes_through_stage_ten(self):
        trace = [int(c) for c in "000010001011110111101111" * 2]
        for order in (1, 2):
            assert check_conformance(trace, order) is None

    def test_oracle_corpus_has_no_violations(self):
        assert check_oracle_corpus() == []


class TestStageFiresOnViolation:
    def test_inflated_bound_is_reported_as_sim_optimal(self, monkeypatch):
        trace = [int(c) for c in "000010001011110111101111"]

        def inflated(bits, kmax=None, **kwargs):
            witness = MooreMachine(
                alphabet=BINARY_ALPHABET,
                start=0,
                outputs=(0,),
                transitions=((0, 0),),
            )
            return {
                k: OptimalResult(
                    num_states=k,
                    mispredicts=len(bits) + 1,  # unbeatable => always fires
                    lookups=len(bits),
                    witness=witness,
                    structures_searched=1,
                )
                for k in range(1, (kmax or 4) + 1)
            }

        monkeypatch.setattr(
            "repro.predictors.optimal.optimal_predictors", inflated
        )
        divergence = check_conformance(trace, 2)
        assert divergence is not None
        assert divergence.stage == "sim.optimal"
        assert "beating the exhaustive optimum" in divergence.detail

    def test_corpus_checker_reports_violations(self, monkeypatch):
        def inflated(bits, kmax=None, **kwargs):
            witness = MooreMachine(
                alphabet=BINARY_ALPHABET,
                start=0,
                outputs=(0,),
                transitions=((0, 0),),
            )
            return {
                k: OptimalResult(
                    num_states=k,
                    mispredicts=len(bits) + 1,
                    lookups=len(bits),
                    witness=witness,
                    structures_searched=1,
                )
                for k in range(1, (kmax or 4) + 1)
            }

        monkeypatch.setattr(
            "repro.predictors.optimal.optimal_predictors", inflated
        )
        issues = check_oracle_corpus()
        assert issues, "inflated bound must be reported"
        assert any("beats the exhaustive optimum" in issue for issue in issues)
