"""The differential runner: clean pipelines conform, injected bugs are
caught at their own stage, and counterexamples minimize without wandering."""

from __future__ import annotations

import json
import random

from repro.conformance.diff import (
    STAGES,
    check_conformance,
    minimize_counterexample,
    run_stages,
)
from repro.core.pipeline import design_predictor
from repro.reliability.faults import inject_faults


def _random_trace(n: int, seed: int, bias: float = 0.65) -> list:
    rng = random.Random(seed)
    return [1 if rng.random() < bias else 0 for _ in range(n)]


class TestCleanConformance:
    def test_paper_trace_conforms(self, paper_trace):
        for order in (1, 2, 3):
            assert check_conformance(paper_trace * 4, order) is None

    def test_random_traces_conform(self):
        for seed in range(3):
            assert check_conformance(_random_trace(150, seed), 2) is None

    def test_knobs_conform(self, paper_trace):
        assert (
            check_conformance(
                paper_trace * 4, 3, bias_threshold=0.75, dont_care_fraction=0.05
            )
            is None
        )

    def test_degenerate_constant_trace_conforms(self):
        # All-ones: empty predict-0 side, universe cover, 1-state machine.
        assert check_conformance([1] * 30, 2) is None
        assert check_conformance([0] * 30, 2) is None

    def test_run_stages_matches_real_pipeline(self, paper_trace):
        """The uncached stage chain must land on exactly the machine the
        production FSMDesigner produces -- otherwise the runner would be
        conformance-testing a different pipeline."""
        for order in (1, 2, 4):
            art = run_stages(paper_trace * 4, order)
            result = design_predictor(paper_trace * 4, order=order)
            assert art.final == result.machine


class TestInjectedFault:
    def test_hopcroft_fault_caught_at_its_stage(self, paper_trace):
        with inject_faults("hopcroft_offby1:1.0", seed=3):
            divergence = check_conformance(paper_trace * 4, 2)
        assert divergence is not None
        assert divergence.stage == "automata.hopcroft"

    def test_minimization_shrinks_and_keeps_stage(self, paper_trace):
        with inject_faults("hopcroft_offby1:1.0", seed=3):
            divergence = check_conformance(paper_trace * 4, 2)
            minimized = minimize_counterexample(divergence)
            # 1-minimality contract: the minimized trace still reproduces.
            again = check_conformance(minimized.trace, minimized.order)
        assert minimized.stage == "automata.hopcroft"
        assert len(minimized.trace) <= len(divergence.trace)
        assert len(minimized.trace) > minimized.order
        assert again is not None and again.stage == "automata.hopcroft"

    def test_fault_invisible_without_plan(self, paper_trace):
        # The hook must be a no-op when no plan is armed.
        assert check_conformance(paper_trace * 4, 2) is None


class TestDivergenceArtifact:
    def test_to_json_schema(self, paper_trace):
        with inject_faults("hopcroft_offby1:1.0", seed=3):
            divergence = check_conformance(paper_trace * 4, 2)
        record = divergence.to_json()
        assert record["schema"] == "repro.counterexample/1"
        assert record["stage"] in STAGES
        assert record["bits"] == "".join(str(b) for b in divergence.trace)
        json.dumps(record)  # must be serializable as-is

    def test_describe_names_stage_and_trace(self, paper_trace):
        with inject_faults("hopcroft_offby1:1.0", seed=3):
            divergence = check_conformance(paper_trace * 4, 2)
        text = divergence.describe()
        assert "automata.hopcroft" in text
        assert f"({len(divergence.trace)} bits)" in text
