"""The oracles themselves: each reference implementation must agree with
the fast path it shadows on well-understood inputs -- and must be able to
tell a *wrong* artifact from a right one."""

from __future__ import annotations

import random

from repro.automata.moore import MooreMachine
from repro.conformance.oracles import (
    cover_violations,
    expected_history_language,
    is_minimal,
    machine_language,
    machines_agree_from,
    moore_language,
    oracle_markov_counts,
    oracle_minimal_moore,
    oracle_moore_outputs,
    oracle_pattern_sets,
    oracle_prediction_counts,
    oracle_steady_states,
    regex_language,
)
from repro.core.markov import MarkovModel
from repro.core.patterns import define_patterns
from repro.core.regex_build import history_language_regex
from repro.logic.cube import Cube


def _random_trace(n: int, seed: int, bias: float = 0.6) -> list:
    rng = random.Random(seed)
    return [1 if rng.random() < bias else 0 for _ in range(n)]


class TestMarkovOracle:
    def test_matches_fast_trainer(self, paper_trace):
        for order in (1, 2, 3, 4):
            for trace in (paper_trace * 3, _random_trace(300, order)):
                totals, ones = oracle_markov_counts(trace, order)
                model = MarkovModel.from_trace(trace, order)
                assert dict(model.totals) == totals
                assert dict(model.ones) == ones

    def test_history_bit_order(self):
        # After ...0,1 (1 most recent), the next outcome is counted under
        # history 0b01 = 1: bit 0 is the most recent outcome.
        totals, ones = oracle_markov_counts([0, 1, 1], 2)
        assert totals == {0b01: 1}
        assert ones == {0b01: 1}


class TestPatternOracle:
    def test_matches_define_patterns(self, paper_trace):
        for order in (2, 3):
            for dc in (0.0, 0.05, 0.3):
                model = MarkovModel.from_trace(paper_trace * 4, order)
                patterns = define_patterns(
                    model, bias_threshold=0.5, dont_care_fraction=dc
                )
                one, zero = oracle_pattern_sets(
                    dict(model.totals), dict(model.ones), 0.5, dc
                )
                assert patterns.predict_one == one
                assert patterns.predict_zero == zero

    def test_threshold_is_inclusive(self):
        # P[1|h] == threshold lands on the predict-1 side.
        one, zero = oracle_pattern_sets({0b0: 2}, {0b0: 1}, 0.5, 0.0)
        assert one == {0}
        assert zero == set()


class TestCoverOracle:
    def test_valid_cover_passes(self):
        cover = [Cube.from_minterm(0b01, 2)]
        assert cover_violations(cover, 2, frozenset({0b01}), frozenset({0b10})) == []

    def test_uncovered_on_minterm_flagged(self):
        issues = cover_violations([], 2, frozenset({0b01}), frozenset())
        assert any("not covered" in issue for issue in issues)

    def test_covered_off_minterm_flagged(self):
        cover = [Cube.universe(2)]
        issues = cover_violations(cover, 2, frozenset({0b01}), frozenset({0b10}))
        assert any("wrongly covered" in issue for issue in issues)

    def test_wrong_width_flagged(self):
        issues = cover_violations([Cube.universe(3)], 2, frozenset(), frozenset())
        assert any("width" in issue for issue in issues)


class TestLanguageOracles:
    def test_regex_language_matches_specification(self):
        # (0|1)* (terms): the emitted regex must denote exactly "strings
        # whose last N bits match some cube", straight off the AST.
        cover = [Cube.from_minterm(0b11, 2), Cube.from_minterm(0b00, 2)]
        regex = history_language_regex(cover)
        assert regex_language(regex, 4) == expected_history_language(cover, 2, 4)

    def test_machine_and_moore_language_agree_with_regex(self, paper_trace):
        from repro.conformance.diff import run_stages

        art = run_stages(paper_trace * 4, 2)
        want = regex_language(art.regex, 4)
        assert machine_language(art.nfa, 4) == want
        assert machine_language(art.dfa, 4) == want
        assert moore_language(MooreMachine.from_dfa(art.dfa), 4) == want


class TestSimulationOracles:
    def _machine(self):
        return MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1, 1),
            transitions=((0, 1), (0, 2), (0, 2)),
        )

    def test_outputs_match_trace_outputs(self):
        machine = self._machine()
        bits = _random_trace(100, 42)
        text = "".join(str(b) for b in bits)
        assert oracle_moore_outputs(machine, bits) == machine.trace_outputs(text)

    def test_prediction_counts(self):
        machine = self._machine()
        # From state 0 (predict 0): 1 is a miss -> state 1 (predict 1);
        # 1 is a hit -> state 2 (predict 1); 0 is a miss -> state 0.
        assert oracle_prediction_counts(machine, [1, 1, 0]) == (1, 3)


class TestMinimizationOracle:
    def test_collapses_duplicate_states(self):
        # States 1 and 2 are identical twins; the oracle must merge them.
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1, 1),
            transitions=((1, 2), (1, 2), (1, 2)),
        )
        minimal = oracle_minimal_moore(machine)
        assert minimal.num_states == 2
        assert is_minimal(minimal)
        assert machines_agree_from(machine, 0, minimal, minimal.start)

    def test_is_minimal_rejects_twins(self):
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1, 1),
            transitions=((1, 2), (1, 2), (1, 2)),
        )
        assert not is_minimal(machine)

    def test_matches_hopcroft_on_pipeline_machines(self, paper_trace):
        from repro.conformance.diff import run_stages

        for order in (1, 2, 3):
            art = run_stages(paper_trace * 4, order)
            moore = MooreMachine.from_dfa(art.dfa)
            assert oracle_minimal_moore(moore) == art.minimized


class TestSteadyStateOracle:
    def test_transient_start_state_excluded(self):
        # State 0 is never re-entered: after >= 1 input the machine lives
        # in {1, 2}.
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 0, 1),
            transitions=((1, 2), (1, 2), (2, 1)),
        )
        assert oracle_steady_states(machine, 1) == {1, 2}
        assert oracle_steady_states(machine, 0) == {0, 1, 2}

    def test_matches_startup_module(self, paper_trace):
        from repro.automata.startup import steady_state_core
        from repro.conformance.diff import run_stages

        for order in (2, 3):
            art = run_stages(paper_trace * 4, order)
            if art.minimized.num_states > 1:
                assert oracle_steady_states(
                    art.minimized, order
                ) == steady_state_core(art.minimized, order)
