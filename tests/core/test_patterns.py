"""Tests for the pattern-definition stage (Section 4.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.markov import MarkovModel
from repro.core.patterns import PatternSets, define_patterns, pattern_sets_summary


class TestPaperExample:
    def test_paper_sets(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        sets = define_patterns(model)
        # "predict 1" = {01, 10, 11}, "predict 0" = {00}, dc = empty.
        assert sets.predict_one == {0b01, 0b10, 0b11}
        assert sets.predict_zero == {0b00}
        assert not sets.dont_care

    def test_truth_table_matches_paper(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        table = define_patterns(model).to_truth_table()
        assert table.on_set == {1, 2, 3}
        assert table.off_set == {0}


class TestThreshold:
    def make_model(self):
        model = MarkovModel(order=1)
        # history 0: P[1] = 0.6; history 1: P[1] = 0.4
        for _ in range(6):
            model.observe(0, 1)
        for _ in range(4):
            model.observe(0, 0)
        for _ in range(4):
            model.observe(1, 1)
        for _ in range(6):
            model.observe(1, 0)
        return model

    def test_default_threshold_half(self):
        sets = define_patterns(self.make_model())
        assert sets.predict_one == {0}
        assert sets.predict_zero == {1}

    def test_tie_goes_to_predict_one(self):
        model = MarkovModel(order=1)
        model.observe(0, 1)
        model.observe(0, 0)
        sets = define_patterns(model)
        assert 0 in sets.predict_one

    def test_higher_threshold_shrinks_predict_one(self):
        sets = define_patterns(self.make_model(), bias_threshold=0.7)
        assert sets.predict_one == set()
        assert sets.predict_zero == {0, 1}

    def test_threshold_bounds_checked(self):
        model = self.make_model()
        with pytest.raises(ValueError):
            define_patterns(model, bias_threshold=1.5)
        with pytest.raises(ValueError):
            define_patterns(model, bias_threshold=-0.1)


class TestDontCare:
    def make_skewed_model(self):
        model = MarkovModel(order=2)
        for _ in range(97):
            model.observe(0b00, 1)
        for _ in range(2):
            model.observe(0b01, 0)
        model.observe(0b10, 1)
        return model

    def test_unseen_histories_always_dont_care(self):
        model = MarkovModel(order=2)
        model.observe(0b00, 1)
        sets = define_patterns(model)
        assert 0b11 in sets.dont_care
        assert 0b01 in sets.dont_care

    def test_zero_fraction_keeps_all_seen(self):
        sets = define_patterns(self.make_skewed_model(), dont_care_fraction=0.0)
        assert 0b10 in sets.predict_one

    def test_fraction_drops_rarest_first(self):
        # 1% of 100 observations = budget 1: only history 10 (count 1) drops.
        sets = define_patterns(self.make_skewed_model(), dont_care_fraction=0.01)
        assert 0b10 in sets.dont_care
        assert 0b01 in sets.predict_zero

    def test_larger_fraction_drops_more(self):
        sets = define_patterns(self.make_skewed_model(), dont_care_fraction=0.03)
        assert 0b10 in sets.dont_care
        assert 0b01 in sets.dont_care
        assert 0b00 in sets.predict_one

    def test_budget_not_exceeded(self):
        # Budget 0.5 observations: nothing may be dropped.
        sets = define_patterns(self.make_skewed_model(), dont_care_fraction=0.005)
        assert 0b10 in sets.predict_one

    def test_fraction_bounds_checked(self):
        with pytest.raises(ValueError):
            define_patterns(self.make_skewed_model(), dont_care_fraction=1.0)


class TestPatternSets:
    def test_summary(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        assert pattern_sets_summary(define_patterns(model)) == (3, 1, 0)

    def test_history_strings(self):
        sets = PatternSets(
            order=3, predict_one=frozenset({0b101}), predict_zero=frozenset()
        )
        assert sets.history_strings(sets.predict_one) == ["101"]

    def test_str(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        text = str(define_patterns(model))
        assert "predict1" in text and "00" in text


@given(
    st.lists(st.integers(0, 1), min_size=10, max_size=120),
    st.integers(1, 5),
    st.floats(0.0, 1.0),
    st.floats(0.0, 0.2),
)
def test_property_sets_partition_seen_histories(trace, order, threshold, fraction):
    model = MarkovModel.from_trace(trace, order)
    sets = define_patterns(model, bias_threshold=threshold, dont_care_fraction=fraction)
    seen = set(model.totals)
    assert sets.predict_one <= seen
    assert sets.predict_zero <= seen
    assert not (sets.predict_one & sets.predict_zero)
    # Unseen histories are never classified.
    unseen = set(range(1 << order)) - seen
    assert unseen <= sets.dont_care
