"""Tests for SOP-cover -> regular expression construction (Section 4.5)."""

from repro.automata import regex as rx
from repro.core.regex_build import cube_to_regex, cubes_to_regex, history_language_regex
from repro.logic.cube import Cube


class TestCubeToRegex:
    def test_all_care(self):
        assert str(cube_to_regex(Cube.from_string("10"))) == "10"

    def test_dont_care_becomes_any(self):
        assert str(cube_to_regex(Cube.from_string("1-"))) == "1(0|1)"

    def test_paper_terms(self):
        # (1 x) -> 1{0|1} and (x 1) -> {0|1}1
        assert str(cube_to_regex(Cube.from_string("1-"))) == "1(0|1)"
        assert str(cube_to_regex(Cube.from_string("-1"))) == "(0|1)1"

    def test_universal_cube(self):
        assert str(cube_to_regex(Cube.universe(2))) == "(0|1)(0|1)"


class TestCubesToRegex:
    def test_empty_cover_is_empty_language(self):
        assert cubes_to_regex([]) == rx.EmptySet()

    def test_single_term_no_alternation(self):
        node = cubes_to_regex([Cube.from_string("11")])
        assert str(node) == "11"

    def test_multiple_terms_alternate(self):
        node = cubes_to_regex([Cube.from_string("1-"), Cube.from_string("-1")])
        assert isinstance(node, rx.Alternate)


class TestHistoryLanguage:
    def test_paper_expression(self):
        # Final expression of Section 4.5 (with the star prefix).
        node = history_language_regex(
            [Cube.from_string("-1"), Cube.from_string("1-")]
        )
        assert str(node) == "(0|1)*((0|1)1|1(0|1))"

    def test_empty_cover(self):
        assert history_language_regex([]) == rx.EmptySet()

    def test_language_semantics(self):
        from repro.automata.dfa import subset_construct
        from repro.automata.nfa import thompson_construct

        node = history_language_regex([Cube.from_string("1-")])
        dfa = subset_construct(thompson_construct(node, alphabet=("0", "1")))
        # Any string whose second-to-last bit is 1 is accepted.
        assert dfa.accepts_string("10")
        assert dfa.accepts_string("0011")
        assert not dfa.accepts_string("00")
        assert not dfa.accepts_string("1")  # too short
        assert not dfa.accepts_string("")
