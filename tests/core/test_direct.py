"""Tests for the direct history-automaton oracle."""

import pytest

from repro.core.direct import direct_history_machine
from repro.logic.cube import Cube


class TestDirectConstruction:
    def test_unminimized_has_full_state_space(self):
        machine = direct_history_machine(
            [Cube.from_string("-11")], order=3, minimize=False
        )
        assert machine.num_states == 8

    def test_minimized_is_smaller(self):
        machine = direct_history_machine([Cube.from_string("--1")], order=3)
        assert machine.num_states == 2  # output = newest bit

    def test_paper_cover_gives_three_states(self):
        machine = direct_history_machine(
            [Cube.from_string("-1"), Cube.from_string("1-")], order=2
        )
        assert machine.num_states == 3

    def test_output_matches_cover(self):
        cover = [Cube.from_string("1-0")]
        machine = direct_history_machine(cover, order=3, minimize=False)
        for history in range(8):
            bits = format(history, "03b")
            assert machine.output_after(bits) == (
                1 if cover[0].contains_minterm(history) else 0
            )

    def test_start_history_selects_start_state(self):
        machine = direct_history_machine(
            [Cube.from_string("11")], order=2, start_history="11", minimize=False
        )
        assert machine.outputs[machine.start] == 1

    def test_cube_width_checked(self):
        with pytest.raises(ValueError):
            direct_history_machine([Cube.from_string("1")], order=3)

    def test_order_checked(self):
        with pytest.raises(ValueError):
            direct_history_machine([], order=0)

    def test_start_history_length_checked(self):
        with pytest.raises(ValueError):
            direct_history_machine([], order=2, start_history="111")

    def test_empty_cover_always_zero(self):
        machine = direct_history_machine([], order=2)
        assert machine.num_states == 1
        assert machine.outputs == (0,)
