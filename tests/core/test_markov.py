"""Tests for the order-N Markov model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.markov import MarkovModel, history_push

bit_lists = st.lists(st.integers(0, 1), max_size=200)


class TestPaperExample:
    """Section 4.2: t = 0000 1000 1011 1101 1110 1111, N = 2 gives
    P[1|00] = 2/5, P[1|01] = 3/5, P[1|10] = 3/4, P[1|11] = 6/8."""

    def test_probabilities(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        assert model.probability_of_one(0b00) == pytest.approx(2 / 5)
        assert model.probability_of_one(0b01) == pytest.approx(3 / 5)
        assert model.probability_of_one(0b10) == pytest.approx(3 / 4)
        assert model.probability_of_one(0b11) == pytest.approx(6 / 8)

    def test_counts(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        assert model.count(0b00) == 5
        assert model.count(0b01) == 5
        assert model.count(0b10) == 4
        assert model.count(0b11) == 8

    def test_from_bit_string_ignores_spaces(self):
        model = MarkovModel.from_bit_string("0000 1000 1011 1101 1110 1111", 2)
        assert model.probability_of_one(0b00) == pytest.approx(2 / 5)

    def test_total_observations(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        assert model.total_observations == len(paper_trace) - 2


class TestConstruction:
    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            MarkovModel(order=-1)

    def test_short_trace_gives_empty_model(self):
        model = MarkovModel.from_trace([1, 0], order=4)
        assert model.total_observations == 0
        assert model.num_histories == 0

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            MarkovModel.from_trace([0, 1, 2], order=1)

    def test_unseen_history_is_none(self):
        model = MarkovModel.from_trace([0, 0, 0, 0], order=2)
        assert model.probability_of_one(0b11) is None

    def test_order_zero(self):
        model = MarkovModel.from_trace([1, 1, 0, 1], order=0)
        assert model.probability_of_one(0) == pytest.approx(3 / 4)

    def test_history_encoding_newest_bit_is_lsb(self):
        # Trace 0,1 then next bit: history int must be 0b01.
        model = MarkovModel(order=2)
        model.update_from_trace([0, 1, 1])
        assert model.count(0b01) == 1

    def test_history_string(self):
        model = MarkovModel(order=3)
        assert model.history_string(0b101) == "101"

    def test_observe(self):
        model = MarkovModel(order=2)
        model.observe(0b10, 1)
        model.observe(0b10, 0)
        assert model.probability_of_one(0b10) == pytest.approx(0.5)


class TestMergeAndTruncate:
    def test_merge_adds_counts(self, paper_trace):
        a = MarkovModel.from_trace(paper_trace, order=2)
        merged = a.merge(a)
        assert merged.count(0b00) == 2 * a.count(0b00)
        assert merged.probability_of_one(0b00) == a.probability_of_one(0b00)

    def test_merge_order_mismatch(self):
        with pytest.raises(ValueError):
            MarkovModel(order=2).merge(MarkovModel(order=3))

    def test_truncated_sums_counts(self, paper_trace):
        full = MarkovModel.from_trace(paper_trace, order=4)
        small = full.truncated(2)
        # Counts by most-recent-2 history must match the order-4 totals.
        expected = {}
        for h, c in full.totals.items():
            expected[h & 0b11] = expected.get(h & 0b11, 0) + c
        for h, c in expected.items():
            assert small.count(h) == c

    def test_truncated_same_order_is_identity(self):
        model = MarkovModel(order=3)
        assert model.truncated(3) is model

    def test_truncated_cannot_extend(self):
        with pytest.raises(ValueError):
            MarkovModel(order=2).truncated(5)


class TestReporting:
    def test_as_table_rows(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=2)
        rows = {h: (c, p) for h, c, p in model.as_table()}
        assert rows["00"][0] == 5
        assert rows["00"][1] == pytest.approx(2 / 5)
        assert set(rows) == {"00", "01", "10", "11"}

    def test_str_mentions_probabilities(self, paper_trace):
        text = str(MarkovModel.from_trace(paper_trace, order=2))
        assert "P[1|00]" in text


class TestHistoryPush:
    def test_push_shifts_in_at_lsb(self):
        assert history_push(0b01, 1, 3) == 0b011

    def test_push_drops_oldest(self):
        assert history_push(0b111, 0, 3) == 0b110


@given(bit_lists, st.integers(1, 6))
def test_property_counts_conserved(trace, order):
    model = MarkovModel.from_trace(trace, order)
    expected = max(0, len(trace) - order)
    assert model.total_observations == expected
    assert sum(model.ones.values()) == sum(trace[order:])


@given(bit_lists, st.integers(1, 6))
def test_property_probabilities_in_range(trace, order):
    model = MarkovModel.from_trace(trace, order)
    for history in model.histories():
        p = model.probability_of_one(history)
        assert p is not None and 0.0 <= p <= 1.0


@given(bit_lists, st.integers(2, 6))
def test_property_truncation_conserves_mass(trace, order):
    model = MarkovModel.from_trace(trace, order)
    small = model.truncated(1)
    assert small.total_observations == model.total_observations
