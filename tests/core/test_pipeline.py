"""End-to-end tests of the design pipeline, anchored on the paper's
worked example (Sections 4.2-4.7, Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.direct import direct_history_machine
from repro.core.markov import MarkovModel
from repro.core.pipeline import DesignConfig, FSMDesigner, design_predictor
from repro.logic.cube import Cube, cover_contains


def all_strings_of_length(n):
    frontier = [""]
    for _ in range(n):
        frontier = [s + c for s in frontier for c in "01"]
    return frontier


class TestWorkedExample:
    """Every number the paper reports for trace t."""

    def test_cover_is_x1_or_1x(self, paper_trace):
        result = design_predictor(paper_trace, order=2)
        assert set(result.cover) == {Cube.from_string("-1"), Cube.from_string("1-")}

    def test_cover_strings_notation(self, paper_trace):
        result = design_predictor(paper_trace, order=2)
        assert set(result.cover_strings()) == {"x1", "1x"}

    def test_minimized_machine_has_five_states(self, paper_trace):
        # Figure 1 left: the Hopcroft-minimized machine with start-up states.
        result = design_predictor(paper_trace, order=2)
        assert result.minimized_states == 5

    def test_two_startup_states_removed(self, paper_trace):
        result = design_predictor(paper_trace, order=2)
        assert result.startup_states_removed == 2

    def test_final_machine_has_three_states(self, paper_trace):
        # Figure 1 right.
        result = design_predictor(paper_trace, order=2)
        assert result.machine.num_states == 3

    def test_final_machine_captures_patterns(self, paper_trace):
        # "the patterns ending in 01, 10, and 11 are still captured
        # correctly" -- from any state.
        machine = design_predictor(paper_trace, order=2).machine
        for start in range(machine.num_states):
            assert machine.outputs[machine.run("01", start=start)] == 1
            assert machine.outputs[machine.run("10", start=start)] == 1
            assert machine.outputs[machine.run("11", start=start)] == 1
            assert machine.outputs[machine.run("00", start=start)] == 0

    def test_exactly_one_predict_zero_state(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        assert sorted(machine.outputs) == [0, 1, 1]

    def test_summary_mentions_cover(self, paper_trace):
        assert "x1|1x" in design_predictor(paper_trace, order=2).summary()


class TestConfigValidation:
    def test_order_must_be_positive(self):
        with pytest.raises(ValueError):
            DesignConfig(order=0)

    def test_canonical_history_length_checked(self):
        with pytest.raises(ValueError):
            DesignConfig(order=3, canonical_history="01")

    def test_canonical_history_alphabet_checked(self):
        with pytest.raises(ValueError):
            DesignConfig(order=2, canonical_history="2x")


class TestDegenerateCases:
    def test_all_ones_trace(self):
        result = design_predictor([1] * 40, order=3)
        assert result.machine.num_states == 1
        assert result.machine.outputs == (1,)

    def test_all_zeros_trace(self):
        result = design_predictor([0] * 40, order=3)
        assert result.machine.num_states == 1
        assert result.machine.outputs == (0,)

    def test_alternating_trace(self):
        result = design_predictor([0, 1] * 30, order=2)
        machine = result.machine
        # Prediction must track the alternation: after 01 predict 0 etc.
        assert machine.output_after("0101") == 0
        assert machine.output_after("1010") == 1

    def test_design_from_model_truncates_higher_order(self, paper_trace):
        model = MarkovModel.from_trace(paper_trace, order=4)
        designer = FSMDesigner(DesignConfig(order=2))
        result = designer.design_from_model(model)
        assert result.model.order == 2

    def test_no_reduction_keeps_startup_states(self, paper_trace):
        designer = FSMDesigner(DesignConfig(order=2, reduce_startup=False))
        result = designer.design_from_trace(paper_trace)
        assert result.machine.num_states == 5
        assert result.startup_states_removed == 0


class TestKeyInvariant:
    """Section 7.6: 'no matter what state the FSM predictor was in before
    performing the H branch updates, after the updates it will be in the
    desired prediction state.'"""

    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_output_determined_by_last_n_bits(self, paper_trace, order):
        result = design_predictor(paper_trace, order=order)
        machine = result.machine
        for history in all_strings_of_length(order):
            expected = 1 if cover_contains(result.cover, int(history, 2)) else 0
            for start in range(machine.num_states):
                assert machine.outputs[machine.run(history, start=start)] == expected

    def test_equivalent_to_direct_construction(self, paper_trace):
        # Both machines start in their all-zeros-history state, so they
        # must agree on every input string, not only long ones.
        result = design_predictor(paper_trace, order=2)
        direct = direct_history_machine(result.cover, order=2)
        assert direct.num_states == result.machine.num_states
        for length in range(6):
            for text in all_strings_of_length(length):
                assert result.machine.output_after(text) == direct.output_after(text)


@given(
    st.lists(st.integers(0, 1), min_size=20, max_size=80),
    st.integers(1, 4),
)
@settings(max_examples=30)
def test_property_pipeline_machine_matches_direct_oracle(trace, order):
    """The full regex->NFA->DFA->Hopcroft->reduction chain must produce a
    machine equivalent (on steady-state strings) to the directly
    constructed minimal history automaton."""
    result = design_predictor(trace, order=order)
    oracle = direct_history_machine(result.cover, order=order)
    assert result.machine.num_states == oracle.num_states
    frontier = [""]
    for _ in range(order + 3):
        frontier = [s + c for s in frontier for c in "01"]
    for text in frontier:
        assert result.machine.output_after(text) == oracle.output_after(text)


@given(
    st.lists(st.integers(0, 1), min_size=20, max_size=80),
    st.integers(1, 4),
    st.floats(0.5, 1.0),
)
@settings(max_examples=30)
def test_property_machine_realizes_cover(trace, order, threshold):
    result = design_predictor(trace, order=order, bias_threshold=threshold)
    machine = result.machine
    for history_int in range(1 << order):
        history = format(history_int, f"0{order}b")
        expected = 1 if cover_contains(result.cover, history_int) else 0
        for start in range(machine.num_states):
            assert machine.outputs[machine.run(history, start=start)] == expected
