"""Tests for saturating up/down counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predictors.sud import FULL_DECREMENT, SaturatingUpDownCounter, TwoBitCounter


class TestTwoBitCounter:
    def test_paper_semantics(self):
        counter = TwoBitCounter()
        # "When the counter has a value less than or equal to 1, the branch
        # is predicted as not-taken."
        assert counter.value == 0
        assert not counter.predict()
        counter.update(True)
        assert counter.value == 1 and not counter.predict()
        counter.update(True)
        assert counter.value == 2 and counter.predict()
        counter.update(True)
        assert counter.value == 3 and counter.predict()

    def test_saturates_at_three(self):
        counter = TwoBitCounter(initial=3)
        counter.update(True)
        assert counter.value == 3

    def test_saturates_at_zero(self):
        counter = TwoBitCounter()
        counter.update(False)
        assert counter.value == 0

    def test_hysteresis(self):
        counter = TwoBitCounter(initial=3)
        counter.update(False)
        assert counter.predict()  # still taken at 2
        counter.update(False)
        assert not counter.predict()

    def test_num_states(self):
        assert TwoBitCounter().num_states == 4

    def test_storage_bits(self):
        assert TwoBitCounter().storage_bits == 2


class TestParameterization:
    def test_custom_increment(self):
        counter = SaturatingUpDownCounter(max_value=10, increment=3, threshold=5)
        counter.update(True)
        counter.update(True)
        assert counter.value == 6
        assert counter.predict()

    def test_custom_decrement(self):
        counter = SaturatingUpDownCounter(
            max_value=10, decrement=4, threshold=5, initial=10
        )
        counter.update(False)
        assert counter.value == 6

    def test_full_decrement_clears(self):
        counter = SaturatingUpDownCounter(
            max_value=40, decrement=FULL_DECREMENT, threshold=20, initial=39
        )
        counter.update(False)
        assert counter.value == 0

    def test_reset_restores_initial(self):
        counter = SaturatingUpDownCounter(max_value=7, threshold=4, initial=3)
        counter.update(True)
        counter.reset()
        assert counter.value == 3

    def test_threshold_at_zero_always_predicts(self):
        counter = SaturatingUpDownCounter(max_value=3, threshold=0)
        assert counter.predict()

    def test_threshold_above_max_never_predicts(self):
        counter = SaturatingUpDownCounter(max_value=3, threshold=4)
        for _ in range(10):
            counter.update(True)
        assert not counter.predict()


class TestValidation:
    def test_max_value_positive(self):
        with pytest.raises(ValueError):
            SaturatingUpDownCounter(max_value=0)

    def test_increment_positive(self):
        with pytest.raises(ValueError):
            SaturatingUpDownCounter(max_value=3, increment=0)

    def test_decrement_validated(self):
        with pytest.raises(ValueError):
            SaturatingUpDownCounter(max_value=3, decrement=0)
        with pytest.raises(ValueError):
            SaturatingUpDownCounter(max_value=3, decrement=-2)

    def test_initial_in_range(self):
        with pytest.raises(ValueError):
            SaturatingUpDownCounter(max_value=3, initial=4)

    def test_threshold_in_range(self):
        with pytest.raises(ValueError):
            SaturatingUpDownCounter(max_value=3, threshold=5)


@given(
    st.integers(1, 50),
    st.integers(1, 5),
    st.sampled_from([1, 2, 5, 10, FULL_DECREMENT]),
    st.lists(st.booleans(), max_size=200),
)
def test_property_value_stays_in_range(max_value, increment, decrement, events):
    counter = SaturatingUpDownCounter(
        max_value=max_value, increment=increment, decrement=decrement,
        threshold=min(1, max_value),
    )
    for event in events:
        counter.update(event)
        assert 0 <= counter.value <= max_value


@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_property_monotone_response(events):
    """Feeding only ups never lowers the value; only downs never raise it."""
    up = SaturatingUpDownCounter(max_value=10, threshold=5)
    previous = up.value
    for _ in events:
        up.update(True)
        assert up.value >= previous
        previous = up.value
