"""Tests for the predictor protocol base class."""

import pytest

from repro.predictors.base import BranchPredictor


class _Minimal(BranchPredictor):
    """A predictor that implements only the abstract interface."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def area(self) -> float:
        return 1.0


class TestProtocol:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            BranchPredictor()  # type: ignore[abstract]

    def test_minimal_implementation_works(self):
        predictor = _Minimal()
        assert predictor.predict(0) is True
        predictor.update(0, True)
        assert predictor.area() == 1.0

    def test_reset_default_raises(self):
        """A predictor that forgot to implement reset must fail loudly
        rather than silently alias state between runs."""
        with pytest.raises(NotImplementedError):
            _Minimal().reset()

    def test_all_shipped_predictors_implement_reset(self):
        from repro.predictors.bimodal import BimodalPredictor
        from repro.predictors.custom import CustomBranchPredictor
        from repro.predictors.gshare import GSharePredictor
        from repro.predictors.local_global import LocalGlobalChooser
        from repro.predictors.loop import LoopTerminationPredictor
        from repro.predictors.ppm import PPMPredictor
        from repro.predictors.xscale import XScalePredictor

        for predictor in (
            BimodalPredictor(16),
            GSharePredictor(4),
            LocalGlobalChooser(4),
            LoopTerminationPredictor(16),
            PPMPredictor(3),
            XScalePredictor(16),
            CustomBranchPredictor([]),
        ):
            predictor.update(0x40, True)
            predictor.reset()  # must not raise
