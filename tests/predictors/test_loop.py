"""Tests for the loop-termination predictor extension."""

import pytest

from repro.predictors.base import simulate_predictor
from repro.predictors.loop import LoopTerminationPredictor
from repro.predictors.bimodal import BimodalPredictor


def loop_trace(trip, iterations, pc=0x100):
    trace = []
    for _ in range(iterations):
        trace.extend([(pc, True)] * trip)
        trace.append((pc, False))
    return trace


class TestLoopTermination:
    def test_learns_fixed_trip_count(self):
        predictor = LoopTerminationPredictor()
        stats = simulate_predictor(predictor, loop_trace(7, 50), warmup=24)
        assert stats.miss_rate == 0.0

    def test_beats_two_bit_counter_on_loops(self):
        trace = loop_trace(5, 60)
        loop = simulate_predictor(LoopTerminationPredictor(), list(trace), warmup=18)
        counter = simulate_predictor(BimodalPredictor(64), list(trace), warmup=18)
        assert loop.miss_rate < counter.miss_rate

    def test_adapts_to_trip_change(self):
        predictor = LoopTerminationPredictor()
        trace = loop_trace(4, 30) + loop_trace(9, 30)
        stats = simulate_predictor(predictor, trace, warmup=len(loop_trace(4, 30)) + 30)
        assert stats.miss_rate < 0.05

    def test_requires_confirmation(self):
        """One odd trip must not immediately retrain the prediction."""
        predictor = LoopTerminationPredictor(confidence_trips=2)
        for pc, taken in loop_trace(6, 10):
            predictor.update(pc, taken)
        # One noisy short trip.
        for pc, taken in loop_trace(2, 1):
            predictor.update(pc, taken)
        entry = predictor._entry(0x100)
        assert entry.predicted_trip == 6

    def test_defaults_to_taken(self):
        predictor = LoopTerminationPredictor()
        assert predictor.predict(0x500) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopTerminationPredictor(num_entries=100)
        with pytest.raises(ValueError):
            LoopTerminationPredictor(confidence_trips=0)

    def test_reset(self):
        predictor = LoopTerminationPredictor()
        for pc, taken in loop_trace(3, 5):
            predictor.update(pc, taken)
        predictor.reset()
        assert predictor._entries == {}

    def test_area_positive(self):
        assert LoopTerminationPredictor().area() > 0

    def test_helps_on_compress_workload(self):
        """The paper's compress observation: its dominant hard branch is a
        loop whose trip count local/loop predictors capture."""
        from repro.workloads.programs import branch_trace

        trace = list(branch_trace("compress", "train", 20_000))
        loop = simulate_predictor(LoopTerminationPredictor(), list(trace), warmup=2_000)
        counter = simulate_predictor(BimodalPredictor(128), list(trace), warmup=2_000)
        assert loop.miss_rate < counter.miss_rate
