"""Tests for the customized branch prediction architecture (Figure 3)."""

import pytest

from repro.core.pipeline import design_predictor
from repro.predictors.base import simulate_predictor
from repro.predictors.custom import CustomBranchPredictor, CustomEntry
from repro.predictors.fsm import FSMPredictor
from repro.predictors.xscale import XScalePredictor


def paper_machine(paper_trace, order=2):
    return design_predictor(paper_trace, order=order).machine


class TestDispatch:
    def test_custom_branch_uses_fsm(self, paper_trace):
        machine = paper_machine(paper_trace)
        predictor = CustomBranchPredictor.from_machines({0x100: machine})
        # Drive the FSM into a predict-1 state via other branches.
        predictor.update(0x200, True)
        predictor.update(0x200, True)
        assert predictor.predict(0x100) is True

    def test_non_custom_branch_uses_baseline(self, paper_trace):
        machine = paper_machine(paper_trace)
        predictor = CustomBranchPredictor.from_machines({0x100: machine})
        assert predictor.predict(0x999) is False  # BTB miss -> not taken

    def test_update_all_policy(self, paper_trace):
        """Every custom FSM steps on every branch outcome, matching
        Section 7.3's update rule."""
        machine = paper_machine(paper_trace)
        predictor = CustomBranchPredictor.from_machines(
            {0x100: machine, 0x200: machine}
        )
        predictor.update(0x300, True)  # a branch owned by neither FSM
        for entry in predictor.entries:
            assert entry.predictor.state == machine.step(machine.start, "1")

    def test_baseline_not_trained_on_custom_branches(self, paper_trace):
        machine = paper_machine(paper_trace)
        predictor = CustomBranchPredictor.from_machines({0x100: machine})
        predictor.update(0x100, True)
        assert predictor.baseline.lookup(0x100) is None

    def test_key_invariant_any_state(self, paper_trace):
        """After N global updates the FSM prediction for its branch depends
        only on those N outcomes -- regardless of what came before."""
        machine = paper_machine(paper_trace)
        for prefix in ([], [True], [False, True, False]):
            predictor = CustomBranchPredictor.from_machines({0x100: machine})
            for outcome in prefix:
                predictor.update(0x500, outcome)
            predictor.update(0x500, True)
            predictor.update(0x500, False)
            # history ...10 -> paper cover x1|1x says predict 1
            assert predictor.predict(0x100) is True


class TestConstruction:
    def test_duplicate_entries_rejected(self, paper_trace):
        machine = paper_machine(paper_trace)
        entry = CustomEntry(pc=0x100, predictor=FSMPredictor(machine), area=1.0)
        other = CustomEntry(pc=0x100, predictor=FSMPredictor(machine), area=1.0)
        with pytest.raises(ValueError):
            CustomBranchPredictor([entry, other])

    def test_name_reflects_entry_count(self, paper_trace):
        machine = paper_machine(paper_trace)
        predictor = CustomBranchPredictor.from_machines(
            {0x100: machine, 0x104: machine}
        )
        assert predictor.name == "custom-2"

    def test_custom_baseline_instance(self, paper_trace):
        baseline = XScalePredictor(num_entries=64)
        predictor = CustomBranchPredictor.from_machines(
            {0x100: paper_machine(paper_trace)}, baseline=baseline
        )
        assert predictor.baseline is baseline


class TestArea:
    def test_area_grows_per_entry(self, paper_trace):
        machine = paper_machine(paper_trace)
        one = CustomBranchPredictor.from_machines({0x100: machine}).area()
        two = CustomBranchPredictor.from_machines(
            {0x100: machine, 0x104: machine}
        ).area()
        assert two > one > XScalePredictor().area()

    def test_reset(self, paper_trace):
        machine = paper_machine(paper_trace)
        predictor = CustomBranchPredictor.from_machines({0x100: machine})
        predictor.update(0x200, True)
        predictor.reset()
        assert predictor.entries[0].predictor.state == machine.start


class TestEndToEnd:
    def test_custom_fixes_correlated_branch(self, paper_trace):
        """A branch whose outcome equals the previous branch's outcome is
        hopeless for the XScale baseline but trivial for a custom FSM."""
        import random

        rng = random.Random(11)
        trace = []
        for _ in range(400):
            a = rng.random() < 0.5
            trace.append((0x200, a))
            trace.append((0x100, a))  # copies the previous outcome
        # Design the FSM for pc 0x100 from an order-1 Markov model of the
        # global stream: predict last outcome.
        outcome_bits = [int(t) for _pc, t in trace]
        machine = design_predictor(outcome_bits, order=1).machine
        custom = CustomBranchPredictor.from_machines({0x100: machine})
        baseline = XScalePredictor()
        custom_stats = simulate_predictor(custom, trace, warmup=100)
        baseline_stats = simulate_predictor(baseline, trace, warmup=100)
        assert custom_stats.miss_rate < baseline_stats.miss_rate
