"""Tests for the table-based branch predictors: bimodal, XScale, gshare,
LGC, PPM -- plus the shared simulation loop."""

import math

import pytest

from repro.predictors.base import PredictionStats, format_rate, simulate_predictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.local_global import LocalGlobalChooser
from repro.predictors.ppm import PPMPredictor
from repro.predictors.xscale import XScalePredictor


def repeated(pattern, times):
    """[(pc, taken)] repeating a per-branch outcome pattern."""
    trace = []
    for _ in range(times):
        for pc, taken in pattern:
            trace.append((pc, taken))
    return trace


class TestPredictionStats:
    def test_counts(self):
        stats = PredictionStats()
        stats.record(True)
        stats.record(False)
        stats.record(True)
        assert stats.lookups == 3
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.miss_rate == pytest.approx(1 / 3)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_rates_are_nan_sentinel(self):
        # lookups == 0 must NOT read as a perfect predictor (miss_rate 0.0
        # with hit_rate also 0.0 -- rates that don't even sum to 1).  The
        # degenerate case is an explicit NaN sentinel.
        stats = PredictionStats()
        assert math.isnan(stats.miss_rate)
        assert math.isnan(stats.hit_rate)
        assert format_rate(stats.miss_rate) == "n/a"

    def test_fully_warmed_up_run_is_degenerate(self):
        # warmup >= len(trace) counts nothing; the resulting stats must
        # carry the degenerate sentinel, not a fake 0.0 miss rate.
        predictor = BimodalPredictor(64)
        trace = repeated([(0x100, True)], 10)
        stats = simulate_predictor(predictor, trace, warmup=len(trace))
        assert stats.lookups == 0
        assert math.isnan(stats.miss_rate)
        assert math.isnan(stats.hit_rate)

    def test_format_rate_renders_numbers(self):
        assert format_rate(0.25) == "0.2500"
        assert format_rate(1 / 3, precision=2) == "0.33"

    def test_merged(self):
        a = PredictionStats(lookups=10, hits=8)
        b = PredictionStats(lookups=10, hits=4)
        merged = a.merged(b)
        assert merged.lookups == 20 and merged.hits == 12

    def test_str(self):
        assert "miss_rate" in str(PredictionStats(lookups=4, hits=2))


class TestBimodal:
    def test_learns_biased_branch(self):
        predictor = BimodalPredictor(64)
        stats = simulate_predictor(
            predictor, repeated([(0x100, True)], 100), warmup=10
        )
        assert stats.miss_rate == 0.0

    def test_alternating_branch_is_hard(self):
        predictor = BimodalPredictor(64)
        trace = [(0x100, i % 2 == 0) for i in range(200)]
        stats = simulate_predictor(predictor, trace, warmup=20)
        assert stats.miss_rate >= 0.4

    def test_aliasing_in_tiny_table(self):
        predictor = BimodalPredictor(1)
        trace = repeated([(0x100, True), (0x200, False)], 100)
        stats = simulate_predictor(predictor, trace, warmup=10)
        assert stats.miss_rate > 0.3  # both branches share one counter

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(12)

    def test_area_scales_with_entries(self):
        assert BimodalPredictor(256).area() == 2 * BimodalPredictor(128).area()

    def test_reset(self):
        predictor = BimodalPredictor(16)
        for _ in range(4):
            predictor.update(0x40, True)
        predictor.reset()
        assert not predictor.predict(0x40)


class TestXScale:
    def test_not_taken_on_btb_miss(self):
        predictor = XScalePredictor()
        assert predictor.predict(0x1234) is False

    def test_allocates_on_taken(self):
        predictor = XScalePredictor()
        predictor.update(0x100, True)
        assert predictor.predict(0x100) is True

    def test_no_allocation_on_not_taken(self):
        predictor = XScalePredictor()
        predictor.update(0x100, False)
        assert predictor.lookup(0x100) is None

    def test_tag_conflict_replaces(self):
        predictor = XScalePredictor(num_entries=128)
        pc_a = 0x1000
        pc_b = pc_a + 128 * 4  # same index, different tag
        predictor.update(pc_a, True)
        predictor.update(pc_b, True)
        assert predictor.lookup(pc_a) is None
        assert predictor.predict(pc_b) is True

    def test_learns_biased_branches(self):
        predictor = XScalePredictor()
        trace = repeated([(0x100, True), (0x104, False)], 80)
        stats = simulate_predictor(predictor, trace, warmup=10)
        assert stats.miss_rate == 0.0

    def test_area_includes_tags_and_targets(self):
        assert XScalePredictor(128).area() > BimodalPredictor(128).area()

    def test_reset(self):
        predictor = XScalePredictor()
        predictor.update(0x100, True)
        predictor.reset()
        assert predictor.lookup(0x100) is None


class TestGShare:
    def test_learns_biased_branch(self):
        predictor = GSharePredictor(8)
        stats = simulate_predictor(
            predictor, repeated([(0x100, True)], 100), warmup=20
        )
        assert stats.miss_rate == 0.0

    def test_learns_global_correlation(self):
        # Branch B equals branch A's outcome: with history, gshare nails B.
        predictor = GSharePredictor(10)
        trace = []
        import random

        rng = random.Random(3)
        for _ in range(600):
            a = rng.random() < 0.5
            trace.append((0x100, a))
            trace.append((0x104, a))
        stats = simulate_predictor(predictor, trace, warmup=300)
        assert stats.miss_rate < 0.3  # B side is ~free, A side ~50%

    def test_history_register_shifts(self):
        predictor = GSharePredictor(4)
        predictor.update(0, True)
        predictor.update(0, False)
        assert predictor.history == 0b10

    def test_history_bounded_by_index_bits(self):
        predictor = GSharePredictor(3)
        for _ in range(10):
            predictor.update(0, True)
        assert predictor.history < 8

    def test_index_bits_validated(self):
        with pytest.raises(ValueError):
            GSharePredictor(0)

    def test_area(self):
        assert GSharePredictor(10).area() == 4 * GSharePredictor(8).area()


class TestLGC:
    def test_learns_local_pattern(self):
        # Period-3 pattern (T,T,N) defeats 2-bit counters but local
        # history catches it.
        predictor = LocalGlobalChooser(8)
        pattern = [True, True, False]
        trace = [(0x100, pattern[i % 3]) for i in range(900)]
        stats = simulate_predictor(predictor, trace, warmup=600)
        assert stats.miss_rate < 0.05

    def test_learns_global_correlation(self):
        import random

        predictor = LocalGlobalChooser(8)
        rng = random.Random(5)
        trace = []
        for _ in range(800):
            a = rng.random() < 0.5
            trace.append((0x100, a))
            trace.append((0x104, a))
        stats = simulate_predictor(predictor, trace, warmup=400)
        assert stats.miss_rate < 0.35

    def test_scale_bits_validated(self):
        with pytest.raises(ValueError):
            LocalGlobalChooser(1)

    def test_area_grows_with_scale(self):
        assert LocalGlobalChooser(10).area() > LocalGlobalChooser(8).area()

    def test_reset(self):
        predictor = LocalGlobalChooser(6)
        for _ in range(20):
            predictor.update(0x100, True)
        predictor.reset()
        assert predictor._global_history == 0


class TestPPM:
    def test_learns_biased_stream(self):
        predictor = PPMPredictor(4)
        stats = simulate_predictor(
            predictor, repeated([(0x100, True)], 60), warmup=10
        )
        assert stats.miss_rate == 0.0

    def test_learns_alternation(self):
        predictor = PPMPredictor(4)
        trace = [(0x100, i % 2 == 0) for i in range(300)]
        stats = simulate_predictor(predictor, trace, warmup=100)
        assert stats.miss_rate < 0.05

    def test_longer_context_beats_shorter(self):
        # Period-4 pattern needs more than 1 bit of context.
        pattern = [True, True, True, False]
        trace = [(0x100, pattern[i % 4]) for i in range(800)]
        shallow = simulate_predictor(PPMPredictor(1), list(trace), warmup=400)
        deep = simulate_predictor(PPMPredictor(6), list(trace), warmup=400)
        assert deep.miss_rate < shallow.miss_rate

    def test_max_order_validated(self):
        with pytest.raises(ValueError):
            PPMPredictor(0)

    def test_reset(self):
        predictor = PPMPredictor(3)
        predictor.update(0x100, True)
        predictor.reset()
        assert predictor._history == 0


class TestSimulateLoop:
    def test_warmup_excluded(self):
        predictor = BimodalPredictor(16)
        trace = repeated([(0x100, True)], 50)
        with_warmup = simulate_predictor(predictor, trace, warmup=10)
        assert with_warmup.lookups == 40

    def test_stats_conserve(self):
        predictor = GSharePredictor(6)
        trace = repeated([(0x100, True), (0x104, False)], 30)
        stats = simulate_predictor(predictor, trace)
        assert stats.hits + stats.misses == stats.lookups == len(trace)
