"""Warmup parity: serial loop vs ``_batch_simulate`` fast paths.

``simulate_predictor`` hands ``warmup`` through to each predictor's
``_batch_simulate``; nothing else pins that path against the serial
per-branch loop.  These tests assert bit-identical ``PredictionStats``
*and* bit-identical post-simulation predictor state for every predictor
that implements ``_batch_simulate``, across warmups including
``warmup >= len(trace)``.
"""

import contextlib
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.batched import BATCH_THRESHOLD, numpy_available
from repro.predictors.gshare import GSharePredictor
from repro.predictors.local_global import LocalGlobalChooser
from repro.predictors.base import simulate_predictor
from repro.predictors.xscale import XScalePredictor
from repro.workloads.trace import BranchTrace

N = BATCH_THRESHOLD  # smallest trace the batched path accepts

PREDICTOR_FACTORIES = {
    "gshare": lambda: GSharePredictor(10),
    "lgc": lambda: LocalGlobalChooser(8),
    "xscale": lambda: XScalePredictor(num_entries=32),
}


def _make_trace(seed: int, length: int = N) -> BranchTrace:
    rng = random.Random(seed)
    pool = [rng.randrange(1 << 20) for _ in range(24)]
    pcs, outcomes = [], []
    bias = {pc: rng.random() for pc in pool}
    for _ in range(length):
        pc = rng.choice(pool)
        pcs.append(pc)
        outcomes.append(1 if rng.random() < bias[pc] else 0)
    return BranchTrace(pcs=pcs, outcomes=outcomes)


def _snapshot(obj, _depth=0):
    """Recursively freeze a predictor's mutable state for comparison."""
    assert _depth < 8, "unexpectedly deep predictor state"
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_snapshot(item, _depth + 1) for item in obj]
    if isinstance(obj, dict):
        return {k: _snapshot(v, _depth + 1) for k, v in sorted(obj.items())}
    if hasattr(obj, "tolist"):  # numpy arrays and scalars
        return _snapshot(obj.tolist(), _depth + 1)
    if hasattr(obj, "__dict__"):
        return (type(obj).__name__, _snapshot(vars(obj), _depth + 1))
    return repr(obj)


@contextlib.contextmanager
def _env(key, value):
    old = os.environ.get(key)
    try:
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
        yield
    finally:
        if old is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = old


def _run_both(name, trace, warmup):
    """(serial stats, serial state), (batched stats, batched state)."""
    make = PREDICTOR_FACTORIES[name]
    with _env("REPRO_BATCH", "0"):
        serial = make()
        serial_stats = simulate_predictor(serial, trace, warmup=warmup)
    with _env("REPRO_BATCH", None):
        batched = make()
        batched_stats = simulate_predictor(batched, trace, warmup=warmup)
    return (serial_stats, _snapshot(serial)), (batched_stats, _snapshot(batched))


needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="batched path requires numpy"
)


@needs_numpy
@pytest.mark.parametrize("name", sorted(PREDICTOR_FACTORIES))
@pytest.mark.parametrize("warmup", [1, 7, N // 2, N - 1, N, N + 13])
def test_warmup_parity_stats_and_state(name, warmup):
    trace = _make_trace(seed=0xC0FFEE ^ warmup)
    (s_stats, s_state), (b_stats, b_state) = _run_both(name, trace, warmup)
    assert (s_stats.lookups, s_stats.hits) == (b_stats.lookups, b_stats.hits)
    assert s_state == b_state
    if warmup >= len(trace.pcs):
        assert b_stats.lookups == 0  # fully warmed up: nothing counted


@needs_numpy
@pytest.mark.parametrize("name", sorted(PREDICTOR_FACTORIES))
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16), warmup=st.integers(0, N + 64))
def test_warmup_parity_property(name, seed, warmup):
    trace = _make_trace(seed=seed)
    (s_stats, s_state), (b_stats, b_state) = _run_both(name, trace, warmup)
    assert (s_stats.lookups, s_stats.hits) == (b_stats.lookups, b_stats.hits)
    assert s_state == b_state
