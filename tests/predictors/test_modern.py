"""TAGE and hashed-perceptron baselines (the fig5 modern-regime series).

The bar: learn easy patterns to zero steady-state misses, behave like a
fresh predictor after ``reset()``, report a positive area, and reject
nonsense construction parameters.
"""

from __future__ import annotations

import random

import pytest

from repro.predictors.base import simulate_predictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.tage import TagePredictor, geometric_history_lengths
from repro.workloads.trace import BranchTrace


def _trace(pcs_outcomes):
    pcs = [pc for pc, _ in pcs_outcomes]
    outcomes = [out for _, out in pcs_outcomes]
    return BranchTrace(pcs=pcs, outcomes=outcomes)


def _biased_trace(seed=3, length=6000, num_pcs=12):
    rng = random.Random(seed)
    pool = [(0x4000 + 8 * i, rng.random() < 0.5) for i in range(num_pcs)]
    events = []
    for _ in range(length):
        pc, mostly_taken = pool[rng.randrange(num_pcs)]
        taken = rng.random() < (0.9 if mostly_taken else 0.1)
        events.append((pc, int(taken)))
    return _trace(events)


def _periodic_trace(length=4500, num_pcs=5):
    events = []
    pattern = (1, 1, 0)
    for i in range(length):
        pc = 0x8000 + 4 * (i % num_pcs)
        events.append((pc, pattern[(i // num_pcs) % len(pattern)]))
    return _trace(events)


PREDICTORS = [
    ("tage", lambda: TagePredictor(index_bits=8)),
    ("perceptron", lambda: PerceptronPredictor(num_perceptrons=128)),
]


@pytest.mark.parametrize("name,factory", PREDICTORS)
class TestModernPredictors:
    def test_learns_biased_branches(self, name, factory):
        predictor = factory()
        stats = simulate_predictor(predictor, _biased_trace(), warmup=1000)
        # A static 90/10 bias floors at ~0.10; the learned tables must at
        # least reach the bias floor with margin for table interference.
        assert stats.miss_rate < 0.2

    def test_learns_periodic_pattern(self, name, factory):
        predictor = factory()
        stats = simulate_predictor(predictor, _periodic_trace(), warmup=1500)
        assert stats.miss_rate < 0.05

    def test_reset_restores_fresh_behaviour(self, name, factory):
        trace = _biased_trace(seed=9, length=1500)
        fresh = simulate_predictor(factory(), trace)
        predictor = factory()
        simulate_predictor(predictor, _periodic_trace(length=900))
        predictor.reset()
        again = simulate_predictor(predictor, trace)
        assert (again.hits, again.lookups) == (fresh.hits, fresh.lookups)

    def test_area_is_positive_and_stable(self, name, factory):
        predictor = factory()
        before = predictor.area()
        assert before > 0
        simulate_predictor(predictor, _biased_trace(length=500))
        assert predictor.area() == before


class TestTageSpecifics:
    def test_geometric_history_lengths(self):
        lengths = geometric_history_lengths(4, 4, 64)
        assert lengths[0] == 4 and lengths[-1] == 64
        assert list(lengths) == sorted(set(lengths))

    def test_bigger_tables_cost_more_area(self):
        assert TagePredictor(index_bits=12).area() > TagePredictor(
            index_bits=8
        ).area()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TagePredictor(index_bits=0)
        with pytest.raises(ValueError):
            TagePredictor(num_tables=0)
        with pytest.raises(ValueError):
            TagePredictor(min_history=32, max_history=16)

    def test_name_encodes_geometry(self):
        assert TagePredictor(index_bits=9, num_tables=3).name == "tage-9x3"


class TestPerceptronSpecifics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(num_perceptrons=100)  # not a power of two
        with pytest.raises(ValueError):
            PerceptronPredictor(history_length=0)
        with pytest.raises(ValueError):
            PerceptronPredictor(weight_bits=1)

    def test_weights_saturate(self):
        predictor = PerceptronPredictor(
            num_perceptrons=2, history_length=2, weight_bits=4
        )
        for _ in range(500):
            predictor.predict(0)
            predictor.update(0, True)
        flat = [w for row in predictor._weights for w in row]
        assert max(flat) <= 7 and min(flat) >= -8

    def test_longer_history_raises_threshold(self):
        short = PerceptronPredictor(history_length=8)
        long = PerceptronPredictor(history_length=32)
        assert long.threshold > short.threshold
