"""Tests for resetting counters and the runtime FSM predictor wrapper."""

import pytest

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.predictors.fsm import FSMPredictor
from repro.predictors.resetting import ResettingCounter


class TestResettingCounter:
    def test_counts_consecutive_ups(self):
        counter = ResettingCounter(max_value=8, threshold=3)
        for _ in range(3):
            assert not counter.predict()
            counter.update(True)
        assert counter.predict()

    def test_resets_on_down(self):
        counter = ResettingCounter(max_value=8, threshold=2, initial=5)
        counter.update(False)
        assert counter.value == 0
        assert not counter.predict()

    def test_saturates(self):
        counter = ResettingCounter(max_value=2, threshold=1)
        for _ in range(5):
            counter.update(True)
        assert counter.value == 2

    def test_reset_method(self):
        counter = ResettingCounter(max_value=4, threshold=2, initial=1)
        counter.update(True)
        counter.reset()
        assert counter.value == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ResettingCounter(max_value=0)
        with pytest.raises(ValueError):
            ResettingCounter(max_value=3, initial=9)
        with pytest.raises(ValueError):
            ResettingCounter(max_value=3, threshold=7)

    def test_num_states_and_bits(self):
        counter = ResettingCounter(max_value=7, threshold=4)
        assert counter.num_states == 8
        assert counter.storage_bits == 3


class TestFSMPredictor:
    def test_wraps_designed_machine(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        predictor = FSMPredictor(machine)
        # Walk the paper's patterns: after seeing 1,1 the prediction is 1.
        predictor.update(True)
        predictor.update(True)
        assert predictor.predict() is True
        predictor.update(False)
        predictor.update(False)
        assert predictor.predict() is False

    def test_reset_returns_to_start(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        predictor = FSMPredictor(machine)
        predictor.update(True)
        predictor.reset()
        assert predictor.state == machine.start

    def test_num_states_and_storage(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        predictor = FSMPredictor(machine)
        assert predictor.num_states == 3
        assert predictor.storage_bits == 2

    def test_rejects_non_binary_machine(self):
        machine = MooreMachine(
            alphabet=("a",), start=0, outputs=(0,), transitions=((0,),)
        )
        with pytest.raises(ValueError):
            FSMPredictor(machine)

    def test_matches_machine_trace_outputs(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        predictor = FSMPredictor(machine)
        bits = "011010011"
        expected = machine.trace_outputs(bits)
        got = []
        for bit in bits:
            predictor.update(bit == "1")
            got.append(1 if predictor.predict() else 0)
        assert got == expected
