"""reset() must restore power-on state for every branch predictor.

The parallel experiment harness reuses predictor objects across sweeps,
so a stale bit of state would silently skew a whole figure.  The check
here is behavioural, not structural: after ``reset()`` a predictor must
produce exactly the statistics a freshly-constructed instance produces
on the same trace.
"""

import random

import pytest

from repro.automata.moore import MooreMachine
from repro.predictors.base import BranchPredictor, simulate_predictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.custom import CustomBranchPredictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.local_global import LocalGlobalChooser
from repro.predictors.loop import LoopTerminationPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.ppm import PPMPredictor
from repro.predictors.tage import TagePredictor
from repro.predictors.xscale import XScalePredictor
from repro.workloads.trace import BranchTrace


def _counter_machine() -> MooreMachine:
    """A plain 2-bit saturating counter as a Moore machine."""
    return MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=(0, 0, 1, 1),
        transitions=((0, 1), (0, 2), (1, 3), (2, 3)),
    )


FACTORIES = {
    "bimodal": lambda: BimodalPredictor(64),
    "custom": lambda: CustomBranchPredictor.from_machines(
        {0x40: _counter_machine(), 0x8C: _counter_machine()}
    ),
    "gshare": lambda: GSharePredictor(8),
    "lgc": lambda: LocalGlobalChooser(6),
    "loop": lambda: LoopTerminationPredictor(num_entries=32),
    "perceptron": lambda: PerceptronPredictor(num_perceptrons=64),
    "ppm": lambda: PPMPredictor(4),
    "tage": lambda: TagePredictor(index_bits=6),
    "xscale": lambda: XScalePredictor(num_entries=32),
}


def _synthetic_trace(length: int = 3000, seed: int = 1234) -> BranchTrace:
    rng = random.Random(seed)
    pcs = []
    outcomes = []
    for _ in range(length):
        pc = rng.choice((0x40, 0x8C, 0x104, 0x17C, 0x1F0, 0x244))
        # Mix biased and loop-like behaviour so table indices collide.
        outcome = 1 if rng.random() < (0.85 if pc < 0x100 else 0.35) else 0
        pcs.append(pc)
        outcomes.append(outcome)
    return BranchTrace(pcs=pcs, outcomes=outcomes)


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_reset_then_resimulate_matches_fresh_instance(name):
    trace = _synthetic_trace()
    factory = FACTORIES[name]

    fresh = factory()
    expected = simulate_predictor(fresh, trace)

    recycled = factory()
    simulate_predictor(recycled, trace)  # dirty every table
    recycled.reset()
    observed = simulate_predictor(recycled, trace)

    assert observed == expected


def test_every_concrete_predictor_has_a_reset_case():
    """Adding a predictor without wiring it in here must fail loudly."""
    concrete = {
        cls
        for cls in BranchPredictor.__subclasses__()
        if not getattr(cls, "__abstractmethods__", None)
        and cls.__module__.startswith("repro.")  # ignore test doubles
    }
    covered = {type(factory()) for factory in FACTORIES.values()}
    assert concrete <= covered, (
        f"predictors missing from the reset test: "
        f"{sorted(c.__name__ for c in concrete - covered)}"
    )
