"""The exact optimal k-state predictor oracle.

Three layers of evidence:

* structural -- the canonical enumeration yields exactly one
  representative per isomorphism class (counts match the known sequence;
  Hopcroft canonicalization separates every pair);
* analytic -- golden vectors in ``tests/golden/golden_optimal.json`` pin
  ground-truth optima for constant, alternating, KMP-style periodic, and
  pinned-seed random traces;
* adversarial -- property tests that no machine the design pipeline (or
  any baseline predictor) produces ever beats the exhaustive bound.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import BINARY_ALPHABET, MooreMachine
from repro.conformance.oracles import oracle_prediction_counts
from repro.core.pipeline import design_predictor
from repro.predictors.optimal import (
    MAX_KMAX,
    count_structures,
    enumerate_structures,
    machine_mispredicts,
    opt_kmax,
    optimal_mispredicts,
    optimal_predictors,
)

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "golden" / "golden_optimal.json"


@contextmanager
def _env(**overrides):
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _optima(bits, kmax=4):
    with _env(REPRO_CACHE="0"):
        return optimal_predictors(bits, kmax=kmax)


class TestEnumeration:
    def test_counts_match_connected_automata_sequence(self):
        # Initially-connected binary automata up to isomorphism
        # (OEIS A006689 shifted: structures, outputs not counted).
        assert [count_structures(k) for k in (1, 2, 3, 4)] == [1, 12, 216, 5248]

    def test_structures_are_distinct_and_reach_every_state(self):
        for k in (1, 2, 3):
            seen = set()
            for t in enumerate_structures(k):
                assert t not in seen
                seen.add(t)
                reached = {0}
                frontier = [0]
                while frontier:
                    s = frontier.pop()
                    for b in (0, 1):
                        nxt = t[2 * s + b]
                        if nxt not in reached:
                            reached.add(nxt)
                            frontier.append(nxt)
                assert reached == set(range(k))

    def test_no_two_structures_are_isomorphic(self):
        # Hopcroft canonicalization with distinct-output padding would be
        # overkill; isomorphism of initially-connected structures is
        # exactly "same canonical first-discovery relabeling", and the
        # enumerator only emits canonical labelings: a structure equals
        # its own relabeling under BFS discovery order.
        for k in (2, 3):
            for t in enumerate_structures(k):
                relabel = {0: 0}
                order = [0]
                for s in order:
                    for b in (0, 1):
                        nxt = t[2 * s + b]
                        if nxt not in relabel:
                            relabel[nxt] = len(relabel)
                            order.append(nxt)
                canon = [0] * (2 * k)
                for s in range(k):
                    for b in (0, 1):
                        canon[2 * relabel[s] + b] = relabel[t[2 * s + b]]
                assert tuple(canon) == t

    def test_kmax_knob_is_clamped(self):
        with _env(REPRO_OPT_KMAX="99"):
            assert opt_kmax() == MAX_KMAX
        with _env(REPRO_OPT_KMAX="-3"):
            assert opt_kmax() == 1
        with _env(REPRO_OPT_KMAX="junk"):
            assert opt_kmax() == 4
        with _env(REPRO_OPT_KMAX=None):
            assert opt_kmax() == 4


class TestGoldenVectors:
    def _vectors(self):
        document = json.loads(GOLDEN_PATH.read_text())
        assert document["schema"] == "repro.golden-optimal/1"
        return document["vectors"]

    def test_golden_optima_reproduce(self):
        for vector in self._vectors():
            bits = [int(c) for c in vector["bits"]]
            results = _optima(bits, kmax=4)
            got = {str(k): r.mispredicts for k, r in results.items()}
            assert got == vector["optimal_mispredicts"], vector["name"]

    def test_witnesses_attain_their_bounds(self):
        for vector in self._vectors():
            bits = [int(c) for c in vector["bits"]]
            for k, result in _optima(bits, kmax=4).items():
                assert machine_mispredicts(result.witness, bits) == (
                    result.mispredicts
                ), (vector["name"], k)
                assert result.witness.num_states <= k

    def test_bounds_are_monotone_in_k(self):
        for vector in self._vectors():
            bits = [int(c) for c in vector["bits"]]
            results = _optima(bits, kmax=4)
            rates = [results[k].mispredicts for k in sorted(results)]
            assert rates == sorted(rates, reverse=True) or all(
                a >= b for a, b in zip(rates, rates[1:])
            )


class TestOracleSemantics:
    def test_empty_trace(self):
        results = _optima([], kmax=2)
        assert results[1].mispredicts == 0
        assert results[1].lookups == 0
        assert results[1].miss_rate != results[1].miss_rate  # NaN sentinel

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            optimal_predictors([0, 2, 1])
        with pytest.raises(ValueError):
            optimal_predictors([0, 1], kmax=MAX_KMAX + 1)

    def test_convenience_matches_full_search(self):
        bits = [int(c) for c in "0010110100101101"]
        with _env(REPRO_CACHE="0"):
            assert optimal_mispredicts(bits, 3) == _optima(bits, 3)[3].mispredicts

    def test_numpy_and_python_kernels_agree(self):
        numpy = pytest.importorskip("numpy")
        del numpy
        from repro.predictors.optimal import (
            _evaluate_numpy,
            _evaluate_python,
        )

        import random

        rng = random.Random(31)
        bits = [rng.randrange(2) for _ in range(257)]
        for k in (2, 3):
            structures = list(enumerate_structures(k))
            assert _evaluate_python(bits, structures, k) == _evaluate_numpy(
                bits, structures, k
            )

    def test_witness_is_hopcroft_canonical(self):
        bits = [int(c) for c in "010101010101"]
        witness = _optima(bits, kmax=2)[2].witness
        assert witness == hopcroft_minimize(witness)


def _trace_strategy():
    return st.lists(st.integers(0, 1), min_size=8, max_size=96)


class TestNothingBeatsTheBound:
    @settings(max_examples=20, deadline=None)
    @given(bits=_trace_strategy(), order=st.integers(1, 3))
    def test_designed_machines_respect_the_bound(self, bits, order):
        result = design_predictor(bits, order=order)
        machine = result.machine
        if machine.num_states > 4:
            return
        with _env(REPRO_CACHE="0"):
            bound = optimal_mispredicts(bits, machine.num_states)
        hits, lookups = oracle_prediction_counts(machine, bits)
        assert lookups - hits >= bound

    @settings(max_examples=15, deadline=None)
    @given(
        bits=_trace_strategy(),
        outputs=st.lists(st.integers(0, 1), min_size=2, max_size=2),
        transitions=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 1)),
            min_size=2,
            max_size=2,
        ),
    )
    def test_arbitrary_two_state_machines_respect_the_bound(
        self, bits, outputs, transitions
    ):
        machine = MooreMachine(
            alphabet=BINARY_ALPHABET,
            start=0,
            outputs=tuple(outputs),
            transitions=tuple(transitions),
        )
        with _env(REPRO_CACHE="0"):
            bound = optimal_mispredicts(bits, 2)
        assert machine_mispredicts(machine, bits) >= bound
