"""Tests for the GA predictor-search extension."""

import random

import pytest

from repro.search.ga import GAConfig, evolve, fitness, search_predictor
from repro.search.genome import MachineGenome, random_genome
from repro.workloads.trace import BranchTrace


def copy_trace(n=300):
    """Branch B copies branch A (random); perfect score possible with a
    2-state machine."""
    trace = BranchTrace()
    rng = random.Random(1)
    for _ in range(n):
        a = rng.random() < 0.5
        trace.append(0x100, a)
        trace.append(0x104, a)
    return trace


class TestGenome:
    def test_random_genome_well_formed(self, rng):
        genome = random_genome(6, rng)
        assert genome.num_states == 6
        machine = genome.to_machine()
        assert machine.num_states == 6

    def test_zero_states_rejected(self, rng):
        with pytest.raises(ValueError):
            random_genome(0, rng)

    def test_copy_is_independent(self, rng):
        genome = random_genome(4, rng)
        clone = genome.copy()
        clone.outputs[0] ^= 1
        assert genome.outputs[0] != clone.outputs[0]

    def test_mutation_preserves_wellformedness(self, rng):
        genome = random_genome(5, rng)
        for _ in range(50):
            genome.mutate(rng, rate=0.5)
            genome.to_machine()  # raises if malformed

    def test_crossover_preserves_wellformedness(self, rng):
        a = random_genome(5, rng)
        b = random_genome(7, rng)
        for _ in range(20):
            child = a.crossover(b, rng)
            assert child.num_states == a.num_states
            child.to_machine()

    def test_single_state_crossover(self, rng):
        a = random_genome(1, rng)
        b = random_genome(1, rng)
        child = a.crossover(b, rng)
        assert child.num_states == 1


class TestFitness:
    def test_perfect_copier(self):
        # 2-state machine: state = last outcome, output = state label.
        genome = MachineGenome(outputs=[0, 1], transitions=[(0, 1), (0, 1)])
        trace = copy_trace()
        assert fitness(genome, trace.pcs, trace.outcomes, 0x104) == 1.0

    def test_inverted_copier_scores_zero(self):
        genome = MachineGenome(outputs=[1, 0], transitions=[(0, 1), (0, 1)])
        trace = copy_trace()
        assert fitness(genome, trace.pcs, trace.outcomes, 0x104) == 0.0

    def test_absent_branch_scores_zero(self):
        genome = MachineGenome(outputs=[0], transitions=[(0, 0)])
        trace = copy_trace()
        assert fitness(genome, trace.pcs, trace.outcomes, 0xFFFF) == 0.0


class TestEvolve:
    def test_finds_copier(self):
        trace = copy_trace()
        config = GAConfig(num_states=2, generations=30, population=30, seed=3)
        _machine, best = search_predictor(trace, 0x104, config)
        assert best > 0.95

    def test_deterministic_given_seed(self):
        trace = copy_trace(100)
        config = GAConfig(num_states=3, generations=5, seed=42)
        a = evolve(trace, 0x104, config)
        b = evolve(trace, 0x104, config)
        assert a[1] == b[1]
        assert a[0].outputs == b[0].outputs

    def test_fitness_sample_caps_work(self):
        trace = copy_trace(500)
        config = GAConfig(num_states=2, generations=2, fitness_sample=50, seed=0)
        _machine, best = evolve(trace, 0x104, config)
        assert 0.0 <= best <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population=1)
        with pytest.raises(ValueError):
            GAConfig(population=4, elite=4)


class TestCheckpointResume:
    """The durability contract for the GA: a search killed after
    generation k and resumed with the same run id must be bit-identical
    to an uninterrupted run, because each checkpoint captures the
    population *and* the seeded PRNG's exact state."""

    @pytest.fixture(autouse=True)
    def run_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
        monkeypatch.delenv("REPRO_DURABLE", raising=False)
        from repro.obs.metrics import reset_metrics

        reset_metrics()

    def test_resume_is_bit_identical_to_uninterrupted(self):
        from repro.obs.metrics import metrics

        trace = copy_trace(100)
        clean = evolve(
            trace, 0x104, GAConfig(num_states=3, generations=8, seed=42)
        )
        # "Killed after generation 3": run only 3 generations, then
        # re-invoke with the full budget and the same run id.
        evolve(
            trace, 0x104,
            GAConfig(num_states=3, generations=3, seed=42),
            run_id="ga-resume",
        )
        resumed = evolve(
            trace, 0x104,
            GAConfig(num_states=3, generations=8, seed=42),
            run_id="ga-resume",
        )
        assert metrics().get("ga.resumed") == 1
        assert resumed[1] == clean[1]
        assert resumed[0].outputs == clean[0].outputs
        assert resumed[0].transitions == clean[0].transitions

    def test_generations_are_journaled(self):
        from repro.reliability.durability import read_journal

        trace = copy_trace(100)
        evolve(
            trace, 0x104,
            GAConfig(num_states=2, generations=3, seed=7),
            run_id="ga-journal",
        )
        events = [r for r in read_journal("ga-journal")
                  if r["event"] == "ga_generation"]
        assert [r["generation"] for r in events] == [1, 2, 3]

    def test_finished_checkpoint_replays_without_evolving(self, monkeypatch):
        # A checkpoint at generation == budget means nothing left to do:
        # the resumed call returns the checkpointed best immediately, and
        # a poisoned PRNG proves no generation re-ran.
        trace = copy_trace(100)
        config = GAConfig(num_states=3, generations=4, seed=11)
        first = evolve(trace, 0x104, config, run_id="ga-done")

        import repro.search.ga as ga_mod

        def no_random(*a, **k):
            raise AssertionError("resumed GA re-evolved a finished search")

        monkeypatch.setattr(ga_mod.random.Random, "randrange", no_random)
        again = evolve(trace, 0x104, config, run_id="ga-done")
        assert again[1] == first[1]
        assert again[0].outputs == first[0].outputs
