"""Tests for the confidence-estimation harness."""

import pytest

from repro.automata.moore import MooreMachine
from repro.core.pipeline import design_predictor
from repro.predictors.sud import FULL_DECREMENT
from repro.valuepred.confidence import (
    ConfidenceStats,
    correctness_trace,
    evaluate_counter_confidence,
    evaluate_fsm_confidence,
    resetting_configurations,
    sud_configurations,
)
from repro.workloads.trace import LoadTrace


def make_load_trace(pairs):
    trace = LoadTrace()
    for pc, value in pairs:
        trace.append(pc, value)
    return trace


class TestConfidenceStats:
    def test_accuracy_and_coverage(self):
        stats = ConfidenceStats()
        stats.record(True, True)    # confident, correct
        stats.record(True, False)   # confident, wrong
        stats.record(False, True)   # not confident, correct
        stats.record(False, False)
        assert stats.accuracy == pytest.approx(0.5)
        assert stats.coverage == pytest.approx(0.5)

    def test_vacuous_accuracy(self):
        stats = ConfidenceStats()
        stats.record(False, True)
        assert stats.accuracy == 1.0
        assert stats.coverage == 0.0

    def test_no_correct_predictions(self):
        stats = ConfidenceStats()
        stats.record(True, False)
        assert stats.coverage == 0.0

    def test_str(self):
        assert "accuracy" in str(ConfidenceStats(label="x"))


class TestCorrectnessTrace:
    def test_stride_stream_mostly_correct(self):
        pairs = [(0x4000, 4 * i) for i in range(100)]
        indices, bits = correctness_trace(make_load_trace(pairs))
        assert len(bits) == 100
        assert sum(bits) >= 96  # only warm-up misses
        assert len(set(indices)) == 1

    def test_chaotic_stream_incorrect(self):
        import random

        rng = random.Random(9)
        pairs = [(0x4000, rng.randrange(1 << 30)) for _ in range(50)]
        _indices, bits = correctness_trace(make_load_trace(pairs))
        assert sum(bits) <= 2

    def test_cold_miss_counts_incorrect(self):
        _indices, bits = correctness_trace(make_load_trace([(0x4000, 1)]))
        assert bits == [0]

    def test_indices_follow_entries(self):
        pairs = [(0x4000, 0), (0x4004, 0)]
        indices, _bits = correctness_trace(make_load_trace(pairs))
        assert indices[0] != indices[1]


class TestCounterConfidence:
    def test_per_entry_units_are_independent(self):
        # Entry A always correct, entry B always wrong: a shared counter
        # would blur them; per-entry counters must separate perfectly.
        indices = [0, 1] * 50
        bits = [1, 0] * 50
        from repro.predictors.sud import SaturatingUpDownCounter

        stats = evaluate_counter_confidence(
            indices,
            bits,
            lambda: SaturatingUpDownCounter(max_value=4, threshold=2),
        )
        assert stats.accuracy == 1.0
        assert stats.coverage > 0.9

    def test_labels_carried(self):
        stats = evaluate_counter_confidence(
            [0], [1], lambda: __import__("repro.predictors.sud", fromlist=["TwoBitCounter"]).TwoBitCounter(),
            label="demo",
        )
        assert stats.label == "demo"


class TestFSMConfidence:
    def test_matches_counter_style_evaluation(self, paper_trace):
        machine = design_predictor(paper_trace, order=2).machine
        indices = [0] * len(paper_trace)
        bits = list(paper_trace)
        from repro.predictors.fsm import FSMPredictor

        fast = evaluate_fsm_confidence(indices, bits, machine)
        slow = evaluate_counter_confidence(
            indices, bits, lambda: FSMPredictor(machine)
        )
        assert fast.accuracy == pytest.approx(slow.accuracy)
        assert fast.coverage == pytest.approx(slow.coverage)

    def test_periodic_misses_anticipated(self):
        """Correctness pattern 1110 repeating: an FSM that learns the
        period avoids the periodic miss entirely; a counter cannot."""
        bits = ([1, 1, 1, 0] * 100)
        indices = [0] * len(bits)
        machine = design_predictor(bits, order=4).machine
        fsm_stats = evaluate_fsm_confidence(indices, bits, machine)
        from repro.predictors.sud import SaturatingUpDownCounter

        sud_stats = evaluate_counter_confidence(
            indices, bits, lambda: SaturatingUpDownCounter(max_value=4, threshold=2)
        )
        assert fsm_stats.accuracy > sud_stats.accuracy
        assert fsm_stats.accuracy > 0.99


class TestSweeps:
    def test_sud_sweep_size(self):
        # 4 max values x 5 decrements x 3 thresholds.
        assert len(sud_configurations()) == 60

    def test_sud_sweep_includes_full_decrement(self):
        labels = [label for label, _f in sud_configurations()]
        assert any("dfull" in label for label in labels)

    def test_sud_factories_independent(self):
        _label, factory = sud_configurations()[0]
        a, b = factory(), factory()
        a.update(True)
        assert b.value == 0

    def test_resetting_sweep_nonempty(self):
        configs = resetting_configurations()
        assert configs
        for _label, factory in configs:
            counter = factory()
            counter.update(True)
            counter.update(False)
            assert counter.value == 0
