"""Tests for the two-delta stride predictor and the last-value baseline."""

import pytest

from repro.valuepred.last_value import LastValuePredictor
from repro.valuepred.stride import StrideEntry, TwoDeltaStridePredictor


class TestTwoDelta:
    def test_cold_miss(self):
        predictor = TwoDeltaStridePredictor(num_entries=64)
        assert predictor.predict(0x4000) is None

    def test_learns_constant(self):
        predictor = TwoDeltaStridePredictor(num_entries=64)
        predictor.update(0x4000, 5)
        assert predictor.predict(0x4000) == 5  # stride still 0

    def test_two_delta_rule_requires_confirmation(self):
        """The stride is adopted only when seen twice in a row."""
        predictor = TwoDeltaStridePredictor(num_entries=64)
        predictor.update(0x4000, 10)
        predictor.update(0x4000, 14)   # new stride 4, seen once
        assert predictor.predict(0x4000) == 14  # predicted stride still 0
        predictor.update(0x4000, 18)   # stride 4 seen twice
        assert predictor.predict(0x4000) == 22

    def test_one_off_jump_does_not_disturb_stride(self):
        predictor = TwoDeltaStridePredictor(num_entries=64)
        for value in (0, 4, 8, 12):
            predictor.update(0x4000, value)
        assert predictor.predict(0x4000) == 16
        predictor.update(0x4000, 100)  # jump: stride 88 seen once
        # Predicted stride stays 4 (two-delta's whole point).
        assert predictor.predict(0x4000) == 104

    def test_tracks_perfect_stride_stream(self):
        predictor = TwoDeltaStridePredictor(num_entries=64)
        correct = 0
        value = 0
        for i in range(50):
            prediction = predictor.predict(0x4000)
            if prediction == value:
                correct += 1
            predictor.update(0x4000, value)
            value += 3
        assert correct >= 47  # misses only while warming up

    def test_tag_mismatch_is_miss_and_realloc(self):
        predictor = TwoDeltaStridePredictor(num_entries=16)
        pc_a = 0x4000
        pc_b = pc_a + 16 * 4  # same index, different tag
        predictor.update(pc_a, 1)
        assert predictor.predict(pc_b) is None
        predictor.update(pc_b, 9)
        assert predictor.predict(pc_b) == 9
        assert predictor.predict(pc_a) is None  # evicted

    def test_index_of_stable(self):
        predictor = TwoDeltaStridePredictor(num_entries=2048)
        assert predictor.index_of(0x4000) == predictor.index_of(0x4000)

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            TwoDeltaStridePredictor(num_entries=1000)

    def test_reset(self):
        predictor = TwoDeltaStridePredictor(num_entries=16)
        predictor.update(0x4000, 7)
        predictor.reset()
        assert predictor.predict(0x4000) is None

    def test_storage_bits_positive(self):
        assert TwoDeltaStridePredictor(num_entries=2048).storage_bits > 0

    def test_default_is_2k_entries(self):
        assert TwoDeltaStridePredictor().num_entries == 2048


class TestLastValue:
    def test_predicts_last(self):
        predictor = LastValuePredictor(num_entries=16)
        predictor.update(0x4000, 42)
        assert predictor.predict(0x4000) == 42

    def test_cold_miss(self):
        assert LastValuePredictor(num_entries=16).predict(0x4000) is None

    def test_beats_stride_on_constants_with_noise(self):
        """A constant value stream with occasional changes: last-value
        recovers in one access, two-delta in one as well -- equal; but on a
        pure alternating stream last-value always misses."""
        predictor = LastValuePredictor(num_entries=16)
        predictor.update(0x4000, 1)
        predictor.update(0x4000, 2)
        assert predictor.predict(0x4000) == 2

    def test_reset(self):
        predictor = LastValuePredictor(num_entries=16)
        predictor.update(0x4000, 1)
        predictor.reset()
        assert predictor.predict(0x4000) is None

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            LastValuePredictor(num_entries=3)
