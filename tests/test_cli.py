"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestDesign:
    def test_design_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0000 1000 1011 1101 1110 1111")
        assert main(["design", "--order", "2", "--trace-file", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "x1 | 1x" in out
        assert "MooreMachine: 3 states" in out

    def test_design_writes_hdl(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0101" * 20)
        vhdl = tmp_path / "out.vhd"
        verilog = tmp_path / "out.v"
        dot = tmp_path / "out.dot"
        main(
            [
                "design", "--order", "2", "--trace-file", str(trace),
                "--vhdl", str(vhdl), "--verilog", str(verilog),
                "--dot", str(dot), "--area",
            ]
        )
        assert "entity" in vhdl.read_text()
        assert "module" in verilog.read_text()
        assert "digraph" in dot.read_text()
        assert "AreaReport" in capsys.readouterr().out

    def test_design_rejects_empty_trace(self, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text("hello world")
        with pytest.raises(SystemExit):
            main(["design", "--trace-file", str(trace)])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])

    def test_fig1_runs(self, capsys):
        assert main(["figures", "fig1"]) == 0
        assert "final=3" in capsys.readouterr().out


class TestCustomize:
    def test_customize_small(self, capsys):
        assert main(["customize", "ijpeg", "--branches", "2", "--length", "8000"]) == 0
        out = capsys.readouterr().out
        assert "xscale-128" in out
        assert "custom-" in out
