"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestDesign:
    def test_design_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0000 1000 1011 1101 1110 1111")
        assert main(["design", "--order", "2", "--trace-file", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "x1 | 1x" in out
        assert "MooreMachine: 3 states" in out

    def test_design_writes_hdl(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0101" * 20)
        vhdl = tmp_path / "out.vhd"
        verilog = tmp_path / "out.v"
        dot = tmp_path / "out.dot"
        main(
            [
                "design", "--order", "2", "--trace-file", str(trace),
                "--vhdl", str(vhdl), "--verilog", str(verilog),
                "--dot", str(dot), "--area",
            ]
        )
        assert "entity" in vhdl.read_text()
        assert "module" in verilog.read_text()
        assert "digraph" in dot.read_text()
        assert "AreaReport" in capsys.readouterr().out

    def test_design_rejects_empty_trace(self, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text("hello world")
        with pytest.raises(SystemExit):
            main(["design", "--trace-file", str(trace)])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])

    def test_fig1_runs(self, capsys):
        assert main(["figures", "fig1"]) == 0
        assert "final=3" in capsys.readouterr().out


class TestCustomize:
    def test_customize_small(self, capsys):
        assert main(["customize", "ijpeg", "--branches", "2", "--length", "8000"]) == 0
        out = capsys.readouterr().out
        assert "xscale-128" in out
        assert "custom-" in out


class TestDurabilityFlags:
    @pytest.fixture(autouse=True)
    def clean_run_id(self, monkeypatch, tmp_path):
        from repro.reliability import durability

        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
        monkeypatch.setattr(durability, "_current_run_id", None)

    def test_run_id_and_resume_parse(self):
        parser = build_parser()
        args = parser.parse_args(["--run-id", "abc", "figures", "fig1"])
        assert args.run_id == "abc"
        args = parser.parse_args(["--resume", "abc", "figures", "fig1"])
        assert args.resume == "abc"

    def test_conflicting_ids_rejected(self, capsys):
        assert main(["--resume", "a", "--run-id", "b", "figures", "fig1"]) == 2
        assert "different runs" in capsys.readouterr().err

    def test_matching_ids_accepted(self, capsys):
        from repro.reliability import durability

        assert main(["--resume", "a", "--run-id", "a", "figures", "fig1"]) == 0
        assert durability.current_run_id() == "a"

    def test_run_id_is_sanitized(self):
        from repro.reliability import durability

        assert main(["--run-id", "my run!", "figures", "fig1"]) == 0
        assert durability.current_run_id() == "my-run"

    def test_unusable_run_id_is_an_error(self, capsys):
        assert main(["--run-id", "///", "figures", "fig1"]) == 2
        assert "no usable characters" in capsys.readouterr().err

    def test_interrupt_exits_130_with_resume_hint(self, monkeypatch, capsys):
        import repro.cli as cli_mod

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "_cmd_figures", interrupted)
        assert main(["--run-id", "sweep-7", "figures", "fig2"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume sweep-7" in err

    def test_interrupt_without_run_id_has_no_hint(self, monkeypatch, capsys):
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod, "_cmd_figures",
            lambda args: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert main(["figures", "fig2"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" not in err


class TestConformance:
    def test_fuzz_writes_replay_and_exits_zero(self, tmp_path, capsys):
        assert (
            main(
                [
                    "conformance", "fuzz", "--seed", "5", "--budget", "3",
                    "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "replay_5.jsonl").exists()
        assert "seed=5 budget=3: ok" in capsys.readouterr().out

    def test_regen_writes_golden_files(self, tmp_path, capsys):
        assert main(["conformance", "regen", "--golden-dir", str(tmp_path)]) == 0
        assert sorted(tmp_path.glob("golden_*.json"))
        assert "wrote" in capsys.readouterr().out

    def test_regen_flag_is_an_alias(self, tmp_path):
        assert main(["conformance", "--regen", "--golden-dir", str(tmp_path)]) == 0
        assert sorted(tmp_path.glob("golden_*.json"))

    def test_minimize_requires_replay_file(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["conformance", "minimize"])

    def test_minimize_replays_cases(self, tmp_path, capsys):
        main(
            [
                "conformance", "fuzz", "--seed", "5", "--budget", "2",
                "--out-dir", str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "conformance", "minimize",
                    "--replay", str(tmp_path / "replay_5.jsonl"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "case 0" in out and "ok" in out


class TestTrace:
    def test_list_prints_registered_sources(self, capsys):
        assert main(["trace", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == ["kmp", "minivm", "pybytecode"]

    def test_bit_stream_on_stdout(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            main(
                [
                    "trace", "--source", "kmp:pattern=ab,text=iid",
                    "--length", "64", "--seed", "1",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        bits = captured.out.strip()
        assert len(bits) == 64 and set(bits) <= {"0", "1"}
        assert "64 events" in captured.err

    def test_pcs_mode_and_out_file(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "trace.txt"
        assert (
            main(
                [
                    "trace", "--source", "pybytecode:program=sort",
                    "--length", "32", "--seed", "2",
                    "--pcs", "--out", str(out),
                ]
            )
            == 0
        )
        lines = out.read_text().splitlines()
        assert len(lines) == 32
        pc, bit = lines[0].split()
        assert pc.isdigit() and bit in ("0", "1")

    def test_unknown_source_is_exit_2(self, capsys):
        assert main(["trace", "--source", "bogus"]) == 2
        assert "unknown source" in capsys.readouterr().err

    def test_malformed_spec_is_exit_2(self, capsys):
        assert main(["trace", "--source", "kmp:pattern"]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_source_needed_without_list(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["trace"])


class TestFiguresSource:
    def test_fig2_over_a_source(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
        assert (
            main(
                [
                    "figures", "fig2",
                    "--source", "kmp:pattern=ab,text=iid",
                    "--length", "1024", "--seed", "3", "--gap-k", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "source:kmp:pattern=ab,q=1/2,text=iid,variant=mp" in out

    def test_bad_source_spec_is_exit_2(self, capsys):
        assert main(["figures", "fig2", "--source", "bogus"]) == 2
        assert "unknown source" in capsys.readouterr().err


class TestConformanceSourceChecks:
    def test_run_reports_kmp_and_sources_checks(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["conformance", "run"]) == 0
        out = capsys.readouterr().out
        assert "kmp     closed-form rates ok" in out
        assert "sources golden vectors ok" in out
