"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestDesign:
    def test_design_from_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0000 1000 1011 1101 1110 1111")
        assert main(["design", "--order", "2", "--trace-file", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "x1 | 1x" in out
        assert "MooreMachine: 3 states" in out

    def test_design_writes_hdl(self, tmp_path, capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("0101" * 20)
        vhdl = tmp_path / "out.vhd"
        verilog = tmp_path / "out.v"
        dot = tmp_path / "out.dot"
        main(
            [
                "design", "--order", "2", "--trace-file", str(trace),
                "--vhdl", str(vhdl), "--verilog", str(verilog),
                "--dot", str(dot), "--area",
            ]
        )
        assert "entity" in vhdl.read_text()
        assert "module" in verilog.read_text()
        assert "digraph" in dot.read_text()
        assert "AreaReport" in capsys.readouterr().out

    def test_design_rejects_empty_trace(self, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text("hello world")
        with pytest.raises(SystemExit):
            main(["design", "--trace-file", str(trace)])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])

    def test_fig1_runs(self, capsys):
        assert main(["figures", "fig1"]) == 0
        assert "final=3" in capsys.readouterr().out


class TestCustomize:
    def test_customize_small(self, capsys):
        assert main(["customize", "ijpeg", "--branches", "2", "--length", "8000"]) == 0
        out = capsys.readouterr().out
        assert "xscale-128" in out
        assert "custom-" in out


class TestDurabilityFlags:
    @pytest.fixture(autouse=True)
    def clean_run_id(self, monkeypatch, tmp_path):
        from repro.reliability import durability

        monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))
        monkeypatch.setattr(durability, "_current_run_id", None)

    def test_run_id_and_resume_parse(self):
        parser = build_parser()
        args = parser.parse_args(["--run-id", "abc", "figures", "fig1"])
        assert args.run_id == "abc"
        args = parser.parse_args(["--resume", "abc", "figures", "fig1"])
        assert args.resume == "abc"

    def test_conflicting_ids_rejected(self, capsys):
        assert main(["--resume", "a", "--run-id", "b", "figures", "fig1"]) == 2
        assert "different runs" in capsys.readouterr().err

    def test_matching_ids_accepted(self, capsys):
        from repro.reliability import durability

        assert main(["--resume", "a", "--run-id", "a", "figures", "fig1"]) == 0
        assert durability.current_run_id() == "a"

    def test_run_id_is_sanitized(self):
        from repro.reliability import durability

        assert main(["--run-id", "my run!", "figures", "fig1"]) == 0
        assert durability.current_run_id() == "my-run"

    def test_unusable_run_id_is_an_error(self, capsys):
        assert main(["--run-id", "///", "figures", "fig1"]) == 2
        assert "no usable characters" in capsys.readouterr().err

    def test_interrupt_exits_130_with_resume_hint(self, monkeypatch, capsys):
        import repro.cli as cli_mod

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "_cmd_figures", interrupted)
        assert main(["--run-id", "sweep-7", "figures", "fig2"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume sweep-7" in err

    def test_interrupt_without_run_id_has_no_hint(self, monkeypatch, capsys):
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod, "_cmd_figures",
            lambda args: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert main(["figures", "fig2"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" not in err


class TestConformance:
    def test_fuzz_writes_replay_and_exits_zero(self, tmp_path, capsys):
        assert (
            main(
                [
                    "conformance", "fuzz", "--seed", "5", "--budget", "3",
                    "--out-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "replay_5.jsonl").exists()
        assert "seed=5 budget=3: ok" in capsys.readouterr().out

    def test_regen_writes_golden_files(self, tmp_path, capsys):
        assert main(["conformance", "regen", "--golden-dir", str(tmp_path)]) == 0
        assert sorted(tmp_path.glob("golden_*.json"))
        assert "wrote" in capsys.readouterr().out

    def test_regen_flag_is_an_alias(self, tmp_path):
        assert main(["conformance", "--regen", "--golden-dir", str(tmp_path)]) == 0
        assert sorted(tmp_path.glob("golden_*.json"))

    def test_minimize_requires_replay_file(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["conformance", "minimize"])

    def test_minimize_replays_cases(self, tmp_path, capsys):
        main(
            [
                "conformance", "fuzz", "--seed", "5", "--budget", "2",
                "--out-dir", str(tmp_path),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "conformance", "minimize",
                    "--replay", str(tmp_path / "replay_5.jsonl"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "case 0" in out and "ok" in out
