"""Tests for Thompson construction and NFA simulation.

The oracle for language questions is Python's ``re`` module: our regex
concrete syntax maps directly onto Python syntax for the binary alphabet.
"""

import re

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata import regex as rx
from repro.automata.nfa import EPSILON, NFA, thompson_construct


def to_python_re(text: str) -> str:
    return "^(?:" + text.replace("{", "(").replace("}", ")").replace(".", "[01]") + ")$"


REGEX_CASES = [
    "0",
    "1",
    "01",
    "0|1",
    "(0|1)*",
    "1(0|1)",
    "(0|1)*((0|1)1|1(0|1))",
    "(01)*",
    "0*1*",
    "(0|1)(0|1)(0|1)",
]


def all_strings(max_len):
    yield ""
    frontier = [""]
    for _ in range(max_len):
        frontier = [s + c for s in frontier for c in "01"]
        yield from frontier


class TestThompson:
    def test_symbol(self):
        nfa = thompson_construct(rx.Symbol("1"), alphabet=("0", "1"))
        assert nfa.accepts_string("1")
        assert not nfa.accepts_string("0")
        assert not nfa.accepts_string("")
        assert not nfa.accepts_string("11")

    def test_epsilon(self):
        nfa = thompson_construct(rx.Epsilon(), alphabet=("0", "1"))
        assert nfa.accepts_string("")
        assert not nfa.accepts_string("0")

    def test_empty_set(self):
        nfa = thompson_construct(rx.EmptySet(), alphabet=("0", "1"))
        for text in all_strings(3):
            assert not nfa.accepts_string(text)

    def test_alternation(self):
        nfa = thompson_construct(rx.parse_regex("0|1"))
        assert nfa.accepts_string("0")
        assert nfa.accepts_string("1")
        assert not nfa.accepts_string("01")

    def test_star(self):
        nfa = thompson_construct(rx.parse_regex("1*"), alphabet=("0", "1"))
        assert nfa.accepts_string("")
        assert nfa.accepts_string("111")
        assert not nfa.accepts_string("10")

    def test_alphabet_defaults_to_used_symbols(self):
        nfa = thompson_construct(rx.Symbol("1"))
        assert nfa.alphabet == ("1",)

    def test_symbol_outside_alphabet_rejected(self):
        nfa = thompson_construct(rx.Symbol("1"))
        assert not nfa.accepts_string("0")

    def test_linear_size(self):
        # Thompson machines are linear in the regex size.
        node = rx.parse_regex("(0|1)*((0|1)1|1(0|1))")
        nfa = thompson_construct(node)
        assert nfa.num_states < 40

    @pytest.mark.parametrize("pattern", REGEX_CASES)
    def test_against_python_re(self, pattern):
        compiled = re.compile(to_python_re(pattern))
        nfa = thompson_construct(rx.parse_regex(pattern), alphabet=("0", "1"))
        for text in all_strings(6):
            assert nfa.accepts_string(text) == bool(compiled.match(text)), (
                pattern,
                text,
            )


class TestEpsilonClosure:
    def test_closure_contains_seed(self):
        nfa = thompson_construct(rx.parse_regex("0|1"))
        closure = nfa.epsilon_closure({nfa.start})
        assert nfa.start in closure

    def test_closure_is_idempotent(self):
        nfa = thompson_construct(rx.parse_regex("(0|1)*"))
        once = nfa.epsilon_closure({nfa.start})
        twice = nfa.epsilon_closure(once)
        assert once == twice

    def test_step_applies_closure(self):
        nfa = thompson_construct(rx.parse_regex("(0)*"), alphabet=("0", "1"))
        state_set = nfa.epsilon_closure({nfa.start})
        after = nfa.step(state_set, "0")
        # After one 0 the machine must again be ready to accept.
        assert after & nfa.accepts


@given(st.lists(st.sampled_from(REGEX_CASES), min_size=1, max_size=3), st.text("01", max_size=8))
def test_property_alternation_is_union(patterns, text):
    """The NFA of an alternation accepts iff any branch accepts."""
    node = rx.alternate_all([rx.parse_regex(p) for p in patterns])
    union_nfa = thompson_construct(node, alphabet=("0", "1"))
    branch_nfas = [
        thompson_construct(rx.parse_regex(p), alphabet=("0", "1"))
        for p in patterns
    ]
    expected = any(n.accepts_string(text) for n in branch_nfas)
    assert union_nfa.accepts_string(text) == expected
