"""Tests for the regex AST and parser."""

import pytest

from repro.automata import regex as rx


class TestNodes:
    def test_symbol_str(self):
        assert str(rx.Symbol("0")) == "0"

    def test_symbol_must_be_single_char(self):
        with pytest.raises(ValueError):
            rx.Symbol("01")

    def test_epsilon_and_empty(self):
        assert str(rx.Epsilon()) == "ε"
        assert str(rx.EmptySet()) == "∅"

    def test_concat_str(self):
        node = rx.literal("101")
        assert str(node) == "101"

    def test_concat_needs_two_parts(self):
        with pytest.raises(ValueError):
            rx.Concat((rx.Symbol("0"),))

    def test_alternate_str_parenthesized_in_concat(self):
        node = rx.Concat((rx.any_symbol(), rx.Symbol("1")))
        assert str(node) == "(0|1)1"

    def test_alternate_needs_two_options(self):
        with pytest.raises(ValueError):
            rx.Alternate((rx.Symbol("0"),))

    def test_star_str(self):
        assert str(rx.Star(rx.any_symbol())) == "(0|1)*"

    def test_operator_sugar(self):
        node = (rx.Symbol("0") | rx.Symbol("1")) + rx.Symbol("1")
        assert str(node) == "(0|1)1"
        assert str(rx.Symbol("1").star()) == "1*"


class TestHelpers:
    def test_any_symbol_binary(self):
        node = rx.any_symbol()
        assert isinstance(node, rx.Alternate)
        assert {str(o) for o in node.options} == {"0", "1"}

    def test_any_symbol_unary_alphabet(self):
        assert rx.any_symbol(("a",)) == rx.Symbol("a")

    def test_literal_empty(self):
        assert rx.literal("") == rx.Epsilon()

    def test_literal_single(self):
        assert rx.literal("1") == rx.Symbol("1")

    def test_concat_all_flattens_epsilon(self):
        assert rx.concat_all([rx.Epsilon(), rx.Symbol("1")]) == rx.Symbol("1")

    def test_concat_all_empty(self):
        assert rx.concat_all([]) == rx.Epsilon()

    def test_alternate_all_flattens_empty_set(self):
        assert rx.alternate_all([rx.EmptySet(), rx.Symbol("1")]) == rx.Symbol("1")

    def test_alternate_all_empty(self):
        assert rx.alternate_all([]) == rx.EmptySet()

    def test_alphabet_of(self):
        node = rx.parse_regex("(0|1)*101")
        assert rx.alphabet_of(node) == ("0", "1")


class TestParser:
    def test_single_symbol(self):
        assert rx.parse_regex("1") == rx.Symbol("1")

    def test_concat(self):
        assert rx.parse_regex("10") == rx.literal("10")

    def test_alternation(self):
        node = rx.parse_regex("0|1")
        assert isinstance(node, rx.Alternate)

    def test_star(self):
        node = rx.parse_regex("1*")
        assert node == rx.Star(rx.Symbol("1"))

    def test_dot_is_any(self):
        assert rx.parse_regex(".") == rx.any_symbol()

    def test_parens_and_braces_equivalent(self):
        assert rx.parse_regex("(0|1)1") == rx.parse_regex("{0|1}1")

    def test_paper_expression(self):
        # Section 4.5: {0|1} { 1{0|1} | {0|1}1 }
        node = rx.parse_regex("{0|1}{1{0|1}|{0|1}1}")
        assert isinstance(node, rx.Concat)

    def test_whitespace_ignored(self):
        assert rx.parse_regex("( 0 | 1 ) 1") == rx.parse_regex("(0|1)1")

    def test_mismatched_brackets(self):
        with pytest.raises(ValueError):
            rx.parse_regex("(0|1}")

    def test_trailing_garbage(self):
        with pytest.raises(ValueError):
            rx.parse_regex("0)")

    def test_bad_character(self):
        with pytest.raises(ValueError):
            rx.parse_regex("2")

    def test_empty_string_is_epsilon(self):
        assert rx.parse_regex("") == rx.Epsilon()

    def test_nested_star(self):
        node = rx.parse_regex("(01)*")
        assert node == rx.Star(rx.literal("01"))

    def test_str_parse_roundtrip(self):
        for text in ("1", "10", "0|1", "(0|1)*", "(0|1)*((0|1)1|1(0|1))"):
            node = rx.parse_regex(text)
            assert rx.parse_regex(str(node)) == node
