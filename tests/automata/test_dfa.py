"""Tests for subset construction and DFA behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata import regex as rx
from repro.automata.dfa import DFA, subset_construct
from repro.automata.nfa import thompson_construct

REGEX_CASES = [
    "0",
    "(0|1)*",
    "1(0|1)",
    "(0|1)*((0|1)1|1(0|1))",
    "(01)*",
    "0*1*",
]


def build(pattern: str) -> DFA:
    return subset_construct(
        thompson_construct(rx.parse_regex(pattern), alphabet=("0", "1"))
    )


def all_strings(max_len):
    yield ""
    frontier = [""]
    for _ in range(max_len):
        frontier = [s + c for s in frontier for c in "01"]
        yield from frontier


class TestValidation:
    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            DFA(alphabet=("0", "1"), start=0, accepts=frozenset(), transitions=((0,),))

    def test_successor_range_checked(self):
        with pytest.raises(ValueError):
            DFA(alphabet=("0", "1"), start=0, accepts=frozenset(), transitions=((0, 5),))

    def test_start_range_checked(self):
        with pytest.raises(ValueError):
            DFA(alphabet=("0", "1"), start=3, accepts=frozenset(), transitions=((0, 0),))

    def test_accept_range_checked(self):
        with pytest.raises(ValueError):
            DFA(
                alphabet=("0", "1"),
                start=0,
                accepts=frozenset({9}),
                transitions=((0, 0),),
            )


class TestSubsetConstruction:
    @pytest.mark.parametrize("pattern", REGEX_CASES)
    def test_language_equivalence_with_nfa(self, pattern):
        nfa = thompson_construct(rx.parse_regex(pattern), alphabet=("0", "1"))
        dfa = subset_construct(nfa)
        for text in all_strings(7):
            assert dfa.accepts_string(text) == nfa.accepts_string(text), (
                pattern,
                text,
            )

    @pytest.mark.parametrize("pattern", REGEX_CASES)
    def test_result_is_complete(self, pattern):
        dfa = build(pattern)
        for row in dfa.transitions:
            assert len(row) == 2
            for successor in row:
                assert 0 <= successor < dfa.num_states

    def test_start_is_zero(self):
        assert build("(0|1)*").start == 0

    def test_dead_state_for_finite_language(self):
        dfa = build("01")
        # "011" must be rejected, and further symbols stay rejected.
        state = dfa.run("011")
        assert state not in dfa.accepts
        assert dfa.step(state, "0") == state  # trapped

    def test_deterministic_output(self):
        a, b = build("(01)*"), build("(01)*")
        assert a.transitions == b.transitions
        assert a.accepts == b.accepts


class TestRunHelpers:
    def test_run_from_custom_start(self):
        dfa = build("(0|1)*1")
        mid = dfa.run("1")
        assert dfa.run("0", start=mid) == dfa.run("10")

    def test_symbol_index_unknown(self):
        with pytest.raises(KeyError):
            build("0").symbol_index("x")

    def test_reachable_states_cover_all(self):
        dfa = build("(0|1)*((0|1)1|1(0|1))")
        # Subset construction only emits reachable states.
        assert dfa.reachable_states() == set(range(dfa.num_states))


@given(st.sampled_from(REGEX_CASES), st.text("01", max_size=10))
def test_property_dfa_matches_nfa(pattern, text):
    nfa = thompson_construct(rx.parse_regex(pattern), alphabet=("0", "1"))
    dfa = subset_construct(nfa)
    assert dfa.accepts_string(text) == nfa.accepts_string(text)
