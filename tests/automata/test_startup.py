"""Tests for start-state reduction (Section 4.7)."""

import pytest

from repro.automata import regex as rx
from repro.automata.dfa import subset_construct
from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import MooreMachine
from repro.automata.nfa import thompson_construct
from repro.automata.startup import (
    startup_state_count,
    steady_state_core,
    steady_state_reduce,
)


def machine_for_patterns(pattern: str) -> MooreMachine:
    return hopcroft_minimize(
        MooreMachine.from_dfa(
            subset_construct(
                thompson_construct(rx.parse_regex(pattern), alphabet=("0", "1"))
            )
        )
    )


def all_strings_of_length(n):
    frontier = [""]
    for _ in range(n):
        frontier = [s + c for s in frontier for c in "01"]
    return frontier


class TestSteadyStateCore:
    def test_paper_example_core(self):
        # Language of Figure 1: (0|1)*((0|1)1 | 1(0|1)), N = 2.
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        assert machine.num_states == 5  # with start-up states (paper)
        core = steady_state_core(machine, horizon=2)
        assert len(core) == 3  # steady-state machine of Figure 1

    def test_core_is_closed(self):
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        core = steady_state_core(machine, horizon=2)
        for state in core:
            for successor in machine.transitions[state]:
                assert successor in core

    def test_core_contains_all_length_n_images(self):
        machine = machine_for_patterns("(0|1)*(11|00)")
        core = steady_state_core(machine, horizon=2)
        for text in all_strings_of_length(2):
            assert machine.run(text) in core

    def test_horizon_zero_keeps_reachable(self):
        machine = machine_for_patterns("(0|1)*1")
        core = steady_state_core(machine, horizon=0)
        assert core == machine.reachable_states()


class TestReduction:
    def test_paper_example_reduces_to_three_states(self):
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        reduced = steady_state_reduce(machine, horizon=2)
        assert reduced.num_states == 3

    def test_behaviour_preserved_for_long_strings(self):
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        reduced = steady_state_reduce(machine, horizon=2)
        # "this optimization only effects the behavior of the state machine
        # on a small constant number of strings" -- those shorter than N.
        for prefix in all_strings_of_length(2):
            for suffix in all_strings_of_length(3):
                text = prefix + suffix
                assert machine.output_after(text) == reduced.output_after(text)

    def test_canonical_history_sets_start(self):
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        reduced = steady_state_reduce(machine, horizon=2, canonical_history="11")
        assert reduced.outputs[reduced.start] == 1

    def test_default_canonical_history_is_zeros(self):
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        reduced = steady_state_reduce(machine, horizon=2)
        # After history 00 the prediction is 0.
        assert reduced.outputs[reduced.start] == 0

    def test_no_startup_states_noop_size(self):
        # (0|1)* has a single state; nothing to remove.
        machine = machine_for_patterns("(0|1)*")
        reduced = steady_state_reduce(machine, horizon=4)
        assert reduced.num_states == machine.num_states

    def test_startup_state_count(self):
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        assert startup_state_count(machine, horizon=2) == 2

    def test_renumbering_is_bfs_from_new_start(self):
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        reduced = steady_state_reduce(machine, horizon=2)
        assert reduced.start == 0

    def test_outputs_suffix_determined_after_reduction(self):
        """From ANY state of the reduced machine, a length-N input drives
        it to a state whose output depends only on that input -- the key
        invariant of Section 7.6."""
        machine = machine_for_patterns("(0|1)*((0|1)1|1(0|1))")
        reduced = steady_state_reduce(machine, horizon=2)
        for history in all_strings_of_length(2):
            outputs = {
                reduced.outputs[reduced.run(history, start=s)]
                for s in range(reduced.num_states)
            }
            assert len(outputs) == 1
