"""Tests for Moore machines."""

import pytest

from repro.automata import regex as rx
from repro.automata.dfa import subset_construct
from repro.automata.moore import MooreMachine
from repro.automata.nfa import thompson_construct


def two_state_toggle():
    """s0 <-> s1 on any input; outputs 0, 1."""
    return MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=(0, 1),
        transitions=((1, 1), (0, 0)),
    )


class TestValidation:
    def test_output_count_checked(self):
        with pytest.raises(ValueError):
            MooreMachine(
                alphabet=("0", "1"), start=0, outputs=(0,), transitions=((0, 0), (1, 1))
            )

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            MooreMachine(alphabet=("0", "1"), start=0, outputs=(0,), transitions=((0,),))

    def test_successor_range_checked(self):
        with pytest.raises(ValueError):
            MooreMachine(alphabet=("0", "1"), start=0, outputs=(0,), transitions=((0, 7),))

    def test_start_range_checked(self):
        with pytest.raises(ValueError):
            MooreMachine(alphabet=("0", "1"), start=2, outputs=(0,), transitions=((0, 0),))


class TestConversions:
    def test_from_dfa_outputs_track_accepts(self):
        dfa = subset_construct(
            thompson_construct(rx.parse_regex("(0|1)*1"), alphabet=("0", "1"))
        )
        moore = MooreMachine.from_dfa(dfa)
        for state in range(moore.num_states):
            assert moore.outputs[state] == (1 if state in dfa.accepts else 0)

    def test_roundtrip_dfa(self):
        machine = two_state_toggle()
        dfa = machine.to_dfa()
        back = MooreMachine.from_dfa(dfa)
        assert back.outputs == machine.outputs
        assert back.transitions == machine.transitions


class TestSimulation:
    def test_step(self):
        machine = two_state_toggle()
        assert machine.step(0, "0") == 1
        assert machine.step(1, "1") == 0

    def test_step_bit(self):
        machine = two_state_toggle()
        assert machine.step_bit(0, 1) == 1

    def test_run_and_output_after(self):
        machine = two_state_toggle()
        assert machine.run("000") == 1
        assert machine.output_after("000") == 1
        assert machine.output_after("00") == 0

    def test_run_from_custom_start(self):
        machine = two_state_toggle()
        assert machine.run("0", start=1) == 0

    def test_trace_outputs(self):
        machine = two_state_toggle()
        assert machine.trace_outputs("000") == [1, 0, 1]

    def test_symbol_index_unknown(self):
        with pytest.raises(KeyError):
            two_state_toggle().symbol_index("2")


class TestTransformation:
    def test_restrict_to_renumbers(self):
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1, 0),
            transitions=((1, 1), (2, 2), (1, 1)),
        )
        restricted = machine.restrict_to([1, 2], start=1)
        assert restricted.num_states == 2
        assert restricted.start == 0
        assert restricted.outputs == (1, 0)
        assert restricted.transitions == ((1, 1), (0, 0))

    def test_restrict_to_requires_closure(self):
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1),
            transitions=((1, 1), (0, 0)),
        )
        with pytest.raises(ValueError):
            machine.restrict_to([0], start=0)

    def test_restrict_start_must_be_kept(self):
        machine = two_state_toggle()
        with pytest.raises(ValueError):
            machine.restrict_to([0, 1], start=5)

    def test_with_start(self):
        machine = two_state_toggle().with_start(1)
        assert machine.start == 1
        assert machine.outputs[machine.start] == 1
        assert machine.output_after("") == 1


class TestExport:
    def test_dot_structure(self):
        dot = two_state_toggle().to_dot("toggle")
        assert dot.startswith("digraph toggle {")
        assert dot.rstrip().endswith("}")
        assert 's0 [label="s0\\n[0]"]' in dot
        assert 's1 [label="s1\\n[1]"]' in dot
        assert "init -> s0" in dot

    def test_dot_merges_parallel_edges(self):
        dot = two_state_toggle().to_dot()
        assert 'label="0,1"' in dot

    def test_describe_lists_all_states(self):
        text = two_state_toggle().describe()
        assert "s0 [0]" in text
        assert "s1 [1]" in text

    def test_reachable_states(self):
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 0, 1),
            transitions=((0, 0), (2, 2), (1, 1)),
        )
        assert machine.reachable_states() == {0}
        assert machine.reachable_states([1]) == {1, 2}
