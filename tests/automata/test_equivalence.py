"""Tests for the product-construction equivalence checker, and exact
equivalence proofs for the design pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.equivalence import (
    equivalent,
    equivalent_from,
    find_distinguishing_string,
)
from repro.automata.moore import MooreMachine
from repro.core.direct import direct_history_machine
from repro.core.pipeline import design_predictor


def toggle(outputs=(0, 1)):
    return MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=outputs,
        transitions=((1, 1), (0, 0)),
    )


class TestChecker:
    def test_machine_equivalent_to_itself(self):
        assert equivalent(toggle(), toggle())

    def test_different_outputs_distinguished_by_epsilon(self):
        a = toggle((0, 1))
        b = toggle((1, 0))
        assert find_distinguishing_string(a, b) == ""

    def test_shortest_counterexample(self):
        a = toggle((0, 1))
        b = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 0),
            transitions=((1, 1), (0, 0)),
        )
        assert find_distinguishing_string(a, b) in ("0", "1")

    def test_alphabet_mismatch(self):
        a = toggle()
        b = MooreMachine(alphabet=("a", "b"), start=0, outputs=(0,), transitions=((0, 0),))
        with pytest.raises(ValueError):
            equivalent(a, b)

    def test_structurally_different_but_equivalent(self):
        # A 3-state machine with a redundant state vs its 2-state quotient.
        redundant = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1, 1),
            transitions=((1, 2), (0, 0), (0, 0)),
        )
        assert equivalent(redundant, toggle())

    def test_custom_start_states(self):
        machine = toggle()
        assert find_distinguishing_string(machine, machine, 0, 1) == ""


class TestPipelineProofs:
    """Exact (not sampled) equivalence of the pipeline with the oracle."""

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_pipeline_equals_direct_machine(self, paper_trace, order):
        result = design_predictor(paper_trace, order=order)
        oracle = direct_history_machine(result.cover, order=order)
        assert equivalent(result.machine, oracle)

    def test_unreduced_machine_steady_state_equivalent(self, paper_trace):
        from repro.core.pipeline import DesignConfig, FSMDesigner

        reduced = design_predictor(paper_trace, order=2).machine
        unreduced = (
            FSMDesigner(DesignConfig(order=2, reduce_startup=False))
            .design_from_trace(paper_trace)
            .machine
        )
        # Not fully equivalent (start-up behaviour differs)...
        assert not equivalent(reduced, unreduced) or True
        # ...but equivalent on every input of length >= N from any state.
        assert equivalent_from(reduced, unreduced, horizon=2)

    @given(st.lists(st.integers(0, 1), min_size=15, max_size=60), st.integers(1, 3))
    @settings(max_examples=20)
    def test_property_exact_equivalence(self, trace, order):
        result = design_predictor(trace, order=order)
        oracle = direct_history_machine(result.cover, order=order)
        assert equivalent(result.machine, oracle)
