"""Property tests: entry-space subset construction is exact.

The numpy fast path in :func:`repro.automata.dfa.subset_construct` runs
the worklist over entry-set masks and materializes subsets afterwards;
these tests force it on for arbitrary NFAs (epsilon cycles, unreachable
states, empty-move dead states) and require the result to be
*bit-identical* to the bignum worklist -- state numbering, transitions,
and accept set, not merely language-equivalent.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.automata.dfa as dfa_mod
from repro.automata.dfa import subset_construct
from repro.automata.nfa import EPSILON, NFA

numpy = pytest.importorskip("numpy")


@st.composite
def nfas(draw):
    n = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 2**16))
    p_eps = draw(st.sampled_from([0.0, 0.05, 0.2]))
    p_sym = draw(st.sampled_from([0.03, 0.1, 0.3]))
    rng = random.Random(seed)
    transitions = {}
    for state in range(n):
        eps = frozenset(t for t in range(n) if rng.random() < p_eps)
        if eps:
            transitions[(state, EPSILON)] = eps
        for symbol in ("0", "1"):
            dsts = frozenset(t for t in range(n) if rng.random() < p_sym)
            if dsts:
                transitions[(state, symbol)] = dsts
    accepts = frozenset(t for t in range(n) if rng.random() < 0.25)
    return NFA(
        num_states=n,
        alphabet=("0", "1"),
        start=rng.randrange(n),
        accepts=accepts,
        transitions=transitions,
    )


@settings(max_examples=80, deadline=None)
@given(nfas())
def test_entry_space_construction_is_bit_identical(nfa):
    threshold = dfa_mod._ENTRY_THRESHOLD
    try:
        dfa_mod._ENTRY_THRESHOLD = 10**9  # force the bignum worklist
        reference = subset_construct(nfa)
        dfa_mod._ENTRY_THRESHOLD = 1  # force the entry-space path
        fast = subset_construct(nfa)
    finally:
        dfa_mod._ENTRY_THRESHOLD = threshold
    assert fast.start == reference.start
    assert fast.accepts == reference.accepts
    assert fast.transitions == reference.transitions
    assert fast.alphabet == reference.alphabet


def test_subset_dedup_on_large_nfa_with_duplicate_subsets():
    """n > 256 trips the batched subset materialization + dedup in the
    entry path; the epsilon 2-cycles below make distinct entry sets
    denote the *same* subset (closure(2k) == closure(2k+1)), so the
    dedup must actually collapse rows -- numbering and accepts still
    bit-identical to the bignum worklist."""
    n = 400
    rng = random.Random(9)
    transitions = {}
    for k in range(0, n - 1, 2):
        transitions[(k, EPSILON)] = frozenset({k + 1})
        transitions[(k + 1, EPSILON)] = frozenset({k})
    for state in range(n):
        transitions[(state, "0")] = frozenset(
            rng.randrange(n) for _ in range(2)
        )
        # "1" moves land on either half of an epsilon pair depending on
        # the source's parity: subsets reached from odd/even twins are
        # equal sets expressed as different entry rows.
        base = 2 * rng.randrange((n - 1) // 2)
        transitions[(state, "1")] = frozenset({base + (state & 1)})
    nfa = NFA(
        num_states=n,
        alphabet=("0", "1"),
        start=0,
        accepts=frozenset(t for t in range(n) if rng.random() < 0.1),
        transitions=transitions,
    )
    threshold = dfa_mod._ENTRY_THRESHOLD
    try:
        dfa_mod._ENTRY_THRESHOLD = 10**9
        reference = subset_construct(nfa)
        dfa_mod._ENTRY_THRESHOLD = 1
        fast = subset_construct(nfa)
    finally:
        dfa_mod._ENTRY_THRESHOLD = threshold
    assert fast.start == reference.start
    assert fast.accepts == reference.accepts
    assert fast.transitions == reference.transitions


def test_repro_batch_disables_entry_path(monkeypatch):
    """REPRO_BATCH=0 must pin the bignum worklist even above threshold."""
    rng = random.Random(3)
    n = 12
    transitions = {}
    for state in range(n):
        transitions[(state, "0")] = frozenset({rng.randrange(n)})
        transitions[(state, "1")] = frozenset({rng.randrange(n), 0})
    nfa = NFA(
        num_states=n,
        alphabet=("0", "1"),
        start=0,
        accepts=frozenset({n - 1}),
        transitions=transitions,
    )
    monkeypatch.setattr(dfa_mod, "_ENTRY_THRESHOLD", 1)
    monkeypatch.setenv("REPRO_BATCH", "0")
    slow = subset_construct(nfa)
    monkeypatch.setenv("REPRO_BATCH", "1")
    fast = subset_construct(nfa)
    assert slow.transitions == fast.transitions
    assert slow.accepts == fast.accepts
