"""Property tests for Hopcroft minimization on random Moore machines.

Three contracts, checked on arbitrary machines rather than pipeline
output: the minimized machine is language-equivalent to its input
(`automata/equivalence.py` does the proving), it is minimal in the strict
sense that no two of its states are equivalent, and minimization is
idempotent -- and canonical, so re-minimizing reproduces the machine
exactly, state numbering included.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.automata.equivalence import equivalent
from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import MooreMachine
from repro.conformance.oracles import is_minimal, oracle_minimal_moore


@st.composite
def moore_machines(draw, max_states: int = 8):
    """Arbitrary binary-alphabet Moore machines: random outputs, random
    transition targets, start state 0 (unreachable states allowed -- the
    minimizer must drop them)."""
    n = draw(st.integers(1, max_states))
    outputs = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    transitions = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=n,
            max_size=n,
        )
    )
    return MooreMachine(
        alphabet=("0", "1"),
        start=0,
        outputs=tuple(outputs),
        transitions=tuple(transitions),
    )


@given(moore_machines())
def test_minimized_machine_is_equivalent(machine):
    assert equivalent(machine, hopcroft_minimize(machine))


@given(moore_machines())
def test_minimized_machine_is_minimal(machine):
    assert is_minimal(hopcroft_minimize(machine))


@given(moore_machines())
def test_minimization_is_idempotent_and_canonical(machine):
    once = hopcroft_minimize(machine)
    twice = hopcroft_minimize(once)
    assert twice == once


@given(moore_machines(max_states=6))
def test_minimized_matches_pairwise_oracle(machine):
    """Hopcroft's worklist refinement lands on exactly the machine the
    brute-force pairwise-equivalence oracle builds, canonical numbering
    included."""
    assert hopcroft_minimize(machine) == oracle_minimal_moore(machine)


@given(moore_machines())
def test_minimized_never_larger(machine):
    minimized = hopcroft_minimize(machine)
    assert minimized.num_states <= len(machine.reachable_states())
