"""Tests for output-aware Hopcroft minimization."""

import itertools
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata import regex as rx
from repro.automata.dfa import subset_construct
from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import MooreMachine
from repro.automata.nfa import thompson_construct


def machine_from(pattern: str) -> MooreMachine:
    return MooreMachine.from_dfa(
        subset_construct(
            thompson_construct(rx.parse_regex(pattern), alphabet=("0", "1"))
        )
    )


def random_machine(rng: random.Random, n: int) -> MooreMachine:
    return MooreMachine(
        alphabet=("0", "1"),
        start=rng.randrange(n),
        outputs=tuple(rng.randrange(2) for _ in range(n)),
        transitions=tuple(
            (rng.randrange(n), rng.randrange(n)) for _ in range(n)
        ),
    )


def all_strings(max_len):
    yield ""
    frontier = [""]
    for _ in range(max_len):
        frontier = [s + c for s in frontier for c in "01"]
        yield from frontier


class TestBehaviourPreservation:
    @pytest.mark.parametrize(
        "pattern",
        ["(0|1)*1", "(0|1)*((0|1)1|1(0|1))", "(01)*", "0*1*", "1(0|1)(0|1)"],
    )
    def test_outputs_preserved(self, pattern):
        machine = machine_from(pattern)
        minimized = hopcroft_minimize(machine)
        for text in all_strings(7):
            assert machine.output_after(text) == minimized.output_after(text)

    def test_never_grows(self):
        machine = machine_from("(0|1)*((0|1)1|1(0|1))")
        assert hopcroft_minimize(machine).num_states <= machine.num_states

    def test_removes_unreachable(self):
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1),
            transitions=((0, 0), (1, 1)),  # state 1 unreachable
        )
        assert hopcroft_minimize(machine).num_states == 1

    def test_merges_equivalent_states(self):
        # Two states with identical outputs/successors must merge.
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1, 1),
            transitions=((1, 2), (0, 0), (0, 0)),
        )
        assert hopcroft_minimize(machine).num_states == 2


class TestMinimality:
    @pytest.mark.parametrize(
        "pattern", ["(0|1)*1", "(01)*", "(0|1)*((0|1)1|1(0|1))"]
    )
    def test_no_equivalent_pair_remains(self, pattern):
        minimized = hopcroft_minimize(machine_from(pattern))
        # Brute-force distinguishability over strings up to a generous bound.
        for a, b in itertools.combinations(range(minimized.num_states), 2):
            distinguishable = any(
                minimized.outputs[minimized.run(text, start=a)]
                != minimized.outputs[minimized.run(text, start=b)]
                for text in all_strings(minimized.num_states + 1)
            )
            assert distinguishable, f"states {a} and {b} are equivalent"

    def test_idempotent(self):
        machine = machine_from("(0|1)*((0|1)1|1(0|1))")
        once = hopcroft_minimize(machine)
        twice = hopcroft_minimize(once)
        assert once.num_states == twice.num_states
        assert once.transitions == twice.transitions

    def test_canonical_numbering(self):
        machine = machine_from("(01)*")
        minimized = hopcroft_minimize(machine)
        assert minimized.start == 0


class TestMooreAwareness:
    def test_distinguishes_by_output_not_acceptance(self):
        # Three states, outputs 0/1/0; the two output-0 states differ in
        # where they go, but both reach the same places: they must merge.
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(0, 1, 0),
            transitions=((1, 1), (2, 2), (1, 1)),
        )
        minimized = hopcroft_minimize(machine)
        assert minimized.num_states == 2

    def test_all_states_same_output_collapse(self):
        machine = MooreMachine(
            alphabet=("0", "1"),
            start=0,
            outputs=(1, 1, 1),
            transitions=((1, 2), (2, 0), (0, 1)),
        )
        assert hopcroft_minimize(machine).num_states == 1


@given(st.integers(1, 12), st.integers(0, 2**32 - 1))
def test_property_equivalence_on_random_machines(n, seed):
    rng = random.Random(seed)
    machine = random_machine(rng, n)
    minimized = hopcroft_minimize(machine)
    assert minimized.num_states <= n
    for _ in range(30):
        text = "".join(rng.choice("01") for _ in range(rng.randrange(0, 12)))
        assert machine.output_after(text) == minimized.output_after(text)
