"""Tests for value workloads, input datasets, and trace containers."""

import pytest

from repro.workloads.inputs import VARIANTS, input_words, rng_for
from repro.workloads.trace import BranchRecord, BranchTrace, LoadRecord, LoadTrace
from repro.workloads.values import VALUE_BENCHMARKS, load_trace


class TestInputs:
    def test_deterministic(self):
        assert input_words("compress", "train", 500) == input_words(
            "compress", "train", 500
        )

    def test_variants_differ(self):
        assert input_words("gsm", "train", 500) != input_words("gsm", "eval", 500)

    def test_benchmarks_differ(self):
        assert input_words("gsm", "train", 500) != input_words("g721", "train", 500)

    def test_requested_length(self):
        for benchmark in ("compress", "gs", "ijpeg", "vortex", "gsm", "g721"):
            assert len(input_words(benchmark, "train", 321)) == 321

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            rng_for("quake", "train")

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            rng_for("gsm", "ref")

    def test_values_non_negative(self):
        for benchmark in ("compress", "gs", "ijpeg", "vortex"):
            assert all(w >= 0 for w in input_words(benchmark, "eval", 200))

    def test_vortex_status_bias(self):
        words = input_words("vortex", "train", 5_000)
        valid = sum(w & 1 for w in words)
        assert valid / len(words) > 0.9


class TestLoadTraces:
    @pytest.mark.parametrize("bench", VALUE_BENCHMARKS)
    def test_length_and_determinism(self, bench):
        a = load_trace(bench, "train", 2_000)
        b = load_trace(bench, "train", 2_000)
        assert len(a) == 2_000
        assert a.pcs == b.pcs and a.values == b.values

    @pytest.mark.parametrize("bench", VALUE_BENCHMARKS)
    def test_many_static_loads(self, bench):
        trace = load_trace(bench, "train", 5_000)
        assert len(trace.static_loads()) > 20

    def test_variants_differ(self):
        assert (
            load_trace("gcc", "train", 1_000).values
            != load_trace("gcc", "eval", 1_000).values
        )

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_trace("quake")


class TestBranchTrace:
    def test_append_and_iter(self):
        trace = BranchTrace()
        trace.append(0x100, True)
        trace.append(0x104, False)
        assert list(trace) == [(0x100, True), (0x104, False)]
        assert len(trace) == 2

    def test_records(self):
        trace = BranchTrace(pcs=[1], outcomes=[1])
        assert list(trace.records()) == [BranchRecord(pc=1, taken=True)]

    def test_static_branches_order_of_first_appearance(self):
        trace = BranchTrace(pcs=[3, 1, 3, 2], outcomes=[0, 1, 0, 1])
        assert trace.static_branches() == [3, 1, 2]

    def test_per_branch_counts(self):
        trace = BranchTrace(pcs=[1, 1, 2], outcomes=[1, 0, 1])
        assert trace.per_branch_counts() == {1: (2, 1), 2: (1, 1)}

    def test_outcome_bits(self):
        trace = BranchTrace(pcs=[1, 2], outcomes=[0, 1])
        assert trace.outcome_bits() == [0, 1]


class TestLoadTraceContainer:
    def test_append_and_iter(self):
        trace = LoadTrace()
        trace.append(0x4000, 7)
        assert list(trace) == [(0x4000, 7)]
        assert list(trace.records()) == [LoadRecord(pc=0x4000, value=7)]

    def test_static_loads(self):
        trace = LoadTrace(pcs=[5, 6, 5], values=[0, 0, 0])
        assert trace.static_loads() == [5, 6]
