"""The restricted CPython-bytecode interpreter: interpreted results must
equal native execution, traces must be deterministic and PC-bounded, and
anything outside the supported opcode set must fail loudly."""

from __future__ import annotations

import random

import pytest

from repro.reliability.errors import TraceError
from repro.workloads.pybc import (
    PROGRAMS,
    program_pc_range,
    program_trace,
    python_tag,
    run_function,
)
from repro.workloads.trace import BranchTrace

SEEDS = range(12)


@pytest.mark.parametrize("program", sorted(PROGRAMS))
class TestInterpreterFidelity:
    def test_interpreted_equals_native(self, program):
        func, make_inputs = PROGRAMS[program]
        for seed in SEEDS:
            args = make_inputs(random.Random(seed))
            native = func(*make_inputs(random.Random(seed)))
            assert run_function(func, args) == native

    def test_tracing_does_not_change_the_result(self, program):
        func, make_inputs = PROGRAMS[program]
        args = make_inputs(random.Random(3))
        bare = run_function(func, make_inputs(random.Random(3)))
        trace = BranchTrace()
        assert run_function(func, args, trace=trace) == bare
        assert len(trace) > 0


@pytest.mark.parametrize("program", sorted(PROGRAMS))
class TestProgramTraces:
    def test_deterministic_and_exact_length(self, program):
        first = program_trace(program, 600, 5)
        second = program_trace(program, 600, 5)
        assert len(first) == 600
        assert first.pcs == second.pcs
        assert first.outcomes == second.outcomes

    def test_seed_changes_the_stream(self, program):
        base = program_trace(program, 600, 5)
        other = program_trace(program, 600, 6)
        assert base.outcomes != other.outcomes

    def test_pcs_are_bytecode_offsets_in_range(self, program):
        low, high = program_pc_range(program)
        trace = program_trace(program, 600, 5)
        assert all(low <= pc <= high for pc in trace.pcs)

    def test_budget_truncates_mid_round(self, program):
        # 600 is never an exact multiple of a round's event count, so
        # this exercises the max_events abort path.
        long = program_trace(program, 600, 5)
        short = program_trace(program, 97, 5)
        assert len(short) == 97
        assert short.outcomes == long.outcomes[:97]


class TestErrorTaxonomy:
    def test_unknown_program_rejected(self):
        with pytest.raises(TraceError):
            program_trace("bogus", 100, 0)
        with pytest.raises(TraceError):
            program_pc_range("bogus")

    def test_unsupported_opcode_is_named(self):
        def raises(x):
            raise ValueError(x)

        with pytest.raises(TraceError, match="RAISE_VARARGS"):
            run_function(raises, (1,))


class TestPythonTag:
    def test_tag_is_major_dot_minor(self):
        import sys

        major, minor = python_tag().split(".")
        assert (int(major), int(minor)) == sys.version_info[:2]
