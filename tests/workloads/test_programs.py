"""Tests for the benchmark programs and trace generation."""

import pytest

from repro.workloads.programs import (
    BRANCH_BENCHMARKS,
    branch_label_map,
    branch_trace,
    build_program,
)
from repro.workloads.vm import CODE_BASE, MiniVM


class TestAllBenchmarks:
    @pytest.mark.parametrize("bench", BRANCH_BENCHMARKS)
    def test_trace_has_requested_length(self, bench):
        trace = branch_trace(bench, "train", 3_000)
        assert len(trace) == 3_000

    @pytest.mark.parametrize("bench", BRANCH_BENCHMARKS)
    def test_trace_is_deterministic(self, bench):
        a = branch_trace(bench, "train", 2_000)
        b = branch_trace(bench, "train", 2_000)
        assert a.pcs == b.pcs
        assert a.outcomes == b.outcomes

    @pytest.mark.parametrize("bench", BRANCH_BENCHMARKS)
    def test_variants_differ_but_share_statics(self, bench):
        train = branch_trace(bench, "train", 3_000)
        evaluation = branch_trace(bench, "eval", 3_000)
        assert train.outcomes != evaluation.outcomes
        assert set(train.static_branches()) == set(evaluation.static_branches())

    @pytest.mark.parametrize("bench", BRANCH_BENCHMARKS)
    def test_multiple_static_branches(self, bench):
        trace = branch_trace(bench, "train", 3_000)
        assert len(trace.static_branches()) >= 5

    @pytest.mark.parametrize("bench", BRANCH_BENCHMARKS)
    def test_outcomes_are_mixed(self, bench):
        trace = branch_trace(bench, "train", 3_000)
        taken = sum(trace.outcomes)
        assert 0.2 < taken / len(trace) < 0.95

    @pytest.mark.parametrize("bench", BRANCH_BENCHMARKS)
    def test_labels_cover_all_static_branches(self, bench):
        trace = branch_trace(bench, "train", 3_000)
        labels = branch_label_map(bench)
        for pc in trace.static_branches():
            assert pc in labels
            assert labels[pc].startswith(bench + ":")


class TestBuildProgram:
    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build_program("doom", "train", 100)

    def test_memory_layout(self):
        program, memory = build_program("ijpeg", "train", 50)
        assert memory[0] == len(memory) - 1

    def test_program_halts_on_input_exhaustion(self):
        program, memory = build_program("gs", "train", 200)
        result = MiniVM(program, memory).run()
        # Ran to completion without a cap and without faulting.
        assert result.steps > 0

    def test_pcs_are_text_addresses(self):
        trace = branch_trace("vortex", "train", 500)
        for pc in trace.static_branches():
            assert pc >= CODE_BASE
            assert pc % 4 == 0


class TestBehaviouralFingerprints:
    def test_ijpeg_has_distance_two_correlation(self):
        """The D branch repeats the C test two branches later: P(D == C)
        must be essentially 1 -- the Figure 6 pattern."""
        trace = branch_trace("ijpeg", "train", 10_000)
        labels = {v: k for k, v in branch_label_map("ijpeg").items()}
        c_pc = labels["ijpeg:skip_c0"]
        d_pc = labels["ijpeg:skip_d0"]
        agree = total = 0
        last_c = None
        for pc, taken in trace:
            if pc == c_pc:
                last_c = taken
            elif pc == d_pc and last_c is not None:
                total += 1
                agree += last_c == taken
        assert total > 100
        assert agree / total > 0.99

    def test_vortex_k3_repeats_k1(self):
        trace = branch_trace("vortex", "train", 10_000)
        labels = {v: k for k, v in branch_label_map("vortex").items()}
        k1 = labels["vortex:skip_k1_0"]
        k3 = labels["vortex:skip_k3_0"]
        last_k1 = None
        agree = total = 0
        for pc, taken in trace:
            if pc == k1:
                last_k1 = taken
            elif pc == k3 and last_k1 is not None:
                total += 1
                agree += last_k1 == taken
        assert total > 50
        assert agree / total > 0.99

    def test_gsm_sign_follows_lookahead(self):
        """S(t) must equal T(t-1): the sign test re-examines the sample the
        lookahead test already saw."""
        trace = branch_trace("gsm", "train", 10_000)
        labels = {v: k for k, v in branch_label_map("gsm").items()}
        s_pcs = {labels["gsm:skip_s0"], labels["gsm:skip_s1"]}
        t_pcs = {labels["gsm:skip_t0"], labels["gsm:skip_t1"]}
        last_t = None
        agree = total = 0
        for pc, taken in trace:
            if pc in t_pcs:
                last_t = taken
            elif pc in s_pcs and last_t is not None:
                total += 1
                agree += last_t == taken
        assert total > 100
        assert agree / total > 0.99

    def test_compress_inner_loop_dominates(self):
        trace = branch_trace("compress", "train", 10_000)
        labels = branch_label_map("compress")
        inner = sum(
            1 for pc in trace.pcs if labels[pc].startswith("compress:inner")
        )
        assert inner / len(trace) > 0.4
