"""Tests for MiniVM: assembler, interpreter, tracing, faults."""

import pytest

from repro.workloads.vm import (
    CODE_BASE,
    Assembler,
    MiniVM,
    Program,
    VMError,
)


def run(build, memory=(), **kwargs):
    asm = Assembler()
    build(asm)
    vm = MiniVM(asm.assemble(), list(memory), **kwargs)
    return vm.run()


class TestALU:
    def test_li_and_add(self):
        def build(asm):
            asm.li(1, 4)
            asm.li(2, 5)
            asm.add(3, 1, 2)
            asm.halt()

        assert run(build).registers[3] == 9

    def test_sub_mul(self):
        def build(asm):
            asm.li(1, 7)
            asm.li(2, 3)
            asm.sub(3, 1, 2)
            asm.mul(4, 1, 2)
            asm.halt()

        result = run(build)
        assert result.registers[3] == 4
        assert result.registers[4] == 21

    def test_div_mod(self):
        def build(asm):
            asm.li(1, 17)
            asm.li(2, 5)
            asm.div(3, 1, 2)
            asm.mod(4, 1, 2)
            asm.halt()

        result = run(build)
        assert result.registers[3] == 3
        assert result.registers[4] == 2

    def test_bitwise(self):
        def build(asm):
            asm.li(1, 0b1100)
            asm.li(2, 0b1010)
            asm.and_(3, 1, 2)
            asm.or_(4, 1, 2)
            asm.xor(5, 1, 2)
            asm.halt()

        result = run(build)
        assert result.registers[3] == 0b1000
        assert result.registers[4] == 0b1110
        assert result.registers[5] == 0b0110

    def test_shifts(self):
        def build(asm):
            asm.li(1, 3)
            asm.li(2, 2)
            asm.shl(3, 1, 2)
            asm.shr(4, 3, 2)
            asm.shli(5, 1, 4)
            asm.shri(6, 5, 3)
            asm.halt()

        result = run(build)
        assert result.registers[3] == 12
        assert result.registers[4] == 3
        assert result.registers[5] == 48
        assert result.registers[6] == 6

    def test_immediates(self):
        def build(asm):
            asm.li(1, 10)
            asm.addi(2, 1, -4)
            asm.muli(3, 1, 7)
            asm.modi(4, 1, 3)
            asm.andi(5, 1, 6)
            asm.halt()

        result = run(build)
        assert result.registers[2] == 6
        assert result.registers[3] == 70
        assert result.registers[4] == 1
        assert result.registers[5] == 2

    def test_mov(self):
        def build(asm):
            asm.li(1, 42)
            asm.mov(2, 1)
            asm.halt()

        assert run(build).registers[2] == 42

    def test_div_by_zero_faults(self):
        def build(asm):
            asm.li(1, 1)
            asm.li(2, 0)
            asm.div(3, 1, 2)
            asm.halt()

        with pytest.raises(VMError):
            run(build)


class TestMemory:
    def test_load_store(self):
        def build(asm):
            asm.li(1, 0)
            asm.ld(2, 1, 0)       # r2 = mem[0] = 7
            asm.addi(2, 2, 1)
            asm.st(2, 1, 1)       # mem[1] = 8
            asm.halt()

        result = run(build, memory=[7, 0])
        assert result.memory == [7, 8]

    def test_load_out_of_bounds(self):
        def build(asm):
            asm.li(1, 5)
            asm.ld(2, 1, 0)
            asm.halt()

        with pytest.raises(VMError):
            run(build, memory=[0])

    def test_store_out_of_bounds(self):
        def build(asm):
            asm.li(1, 0)
            asm.st(1, 1, 3)
            asm.halt()

        with pytest.raises(VMError):
            run(build, memory=[0])

    def test_load_trace_recorded(self):
        def build(asm):
            asm.li(1, 0)
            asm.ld(2, 1, 0)
            asm.ld(3, 1, 1)
            asm.halt()

        result = run(build, memory=[5, 9], record_loads=True)
        assert result.load_trace is not None
        assert result.load_trace.values == [5, 9]
        assert result.load_trace.pcs == [CODE_BASE + 4, CODE_BASE + 8]

    def test_load_trace_absent_by_default(self):
        def build(asm):
            asm.halt()

        assert run(build).load_trace is None


class TestControlFlow:
    def test_branch_taken_and_recorded(self):
        def build(asm):
            asm.li(1, 1)
            asm.beqi(1, 1, "skip")
            asm.li(2, 99)
            asm.label("skip")
            asm.halt()

        result = run(build)
        assert result.registers[2] == 0
        assert list(result.branch_trace) == [(CODE_BASE + 4, True)]

    def test_branch_not_taken_recorded(self):
        def build(asm):
            asm.li(1, 1)
            asm.beqi(1, 2, "skip")
            asm.li(2, 99)
            asm.label("skip")
            asm.halt()

        result = run(build)
        assert result.registers[2] == 99
        assert list(result.branch_trace) == [(CODE_BASE + 4, False)]

    def test_register_branch_variants(self):
        def build(asm):
            asm.li(1, 3)
            asm.li(2, 5)
            asm.blt(1, 2, "a")
            asm.halt()
            asm.label("a")
            asm.bge(2, 1, "b")
            asm.halt()
            asm.label("b")
            asm.bne(1, 2, "c")
            asm.halt()
            asm.label("c")
            asm.beq(1, 1, "done")
            asm.halt()
            asm.label("done")
            asm.li(3, 1)
            asm.halt()

        result = run(build)
        assert result.registers[3] == 1
        assert [taken for _pc, taken in result.branch_trace] == [True] * 4

    def test_loop_counts(self):
        def build(asm):
            asm.li(1, 0)
            asm.label("loop")
            asm.addi(1, 1, 1)
            asm.blti(1, 5, "loop")
            asm.halt()

        result = run(build)
        assert result.registers[1] == 5
        outcomes = [taken for _pc, taken in result.branch_trace]
        assert outcomes == [True] * 4 + [False]

    def test_jmp(self):
        def build(asm):
            asm.jmp("end")
            asm.li(1, 9)
            asm.label("end")
            asm.halt()

        assert run(build).registers[1] == 0

    def test_call_ret(self):
        def build(asm):
            asm.li(1, 1)
            asm.call("sub")
            asm.addi(1, 1, 100)
            asm.halt()
            asm.label("sub")
            asm.addi(1, 1, 10)
            asm.ret()

        assert run(build).registers[1] == 111

    def test_nested_calls(self):
        def build(asm):
            asm.call("a")
            asm.halt()
            asm.label("a")
            asm.call("b")
            asm.addi(1, 1, 1)
            asm.ret()
            asm.label("b")
            asm.addi(1, 1, 10)
            asm.ret()

        assert run(build).registers[1] == 11

    def test_ret_without_call_faults(self):
        def build(asm):
            asm.ret()

        with pytest.raises(VMError):
            run(build)

    def test_bgei_blti(self):
        def build(asm):
            asm.li(1, 4)
            asm.bgei(1, 4, "yes")
            asm.halt()
            asm.label("yes")
            asm.blti(1, 10, "yes2")
            asm.halt()
            asm.label("yes2")
            asm.li(2, 7)
            asm.halt()

        assert run(build).registers[2] == 7


class TestLimits:
    def test_max_steps(self):
        def build(asm):
            asm.label("spin")
            asm.jmp("spin")

        with pytest.raises(VMError):
            run(build, max_steps=1000)

    def test_max_branches_stops_cleanly(self):
        def build(asm):
            asm.li(1, 0)
            asm.label("loop")
            asm.addi(1, 1, 1)
            asm.blti(1, 1000000, "loop")
            asm.halt()

        result = run(build, max_branches=10)
        assert len(result.branch_trace) == 10

    def test_pc_out_of_range_faults(self):
        # A program with no halt falls off the end.
        def build(asm):
            asm.li(1, 1)

        with pytest.raises(VMError):
            run(build)


class TestAssembler:
    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(VMError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(VMError):
            asm.assemble()

    def test_register_range_checked(self):
        asm = Assembler()
        with pytest.raises(VMError):
            asm.li(16, 0)

    def test_modi_zero_rejected(self):
        asm = Assembler()
        with pytest.raises(VMError):
            asm.modi(1, 1, 0)

    def test_pc_of_label(self):
        asm = Assembler()
        asm.li(1, 0)
        asm.label("here")
        asm.halt()
        program = asm.assemble()
        assert program.pc_of_label("here") == CODE_BASE + 4

    def test_disassemble_mentions_labels(self):
        asm = Assembler()
        asm.label("entry")
        asm.halt()
        text = asm.assemble().disassemble()
        assert "entry:" in text
        assert "halt" in text

    def test_determinism(self):
        def build(asm):
            asm.li(1, 0)
            asm.label("loop")
            asm.addi(1, 1, 1)
            asm.modi(2, 1, 3)
            asm.beqi(2, 0, "skip")
            asm.addi(3, 3, 1)
            asm.label("skip")
            asm.blti(1, 50, "loop")
            asm.halt()

        first = run(build)
        second = run(build)
        assert first.registers == second.registers
        assert list(first.branch_trace) == list(second.branch_trace)
