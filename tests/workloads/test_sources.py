"""The TraceSource registry invariant suite.

Every registered source (via its canonical example specs) must honor the
same contract: identical bytes for identical ``(spec, seed)``, PCs
inside the declared range, the declared length exactly, and structured
:class:`TraceError` failures (never tracebacks) for every way a spec can
be wrong.  New sources added to the registry get this suite for free by
appearing in :func:`example_specs`.
"""

from __future__ import annotations

import pytest

from repro.reliability.errors import TraceError
from repro.workloads.sources import (
    SourceSpec,
    create_source,
    example_specs,
    list_sources,
    parse_source_spec,
    register_source,
    source_trace,
)

LENGTH = 512

#: Sources whose bytes genuinely depend on the seed (minivm inputs are
#: fixed per variant; periodic KMP texts have no randomness).
SEEDED_PREFIXES = ("pybytecode:", "kmp:pattern=ab", "kmp:pattern=aab")


@pytest.fixture(scope="module")
def generated():
    """One (source, trace) per example spec, generated once."""
    out = {}
    for spec in example_specs():
        source = create_source(spec)
        out[spec] = (source, source.generate(LENGTH, 3))
    return out


class TestEverySourceHonorsTheContract:
    @pytest.mark.parametrize("spec", example_specs())
    def test_example_specs_are_canonical(self, spec):
        assert create_source(spec).spec_string() == spec

    @pytest.mark.parametrize("spec", example_specs())
    def test_same_spec_same_seed_same_bytes(self, spec, generated):
        source, trace = generated[spec]
        again = create_source(spec).generate(LENGTH, 3)
        assert trace.pcs == again.pcs
        assert trace.outcomes == again.outcomes

    @pytest.mark.parametrize("spec", example_specs())
    def test_declared_length_honored(self, spec, generated):
        _source, trace = generated[spec]
        assert len(trace) == LENGTH

    @pytest.mark.parametrize("spec", example_specs())
    def test_pcs_inside_declared_range(self, spec, generated):
        source, trace = generated[spec]
        low, high = source.pc_range()
        assert low <= high
        assert all(low <= pc <= high for pc in trace.pcs)

    @pytest.mark.parametrize("spec", example_specs())
    def test_outcomes_are_bits(self, spec, generated):
        _source, trace = generated[spec]
        assert set(trace.outcomes) <= {0, 1}

    @pytest.mark.parametrize(
        "spec",
        [s for s in example_specs() if s.startswith(SEEDED_PREFIXES)],
    )
    def test_seeded_sources_respond_to_the_seed(self, spec, generated):
        source, trace = generated[spec]
        other = source.generate(LENGTH, 4)
        assert trace.outcomes != other.outcomes

    @pytest.mark.parametrize("spec", example_specs())
    def test_spec_round_trips_through_the_parser(self, spec):
        parsed = parse_source_spec(spec)
        assert str(parsed) == spec
        assert parse_source_spec(parsed) is parsed


class TestRegistry:
    def test_three_sources_ship_in_tree(self):
        assert list_sources() == ["kmp", "minivm", "pybytecode"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(TraceError) as exc:
            register_source("kmp", lambda spec: None)
        assert "already registered" in str(exc.value)

    def test_unknown_source_names_the_known_ones(self):
        with pytest.raises(TraceError) as exc:
            create_source("bogus")
        assert "unknown source" in str(exc.value)
        assert exc.value.context["known"] == list_sources()


class TestSpecParsing:
    @pytest.mark.parametrize(
        "raw",
        ["", "   ", ":x=1", "kmp:pattern", "kmp:=ab", "kmp:pattern=ab,pattern=b"],
    )
    def test_malformed_specs_raise_structured_errors(self, raw):
        with pytest.raises(TraceError) as exc:
            parse_source_spec(raw)
        assert exc.value.stage == "workloads.sources"

    def test_parameter_order_is_canonicalized(self):
        a = parse_source_spec("kmp:text=iid,pattern=ab")
        b = parse_source_spec("kmp:pattern=ab,text=iid")
        assert a == b

    def test_defaults_are_materialized(self):
        assert (
            create_source("kmp:pattern=ab").spec_string()
            == "kmp:pattern=ab,q=1/2,text=iid,variant=mp"
        )
        assert (
            create_source("minivm:benchmark=gsm").spec_string()
            == "minivm:benchmark=gsm,variant=eval"
        )


class TestSourceValidation:
    @pytest.mark.parametrize(
        "spec",
        [
            "minivm",  # missing required benchmark
            "minivm:benchmark=nope",
            "minivm:benchmark=gsm,variant=debug",
            "minivm:benchmark=gsm,color=red",  # unknown parameter
            "pybytecode",
            "pybytecode:program=nope",
            "kmp",
            "kmp:pattern=xyz",
            "kmp:pattern=ab,q=2",  # q outside (0,1)
            "kmp:pattern=ab,text=gaussian",
            "kmp:pattern=ab,variant=boyer",
            "kmp:pattern=ab,word=ab",  # word on an iid text
            "kmp:pattern=ab,text=periodic,q=1/2",  # q on a periodic text
        ],
    )
    def test_invalid_configurations_raise(self, spec):
        with pytest.raises(TraceError):
            create_source(spec)


class TestTrainingCounterparts:
    def test_minivm_swaps_the_input_variant(self):
        source = create_source("minivm:benchmark=gsm,variant=eval")
        other = source.training_counterpart()
        assert other.spec_string() == "minivm:benchmark=gsm,variant=train"

    def test_default_counterpart_is_the_same_spec(self):
        source = create_source("kmp:pattern=ab")
        assert source.training_counterpart().spec_string() == source.spec_string()


class TestCachedGeneration:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_cache_round_trip_is_byte_identical(self):
        spec = "kmp:pattern=ab,q=1/2,text=iid,variant=mp"
        first = source_trace(spec, 256, 9)  # computes, writes the cache
        second = source_trace(spec, 256, 9)  # must come back from disk
        assert first.pcs == second.pcs
        assert first.outcomes == second.outcomes

    def test_equivalent_specs_share_a_cache_identity(self):
        a = source_trace("kmp:pattern=ab", 128, 1)
        b = source_trace("kmp:text=iid,pattern=ab", 128, 1)
        assert a.outcomes == b.outcomes

    @pytest.mark.parametrize("length", [0, -5])
    def test_non_positive_length_rejected(self, length):
        with pytest.raises(TraceError):
            source_trace("kmp:pattern=ab", length, 0)

    def test_env_knobs_supply_the_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOURCE_LENGTH", "77")
        monkeypatch.setenv("REPRO_SOURCE_SEED", "4")
        trace = source_trace("pybytecode:program=sort")
        assert len(trace) == 77
        explicit = source_trace("pybytecode:program=sort", 77, 4)
        assert trace.outcomes == explicit.outcomes


class TestSourceSpecValue:
    def test_get_falls_back_to_default(self):
        spec = SourceSpec("kmp", (("pattern", "ab"),))
        assert spec.get("pattern") == "ab"
        assert spec.get("missing", "x") == "x"
        assert str(SourceSpec("minivm")) == "minivm"
