"""The KMP analytic workload: failure functions, the streaming event
generator vs the naive reference matcher, and the exact closed forms."""

from __future__ import annotations

from fractions import Fraction
from itertools import islice

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reliability.errors import TraceError
from repro.workloads.kmp import (
    MAX_PATTERN_LENGTH,
    analytic_chain,
    closed_form_rate,
    comparison_events,
    failure_function,
    iid_chars,
    mp_borders,
    naive_comparison_events,
    parse_q,
    periodic_chars,
    periodic_cycle,
)

patterns = st.text(alphabet="ab", min_size=1, max_size=6)
texts = st.text(alphabet="ab", min_size=0, max_size=200)
variants = st.sampled_from(["mp", "kmp"])


class TestFailureFunctions:
    def test_borders_of_textbook_pattern(self):
        # borders of "" , a, ab, aba, abab, ababa
        assert mp_borders("ababa") == [0, 0, 0, 1, 2, 3]

    def test_mp_failure_has_sentinel(self):
        fail = failure_function("ab", "mp")
        assert fail[0] == -1

    def test_kmp_strong_rule_differs_where_chars_repeat(self):
        # On "aaaa" the strong rule skips every interior fallback (a
        # mismatch at j can only mismatch again at any border).
        assert failure_function("aaaa", "kmp") != failure_function("aaaa", "mp")

    def test_bad_variant_rejected(self):
        with pytest.raises(TraceError):
            failure_function("ab", "bogus")

    def test_bad_pattern_rejected(self):
        for bad in ("", "abc", "a" * (MAX_PATTERN_LENGTH + 1)):
            with pytest.raises(TraceError):
                list(comparison_events(bad, iter("ab")))


class TestGeneratorVsNaive:
    @given(pattern=patterns, text=texts, variant=variants)
    def test_streaming_matches_reference(self, pattern, text, variant):
        streamed = list(comparison_events(pattern, iter(text), variant))
        assert streamed == naive_comparison_events(pattern, text, variant)

    @given(pattern=patterns, text=texts)
    def test_events_are_pattern_positions(self, pattern, text):
        for j, outcome in comparison_events(pattern, iter(text), "mp"):
            assert 0 <= j < len(pattern)
            assert outcome in (0, 1)

    def test_full_match_wraps_to_border(self):
        # "aa" on "aaaa": after the first match at index 1 the matcher
        # restarts from border 1, so every later char is one comparison.
        events = list(comparison_events("aa", iter("aaaa"), "mp"))
        assert events == [(0, 1), (1, 1), (1, 1), (1, 1)]


class TestTextFamilies:
    def test_iid_is_seed_deterministic(self):
        q = Fraction(3, 10)
        first = list(islice(iid_chars(q, 7), 64))
        second = list(islice(iid_chars(q, 7), 64))
        assert first == second
        assert first != list(islice(iid_chars(q, 8), 64))

    def test_periodic_cycles(self):
        assert list(islice(periodic_chars("ab"), 6)) == list("ababab")

    def test_parse_q_accepts_fractions_and_decimals(self):
        assert parse_q("3/10") == Fraction(3, 10)
        assert parse_q("0.25") == Fraction(1, 4)

    @pytest.mark.parametrize("bad", ["0", "1", "3/2", "-1/2", "x", ""])
    def test_parse_q_rejects_out_of_range(self, bad):
        with pytest.raises(TraceError):
            parse_q(bad)


class TestAnalyticChain:
    def test_single_char_pattern_is_bernoulli(self):
        chain = analytic_chain("b", Fraction(3, 10), "mp")
        assert chain.num_states == 1
        assert chain.optimal_rate() == Fraction(3, 10)

    def test_worked_example_ab_fair_coin(self):
        chain = analytic_chain("ab", Fraction(1, 2), "mp")
        assert chain.num_states == 3
        assert chain.optimal_rate() == Fraction(2, 5)

    @given(
        pattern=patterns,
        variant=variants,
        q=st.sampled_from([Fraction(1, 5), Fraction(1, 2), Fraction(7, 10)]),
    )
    def test_stationary_distribution_is_a_distribution(
        self, pattern, variant, q
    ):
        chain = analytic_chain(pattern, q, variant)
        pi = chain.stationary()
        assert sum(pi.values()) == 1
        assert all(p >= 0 for p in pi.values())

    @given(
        pattern=patterns,
        variant=variants,
        q=st.sampled_from([Fraction(1, 5), Fraction(1, 2), Fraction(7, 10)]),
    )
    def test_optimal_rate_is_a_valid_rate(self, pattern, variant, q):
        rate = analytic_chain(pattern, q, variant).optimal_rate()
        assert 0 <= rate <= Fraction(1, 2)


class TestClosedForm:
    def test_pinned_iid_values(self):
        assert closed_form_rate("b", "iid", q=Fraction(3, 10)) == (
            Fraction(3, 10),
            1,
        )
        assert closed_form_rate("ab", "iid", q=Fraction(1, 2)) == (
            Fraction(2, 5),
            3,
        )

    def test_periodic_rate_is_exactly_zero(self):
        rate, k = closed_form_rate("b", "periodic", word="ab")
        assert rate == 0
        assert k == 2

    @given(
        pattern=patterns,
        word=st.text(alphabet="ab", min_size=1, max_size=4),
        variant=variants,
    )
    def test_periodic_cycle_reproduces_the_stream(self, pattern, word, variant):
        prefix, cycle = periodic_cycle(pattern, word, variant)
        assert cycle, "a periodic text must yield a periodic outcome stream"
        want = list(
            islice(
                (
                    o
                    for _, o in comparison_events(
                        pattern, periodic_chars(word), variant
                    )
                ),
                len(prefix) + 3 * len(cycle),
            )
        )
        assert want == list(prefix) + list(cycle) * 3

    def test_bad_text_family_rejected(self):
        with pytest.raises(TraceError):
            closed_form_rate("ab", "gaussian")
