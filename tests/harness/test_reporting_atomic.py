"""Crash-safe report writes: ``write_report`` must land either the old
complete file or the new complete file -- never a torn one, never a
leftover temp file."""

from __future__ import annotations

import os

import pytest

from repro.harness import reporting


@pytest.fixture(autouse=True)
def results_in_tmp(monkeypatch, tmp_path):
    monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path / "results"))
    return tmp_path / "results"


def test_write_report_content_and_no_tmp_leftovers(results_in_tmp):
    path = reporting.write_report("fig.txt", "hello")
    assert open(path).read() == "hello\n"  # newline normalized
    assert not list(results_in_tmp.glob("*.tmp"))


def test_overwrite_replaces_cleanly(results_in_tmp):
    reporting.write_report("fig.txt", "old\n")
    path = reporting.write_report("fig.txt", "new\n")
    assert open(path).read() == "new\n"
    assert not list(results_in_tmp.glob("*.tmp"))


def test_failed_replace_preserves_previous_report(results_in_tmp, monkeypatch):
    path = reporting.write_report("fig.txt", "original\n")
    real_replace = os.replace

    def broken_replace(src, dst, **kwargs):
        if str(dst) == str(path):
            raise OSError(28, "No space left on device")
        return real_replace(src, dst, **kwargs)

    monkeypatch.setattr(os, "replace", broken_replace)
    with pytest.raises(OSError):
        reporting.write_report("fig.txt", "half-written garbage\n")
    monkeypatch.setattr(os, "replace", real_replace)
    # The crash mid-write lost nothing: old content intact, no temp junk.
    assert open(path).read() == "original\n"
    assert not list(results_in_tmp.glob("*.tmp"))
