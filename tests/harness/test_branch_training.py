"""Tests for the per-branch FSM training flow (Section 7.3)."""

import pytest

from repro.harness.branch_training import (
    CUSTOM_HISTORY_LENGTH,
    collect_branch_models,
    design_branch_predictors,
    fsm_correct_counts,
    machines_of,
    rank_branches_by_misses,
    rank_by_improvement,
)
from repro.workloads.trace import BranchTrace


def synthetic_trace():
    """Branch B copies branch A's outcome (alternating A); branch C is
    always taken."""
    trace = BranchTrace()
    for i in range(400):
        a = i % 2 == 0
        trace.append(0x100, a)
        trace.append(0x104, a)  # perfectly correlated, distance 1
        trace.append(0x108, True)
    return trace


class TestCollectModels:
    def test_models_keyed_by_pc(self):
        models = collect_branch_models(synthetic_trace(), order=4)
        assert set(models.models) == {0x100, 0x104, 0x108}

    def test_default_order_is_nine(self):
        models = collect_branch_models(synthetic_trace())
        assert models.order == CUSTOM_HISTORY_LENGTH == 9

    def test_global_history_feeds_each_branch(self):
        models = collect_branch_models(synthetic_trace(), order=1)
        model = models.models[0x104]
        # B's outcome equals the previous (A's) outcome: P[1|1] = 1, P[1|0] = 0.
        assert model.probability_of_one(1) == pytest.approx(1.0)
        assert model.probability_of_one(0) == pytest.approx(0.0)

    def test_counts_match_executions(self):
        models = collect_branch_models(synthetic_trace(), order=2)
        assert models.models[0x108].total_observations == 400

    def test_model_for_creates_on_demand(self):
        models = collect_branch_models(synthetic_trace(), order=2)
        fresh = models.model_for(0xDEAD)
        assert fresh.total_observations == 0


class TestRanking:
    def test_alternating_branch_ranks_first(self):
        ranked = rank_branches_by_misses(synthetic_trace())
        assert ranked[0][0] in (0x100, 0x104)
        assert ranked[0][1] > ranked[-1][1]

    def test_always_taken_branch_few_misses(self):
        ranked = dict(rank_branches_by_misses(synthetic_trace()))
        assert ranked[0x108] <= 2  # only the cold allocation


class TestDesign:
    def test_designs_for_requested_branches(self):
        trace = synthetic_trace()
        models = collect_branch_models(trace, order=3)
        designs = design_branch_predictors(models, [0x104])
        assert set(designs) == {0x104}
        machine = designs[0x104].machine
        # B copies the previous outcome: output after history ...1 is 1.
        assert machine.output_after("001") == 1
        assert machine.output_after("110") == 0

    def test_machines_of(self):
        trace = synthetic_trace()
        models = collect_branch_models(trace, order=3)
        designs = design_branch_predictors(models, [0x104, 0x108])
        machines = machines_of(designs)
        assert set(machines) == {0x104, 0x108}

    def test_unknown_branch_skipped(self):
        models = collect_branch_models(synthetic_trace(), order=3)
        assert design_branch_predictors(models, [0xBEEF]) == {}


class TestReplay:
    def test_fsm_correct_counts_perfect_branch(self):
        trace = synthetic_trace()
        models = collect_branch_models(trace, order=3)
        designs = design_branch_predictors(models, [0x104])
        counts = fsm_correct_counts(trace, machines_of(designs))
        execs, correct = counts[0x104]
        assert execs == 400
        assert correct >= execs - 3  # at most the warm-up misses

    def test_rank_by_improvement_filters_and_orders(self):
        trace = synthetic_trace()
        models = collect_branch_models(trace, order=3)
        baseline = dict(rank_branches_by_misses(trace))
        designs = design_branch_predictors(models, [0x104, 0x108])
        ordered = rank_by_improvement(trace, designs, baseline)
        # 0x104 is a big win and must come first; 0x108's gain is at most
        # the single cold-start miss.
        assert ordered[0] == 0x104

    def test_rank_by_improvement_drops_harmful_fsm(self):
        """A branch whose designed FSM performs worse than the baseline
        must not be deployed at all."""
        import random

        rng = random.Random(2)
        trace = BranchTrace()
        for _ in range(300):
            trace.append(0x100, rng.random() < 0.9)  # biased: baseline good
        models = collect_branch_models(trace, order=2)
        designs = design_branch_predictors(models, [0x100])
        # Corrupt the design: force an always-wrong machine.
        from repro.automata.moore import MooreMachine

        bad = MooreMachine(
            alphabet=("0", "1"), start=0, outputs=(0,), transitions=((0, 0),)
        )
        designs[0x100].machine = bad
        baseline = dict(rank_branches_by_misses(trace))
        assert rank_by_improvement(trace, designs, baseline) == []
