"""Unit tests for Figure 2 driver internals (cross-training logic)."""

import pytest

from repro.harness.fig2 import (
    ConfidencePoint,
    FigureTwoResult,
    _correctness_traces,
    _cross_trained_model,
)
from repro.workloads.values import VALUE_BENCHMARKS


@pytest.fixture(scope="module")
def small_traces():
    return _correctness_traces(VALUE_BENCHMARKS, "train", 3_000)


class TestCrossTraining:
    def test_held_out_benchmark_excluded(self, small_traces):
        model = _cross_trained_model(small_traces, "gcc", order=4)
        others = _cross_trained_model(small_traces, "perl", order=4)
        # Both models trained; different exclusions give different counts.
        assert model.total_observations > 0
        assert model.total_observations != others.total_observations or (
            len(small_traces["gcc"][1]) == len(small_traces["perl"][1])
        )

    def test_observation_count_is_sum_of_others(self, small_traces):
        order = 4
        model = _cross_trained_model(small_traces, "gcc", order=order)
        expected = sum(
            max(0, len(bits) - order)
            for name, (_idx, bits) in small_traces.items()
            if name != "gcc"
        )
        assert model.total_observations == expected

    def test_traces_have_entry_indices(self, small_traces):
        for name, (indices, bits) in small_traces.items():
            assert len(indices) == len(bits) == 3_000


class TestResultContainer:
    def make_result(self):
        return FigureTwoResult(
            benchmark="demo",
            sud_points=[ConfidencePoint("a", 0.9, 0.2), ConfidencePoint("b", 0.8, 0.5)],
            fsm_curves={4: [ConfidencePoint("h4", 0.95, 0.4)]},
        )

    def test_pareto_accessors(self):
        result = self.make_result()
        assert (0.95, 0.4) in result.fsm_pareto(4)
        assert (0.8, 0.5) in result.sud_pareto()

    def test_render_table(self):
        text = self.make_result().render()
        assert "Figure 2 (demo)" in text
        assert "custom h=4" in text
        assert "up/down" in text
