"""Tests for harness metrics, the linear area model, and reporting."""

import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.area_model import LinearAreaModel, fit_area_model, residuals
from repro.harness.metrics import (
    dominates,
    interpolate_coverage_at,
    pareto_front,
    weighted_miss_rate,
)
from repro.harness.reporting import format_table, results_path, write_report


class TestParetoFront:
    def test_simple(self):
        points = [(0.9, 0.1), (0.8, 0.5), (0.7, 0.3), (0.95, 0.05)]
        front = pareto_front(points)
        assert (0.7, 0.3) not in front  # dominated by (0.8, 0.5)
        assert (0.8, 0.5) in front
        assert (0.95, 0.05) in front

    def test_sorted_ascending_accuracy(self):
        front = pareto_front([(0.9, 0.1), (0.5, 0.9)])
        assert front == sorted(front)

    def test_duplicates_collapsed(self):
        assert pareto_front([(0.5, 0.5), (0.5, 0.5)]) == [(0.5, 0.5)]

    def test_empty(self):
        assert pareto_front([]) == []

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), max_size=40))
    def test_property_front_is_mutually_nondominated(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a != b:
                    assert not dominates(a, b)

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=1, max_size=40))
    def test_property_every_point_dominated_or_on_front(self, points):
        front = set(pareto_front(points))
        for p in points:
            assert p in front or any(dominates(f, p) for f in front)


class TestInterpolation:
    def test_coverage_at(self):
        curve = [(0.8, 0.9), (0.9, 0.5), (0.99, 0.1)]
        assert interpolate_coverage_at(curve, 0.85) == 0.5
        assert interpolate_coverage_at(curve, 0.999) == 0.0
        assert interpolate_coverage_at(curve, 0.5) == 0.9

    def test_weighted_miss_rate(self):
        assert weighted_miss_rate([(100, 10), (100, 30)]) == pytest.approx(0.2)
        assert weighted_miss_rate([]) == 0.0


class TestAreaModel:
    def test_perfect_line(self):
        points = [(n, 2.0 * n + 5.0) for n in range(1, 20)]
        model = fit_area_model(points)
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(5.0)
        assert model.estimate(100) == pytest.approx(205.0)

    def test_single_point_proportional(self):
        model = fit_area_model([(10, 30.0)])
        assert model.estimate(20) == pytest.approx(60.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_area_model([])

    def test_residuals(self):
        points = [(1, 3.0), (2, 5.0), (3, 6.0)]
        model = fit_area_model(points)
        res = residuals(model, points)
        assert sum(res) == pytest.approx(0.0, abs=1e-9)

    def test_str(self):
        assert "states" in str(fit_area_model([(1, 1.0), (2, 2.0)]))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.5000" in text
        assert "333" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.harness.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = write_report("demo.txt", "hello")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"
