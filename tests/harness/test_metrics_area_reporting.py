"""Tests for harness metrics, the linear area model, and reporting."""

import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.area_model import LinearAreaModel, fit_area_model, residuals
from repro.harness.metrics import (
    dominates,
    interpolate_coverage_at,
    pareto_front,
    weighted_miss_rate,
)
from repro.harness.reporting import format_table, results_path, write_report


class TestParetoFront:
    def test_simple(self):
        points = [(0.9, 0.1), (0.8, 0.5), (0.7, 0.3), (0.95, 0.05)]
        front = pareto_front(points)
        assert (0.7, 0.3) not in front  # dominated by (0.8, 0.5)
        assert (0.8, 0.5) in front
        assert (0.95, 0.05) in front

    def test_sorted_ascending_accuracy(self):
        front = pareto_front([(0.9, 0.1), (0.5, 0.9)])
        assert front == sorted(front)

    def test_duplicates_collapsed(self):
        assert pareto_front([(0.5, 0.5), (0.5, 0.5)]) == [(0.5, 0.5)]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([(0.5, 0.5)]) == [(0.5, 0.5)]

    def test_tie_on_accuracy_keeps_best_coverage(self):
        # Two points with equal accuracy: the lower-coverage one is
        # dominated and must not survive.
        front = pareto_front([(0.9, 0.2), (0.9, 0.6), (0.5, 0.9)])
        assert front == [(0.5, 0.9), (0.9, 0.6)]

    def test_tie_on_coverage_keeps_best_accuracy(self):
        front = pareto_front([(0.7, 0.4), (0.9, 0.4)])
        assert front == [(0.9, 0.4)]

    def test_all_points_on_front_when_mutually_nondominated(self):
        points = [(0.5, 0.9), (0.7, 0.7), (0.9, 0.5)]
        assert pareto_front(points) == points


class TestDominates:
    def test_strictly_better_on_both(self):
        assert dominates((0.9, 0.9), (0.5, 0.5))

    def test_better_on_one_tie_on_other(self):
        assert dominates((0.9, 0.5), (0.8, 0.5))
        assert dominates((0.9, 0.5), (0.9, 0.4))

    def test_identical_points_do_not_dominate(self):
        assert not dominates((0.5, 0.5), (0.5, 0.5))

    def test_tradeoff_points_do_not_dominate_each_other(self):
        assert not dominates((0.9, 0.1), (0.1, 0.9))
        assert not dominates((0.1, 0.9), (0.9, 0.1))

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), max_size=40))
    def test_property_front_is_mutually_nondominated(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a != b:
                    assert not dominates(a, b)

    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=1, max_size=40))
    def test_property_every_point_dominated_or_on_front(self, points):
        front = set(pareto_front(points))
        for p in points:
            assert p in front or any(dominates(f, p) for f in front)


class TestInterpolation:
    CURVE = [(0.8, 0.9), (0.9, 0.5), (0.99, 0.1)]

    def test_linear_between_bracketing_points(self):
        # Halfway between (0.8, 0.9) and (0.9, 0.5).
        assert interpolate_coverage_at(self.CURVE, 0.85) == pytest.approx(0.7)
        # Quarter of the way between (0.9, 0.5) and (0.99, 0.1).
        assert interpolate_coverage_at(self.CURVE, 0.9225) == pytest.approx(0.4)

    def test_linear_exact_points_and_range_ends(self):
        assert interpolate_coverage_at(self.CURVE, 0.9) == pytest.approx(0.5)
        assert interpolate_coverage_at(self.CURVE, 0.99) == pytest.approx(0.1)
        # Above the curve's reach: unattainable.
        assert interpolate_coverage_at(self.CURVE, 0.999) == 0.0
        # Below the measured range: the best coverage already qualifies.
        assert interpolate_coverage_at(self.CURVE, 0.5) == pytest.approx(0.9)

    def test_linear_collapses_duplicate_accuracies(self):
        curve = [(0.8, 0.2), (0.8, 0.9), (0.9, 0.5)]
        assert interpolate_coverage_at(curve, 0.85) == pytest.approx(0.7)

    def test_linear_target_exactly_at_lowest_point(self):
        # Target == lowest measured accuracy: that point's own coverage,
        # not the global max over the whole curve.
        assert interpolate_coverage_at(self.CURVE, 0.8) == pytest.approx(0.9)
        non_pareto = [(0.8, 0.3), (0.9, 0.8), (0.99, 0.1)]
        assert interpolate_coverage_at(non_pareto, 0.8) == pytest.approx(0.3)

    def test_linear_below_range_does_not_overcredit_non_pareto(self):
        # Regression: a non-Pareto curve whose max coverage sits at a
        # HIGHER accuracy used to leak that max into below-range targets.
        non_pareto = [(0.8, 0.3), (0.9, 0.8), (0.99, 0.1)]
        assert interpolate_coverage_at(non_pareto, 0.5) == pytest.approx(0.3)
        # Unsorted input behaves the same after internal sorting.
        shuffled = [(0.99, 0.1), (0.8, 0.3), (0.9, 0.8)]
        assert interpolate_coverage_at(shuffled, 0.5) == pytest.approx(0.3)
        assert interpolate_coverage_at(shuffled, 0.85) == pytest.approx(0.55)

    def test_linear_empty_curve(self):
        assert interpolate_coverage_at([], 0.8) == 0.0

    def test_step_mode_preserves_readoff_semantics(self):
        # The historical behaviour: best coverage among achieved points
        # with accuracy >= target, no credit between points.
        assert interpolate_coverage_at(self.CURVE, 0.85, mode="step") == 0.5
        assert interpolate_coverage_at(self.CURVE, 0.999, mode="step") == 0.0
        assert interpolate_coverage_at(self.CURVE, 0.5, mode="step") == 0.9

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            interpolate_coverage_at(self.CURVE, 0.8, mode="spline")

    def test_weighted_miss_rate(self):
        assert weighted_miss_rate([(100, 10), (100, 30)]) == pytest.approx(0.2)
        assert weighted_miss_rate([]) == 0.0


class TestAreaModel:
    def test_perfect_line(self):
        points = [(n, 2.0 * n + 5.0) for n in range(1, 20)]
        model = fit_area_model(points)
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(5.0)
        assert model.estimate(100) == pytest.approx(205.0)

    def test_single_point_proportional(self):
        model = fit_area_model([(10, 30.0)])
        assert model.estimate(20) == pytest.approx(60.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_area_model([])

    def test_residuals(self):
        points = [(1, 3.0), (2, 5.0), (3, 6.0)]
        model = fit_area_model(points)
        res = residuals(model, points)
        assert sum(res) == pytest.approx(0.0, abs=1e-9)

    def test_str(self):
        assert "states" in str(fit_area_model([(1, 1.0), (2, 2.0)]))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.5000" in text
        assert "333" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.harness.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = write_report("demo.txt", "hello")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"


class TestResultsDir:
    """Regression: reports land under the *invocation* cwd (or the
    REPRO_RESULTS_DIR override), never a path derived from __file__,
    which sent an installed wheel's reports into site-packages."""

    def test_defaults_to_cwd_results(self, tmp_path, monkeypatch):
        from repro.harness.reporting import results_dir

        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        assert results_dir() == str(tmp_path / "results")

    def test_env_override_wins_over_cwd(self, tmp_path, monkeypatch):
        from repro.harness.reporting import results_dir

        target = tmp_path / "elsewhere"
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(target))
        monkeypatch.chdir(tmp_path)
        assert results_dir() == str(target)

    def test_module_override_wins_over_env(self, tmp_path, monkeypatch):
        import repro.harness.reporting as reporting

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "env"))
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path / "explicit"))
        assert reporting.results_dir() == str(tmp_path / "explicit")

    def test_write_report_creates_under_tmp_cwd(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        path = write_report("cwd_demo.txt", "data")
        assert path == str(tmp_path / "results" / "cwd_demo.txt")
        assert open(path).read() == "data\n"
