"""The fig2/fig5 source drivers: panel shape over a registered
TraceSource and byte-identical resumption from the durable journal."""

from __future__ import annotations

import pytest

from repro.harness.fig2 import run_fig2_source
from repro.harness.fig5 import run_fig5_source
from repro.obs.metrics import metrics

SPEC = "kmp:pattern=ab,q=1/2,text=iid,variant=mp"


def _run(run_id=None, spec=SPEC):
    return run_fig2_source(
        spec,
        length=1024,
        seed=3,
        history_lengths=(1, 2),
        bias_thresholds=(0.5, 0.9),
        gap_kmax=2,
        run_id=run_id,
    )


@pytest.fixture(autouse=True)
def _isolated_dirs(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "runs"))


_PANEL = {}


@pytest.fixture
def result():
    # Computed once, after the autouse env isolation is in place.
    if "panel" not in _PANEL:
        _PANEL["panel"] = _run()
    return _PANEL["panel"]


class TestPanelShape:
    def test_panel_is_labeled_with_the_canonical_spec(self, result):
        assert result.benchmark == f"source:{SPEC}"

    def test_one_curve_per_history_length(self, result):
        assert sorted(result.fsm_curves) == [1, 2]
        assert all(len(curve) == 2 for curve in result.fsm_curves.values())

    def test_sud_sweep_present(self, result):
        assert result.sud_points

    def test_gap_column_uses_the_oracle(self, result):
        assert sorted(result.optimal_rates) == [1, 2]
        for curve in result.fsm_curves.values():
            for point in curve:
                if point.num_states <= 2:
                    assert point.gap_to_optimal is not None
                    assert point.gap_to_optimal >= -1e-12

    def test_render_mentions_the_source(self, result):
        assert SPEC in result.render()


class TestDurableResume:
    def test_resume_replays_and_is_byte_identical(self):
        first = _run(run_id="fig2-src-test")
        before = metrics().snapshot().get("durable.replayed", 0)
        second = _run(run_id="fig2-src-test")
        after = metrics().snapshot().get("durable.replayed", 0)
        assert after > before, "second run must replay from the journal"
        assert repr(first) == repr(second)
        assert first.render() == second.render()

    def test_fingerprint_keeps_specs_out_of_each_others_shards(self):
        # Same run_id, different spec: the journal must NOT replay the
        # first spec's shards into the second's results.
        _run(run_id="fig2-src-fp")
        before = metrics().snapshot().get("durable.replayed", 0)
        other = _run(run_id="fig2-src-fp", spec="kmp:pattern=aab,q=1/2,text=iid,variant=mp")
        after = metrics().snapshot().get("durable.replayed", 0)
        assert after == before, "a different spec replayed stale shards"
        assert other.benchmark.endswith("pattern=aab,q=1/2,text=iid,variant=mp")


class TestFig5Source:
    def test_panel_has_every_series(self):
        result = run_fig5_source(
            "pybytecode:program=sort",
            length=2000,
            seed=1,
            custom_counts=(1, 2),
        )
        series = set(result.series)
        assert {"gshare", "lgc", "custom-same", "custom-diff"} <= series

    def test_seeded_counterpart_still_yields_points(self):
        result = run_fig5_source(SPEC, length=2000, seed=1, custom_counts=(1,))
        assert result.series["custom-same"].points
        assert result.series["custom-diff"].points
