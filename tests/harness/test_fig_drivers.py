"""Shape tests for the figure drivers, run at reduced scale.

These are the integration tests of the whole reproduction: each asserts
the qualitative claim the corresponding paper figure makes.  Scales are
small so the suite stays fast; the benchmarks/ directory runs the full
versions.
"""

import pytest

from repro.harness.ablations import (
    render_startup,
    run_startup_ablation,
)
from repro.harness.fig2 import run_fig2_benchmark
from repro.harness.fig4 import run_fig4
from repro.harness.fig5 import run_fig5_benchmark
from repro.harness.fig67 import run_fig67
from repro.harness.metrics import interpolate_coverage_at


@pytest.fixture(scope="module")
def fig5_gsm():
    return run_fig5_benchmark("gsm", max_branches=30_000, custom_counts=(1, 2, 4, 8))


class TestFig2Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2_benchmark(
            "gcc", num_loads=30_000, history_lengths=(2, 8),
            bias_thresholds=(0.5, 0.8, 0.95, 0.995),
        )

    def test_fsm_beats_sud_at_high_accuracy(self, result):
        sud = result.sud_pareto()
        fsm = result.fsm_pareto(8)
        assert interpolate_coverage_at(fsm, 0.9) > interpolate_coverage_at(sud, 0.9)

    def test_longer_history_at_least_as_good(self, result):
        short = result.fsm_pareto(2)
        long_ = result.fsm_pareto(8)
        assert interpolate_coverage_at(long_, 0.9) >= interpolate_coverage_at(
            short, 0.9
        )

    def test_sud_sweep_has_sixty_points(self, result):
        assert len(result.sud_points) == 60

    def test_render_mentions_series(self, result):
        text = result.render()
        assert "up/down" in text
        assert "custom h=8" in text

    def test_gap_to_optimal_column_present_and_sound(self, result):
        assert result.optimal_rates, "gap column should be on by default"
        rates = [result.optimal_rates[k] for k in sorted(result.optimal_rates)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))  # monotone in k
        kmax = max(result.optimal_rates)
        for curve in result.fsm_curves.values():
            for point in curve:
                assert point.gap_to_optimal is not None
                # At sizes the oracle searched, nothing beats the optimum.
                if point.num_states <= kmax:
                    assert point.gap_to_optimal >= -1e-12

    def test_gap_column_can_be_disabled(self):
        result = run_fig2_benchmark(
            "gcc", num_loads=5_000, history_lengths=(2,),
            bias_thresholds=(0.5,), gap_kmax=0,
        )
        assert result.optimal_rates == {}
        assert result.fsm_curves[2][0].gap_to_optimal is None


class TestFig4Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(
            benchmarks=("ijpeg", "gs"), max_branches=20_000,
            branches_per_benchmark=4,
        )

    def test_sample_nonempty(self, result):
        assert len(result.reports) >= 4

    def test_area_grows_with_states(self, result):
        assert result.model.slope > 0

    def test_fit_is_reasonable_bound(self, result):
        # The paper uses the line as a conservative estimate: the bulk of
        # the sample stays near or below it.
        over = [
            r
            for r in result.reports
            if r.area > 2.0 * max(result.model.estimate(r.num_states), 0.0) + 60
        ]
        assert len(over) <= max(1, len(result.reports) // 4)

    def test_render(self, result):
        assert "Figure 4" in result.render()


class TestFig5Shape:
    def test_custom_improves_on_xscale(self, fig5_gsm):
        xscale = fig5_gsm.series["xscale"].points[0].miss_rate
        custom = fig5_gsm.series["custom-diff"].best_miss_rate()
        assert custom < xscale * 0.6

    def test_custom_same_at_least_as_good_as_diff(self, fig5_gsm):
        same = fig5_gsm.series["custom-same"].best_miss_rate()
        diff = fig5_gsm.series["custom-diff"].best_miss_rate()
        assert same <= diff * 1.2  # nearly identical per the paper

    def test_custom_curve_monotone_nonincreasing(self, fig5_gsm):
        rates = [p.miss_rate for p in fig5_gsm.series["custom-diff"].points]
        for earlier, later in zip(rates, rates[1:]):
            assert later <= earlier + 0.01

    def test_custom_beats_tables_at_its_area(self, fig5_gsm):
        """The paper's headline: a general-purpose predictor needs to be
        much larger to match the custom predictor."""
        custom_points = fig5_gsm.series["custom-diff"].points
        best_custom = min(custom_points, key=lambda p: p.miss_rate)
        for table_series in ("gshare", "lgc"):
            at_area = fig5_gsm.series[table_series].miss_rate_at_or_below_area(
                best_custom.area
            )
            if at_area is not None:
                assert best_custom.miss_rate <= at_area + 0.01

    def test_all_series_present(self, fig5_gsm):
        assert set(fig5_gsm.series) == {
            "xscale", "gshare", "lgc", "custom-same", "custom-diff",
            "tage", "perceptron",
        }

    def test_modern_series_are_competitive(self, fig5_gsm):
        # TAGE and the hashed perceptron postdate the paper by years; at
        # comparable storage they must land at or below the gshare curve.
        gshare_best = fig5_gsm.series["gshare"].best_miss_rate()
        assert fig5_gsm.series["tage"].best_miss_rate() < gshare_best * 1.25
        assert fig5_gsm.series["perceptron"].best_miss_rate() < gshare_best

    def test_modern_series_can_be_disabled(self):
        result = run_fig5_benchmark(
            "gsm", max_branches=5_000, custom_counts=(1,), modern=False
        )
        assert "tage" not in result.series
        assert "perceptron" not in result.series

    def test_render(self, fig5_gsm):
        assert "Figure 5 (gsm)" in fig5_gsm.render()


class TestFig67Shape:
    @pytest.fixture(scope="class")
    def examples(self):
        return run_fig67(max_branches=20_000)

    def test_fig6_is_single_short_pattern(self, examples):
        fig6 = examples["fig6"]
        assert fig6.benchmark == "ijpeg"
        assert len(fig6.design.cover) == 1
        assert fig6.design.machine.num_states <= 8

    def test_fig6_reproduces_paper_pattern(self, examples):
        # The paper's Figure 6 captures "1x": taken iff two-back was taken.
        assert examples["fig6"].design.cover_strings()[0].endswith("1x")

    def test_fig7_is_multi_pattern(self, examples):
        fig7 = examples["fig7"]
        assert fig7.benchmark == "gs"
        assert len(fig7.design.cover) >= 2

    def test_render_contains_dot(self, examples):
        assert "digraph" in examples["fig6"].render()


class TestStartupAblation:
    def test_reduction_removes_states(self):
        rows = run_startup_ablation(
            benchmarks=("ijpeg",), max_branches=15_000, top_branches=3
        )
        assert rows
        # "they typically account for around one half of all states":
        # require a substantial average reduction.
        fractions = [r.removed_fraction for r in rows]
        assert max(fractions) > 0.2
        for row in rows:
            assert row.states_final <= row.states_with_startup

    def test_render(self):
        rows = run_startup_ablation(
            benchmarks=("ijpeg",), max_branches=10_000, top_branches=2
        )
        assert "start-up" in render_startup(rows).lower()
