"""A steady-state GA searching for per-branch predictor machines.

Fitness of a genome is the accuracy with which its machine predicts the
target branch under the paper's update-all-on-every-branch policy
(Section 7.3): the machine steps on every global outcome, and is scored
when its own branch executes.  This is exactly the runtime regime of the
custom architecture, so GA-found and constructed machines are compared on
identical footing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.automata.moore import MooreMachine
from repro.search.genome import MachineGenome, random_genome
from repro.workloads.trace import BranchTrace


@dataclass(frozen=True)
class GAConfig:
    """Search knobs (deterministic given ``seed``)."""

    num_states: int = 8
    population: int = 32
    generations: int = 50
    tournament: int = 3
    mutation_rate: float = 0.08
    crossover_rate: float = 0.7
    elite: int = 2
    seed: int = 0
    fitness_sample: Optional[int] = 20_000  # cap on trace length per eval

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.elite >= self.population:
            raise ValueError("elite must be smaller than the population")


def fitness(
    genome: MachineGenome,
    pcs: Sequence[int],
    outcomes: Sequence[int],
    target_pc: int,
) -> float:
    """Prediction accuracy on the target branch (update-all policy)."""
    outputs = genome.outputs
    transitions = genome.transitions
    state = 0
    execs = 0
    correct = 0
    for pc, outcome in zip(pcs, outcomes):
        if pc == target_pc:
            execs += 1
            if outputs[state] == outcome:
                correct += 1
        state = transitions[state][outcome]
    if execs == 0:
        return 0.0
    return correct / execs


def evolve(
    trace: BranchTrace,
    target_pc: int,
    config: GAConfig,
) -> Tuple[MachineGenome, float]:
    """Run the GA; returns the best genome and its fitness."""
    rng = random.Random(config.seed)
    limit = config.fitness_sample or len(trace)
    pcs = trace.pcs[:limit]
    outcomes = trace.outcomes[:limit]

    def score(genome: MachineGenome) -> float:
        return fitness(genome, pcs, outcomes, target_pc)

    population: List[Tuple[float, MachineGenome]] = []
    for _ in range(config.population):
        genome = random_genome(config.num_states, rng)
        population.append((score(genome), genome))
    population.sort(key=lambda item: -item[0])

    def tournament_pick() -> MachineGenome:
        best: Optional[Tuple[float, MachineGenome]] = None
        for _ in range(config.tournament):
            candidate = population[rng.randrange(len(population))]
            if best is None or candidate[0] > best[0]:
                best = candidate
        assert best is not None
        return best[1]

    for _generation in range(config.generations):
        next_population: List[Tuple[float, MachineGenome]] = list(
            population[: config.elite]
        )
        while len(next_population) < config.population:
            parent = tournament_pick()
            if rng.random() < config.crossover_rate:
                child = parent.crossover(tournament_pick(), rng)
            else:
                child = parent.copy()
            child.mutate(rng, config.mutation_rate)
            next_population.append((score(child), child))
        next_population.sort(key=lambda item: -item[0])
        population = next_population
    best_fitness, best_genome = population[0]
    return best_genome, best_fitness


def search_predictor(
    trace: BranchTrace,
    target_pc: int,
    config: GAConfig,
) -> Tuple[MooreMachine, float]:
    """Convenience wrapper returning the decoded machine and its fitness."""
    genome, best_fitness = evolve(trace, target_pc, config)
    return genome.to_machine(), best_fitness
