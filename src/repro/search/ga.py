"""A steady-state GA searching for per-branch predictor machines.

Fitness of a genome is the accuracy with which its machine predicts the
target branch under the paper's update-all-on-every-branch policy
(Section 7.3): the machine steps on every global outcome, and is scored
when its own branch executes.  This is exactly the runtime regime of the
custom architecture, so GA-found and constructed machines are compared on
identical footing.

**Durability** (:mod:`repro.reliability.durability`): ``evolve(...,
run_id=...)`` checkpoints after every generation -- population (with
scores), generation number, and the seeded PRNG's exact state -- to an
atomic, checksummed blob under the run directory, and journals a
``ga_generation`` event.  A search killed after generation *k* and
re-invoked with the same run id resumes from *k* and produces the
bit-identical best genome an uninterrupted run would have found, because
the PRNG continues from the captured state.  The checkpoint key covers
every config knob *except* ``generations``, so "run 3 generations, then
resume to 50" is the same search as "run 50".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.automata.moore import MooreMachine
from repro.obs.metrics import metrics
from repro.reliability import durability, faults
from repro.search.genome import MachineGenome, random_genome
from repro.workloads.trace import BranchTrace


@dataclass(frozen=True)
class GAConfig:
    """Search knobs (deterministic given ``seed``)."""

    num_states: int = 8
    population: int = 32
    generations: int = 50
    tournament: int = 3
    mutation_rate: float = 0.08
    crossover_rate: float = 0.7
    elite: int = 2
    seed: int = 0
    fitness_sample: Optional[int] = 20_000  # cap on trace length per eval

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.elite >= self.population:
            raise ValueError("elite must be smaller than the population")


def fitness(
    genome: MachineGenome,
    pcs: Sequence[int],
    outcomes: Sequence[int],
    target_pc: int,
) -> float:
    """Prediction accuracy on the target branch (update-all policy)."""
    outputs = genome.outputs
    transitions = genome.transitions
    state = 0
    execs = 0
    correct = 0
    for pc, outcome in zip(pcs, outcomes):
        if pc == target_pc:
            execs += 1
            if outputs[state] == outcome:
                correct += 1
        state = transitions[state][outcome]
    if execs == 0:
        return 0.0
    return correct / execs


def batch_fitness(
    genomes: Sequence[MachineGenome],
    pcs: Sequence[int],
    outcomes: Sequence[int],
    target_pc: int,
) -> List[float]:
    """Fitness of many genomes in one stacked pass.

    Under update-all every genome consumes the same outcome stream, so a
    whole population (or brood of children) advances through a single
    :class:`~repro.perf.batched.BatchedMoore` run; per-genome accuracy is
    a gather at the target branch's positions.  Bit-identical to mapping
    :func:`fitness` (same integer division), which it falls back to
    without numpy or for small inputs.
    """
    if not genomes:
        return []
    from repro.perf import batched

    if (
        batched._np is None
        or not batched.batch_enabled()
        or len(genomes) < 2
        or len(pcs) < batched.BATCH_THRESHOLD
    ):
        return [fitness(g, pcs, outcomes, target_pc) for g in genomes]
    np = batched._np
    try:
        pc_arr = np.asarray(pcs, dtype=np.int64)
        bits = np.asarray(outcomes, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return [fitness(g, pcs, outcomes, target_pc) for g in genomes]
    if (
        pc_arr.ndim != 1
        or bits.ndim != 1
        or pc_arr.shape != bits.shape
        or not ((bits == 0) | (bits == 1)).all()
    ):
        return [fitness(g, pcs, outcomes, target_pc) for g in genomes]
    idx = np.flatnonzero(pc_arr == target_pc)
    execs = int(idx.size)
    if execs == 0:
        return [0.0] * len(genomes)
    stack = batched.BatchedMoore([g.to_machine() for g in genomes])
    states = stack.run_states(bits)  # (M, N) states after each outcome
    M = len(genomes)
    before = np.empty((M, execs), dtype=np.int64)
    nonzero = idx > 0
    before[:, nonzero] = states[:, idx[nonzero] - 1]
    before[:, ~nonzero] = 0  # genomes always start in state 0
    outs = np.zeros((M, stack.max_states), dtype=np.int64)
    for m, genome in enumerate(genomes):
        outs[m, : genome.num_states] = genome.outputs
    correct = (
        np.take_along_axis(outs, before, axis=1) == bits[idx][None, :]
    ).sum(axis=1)
    return [int(c) / execs for c in correct]


def _checkpoint_key(config: GAConfig, target_pc: int) -> str:
    """Content key of a checkpoint: every knob that shapes the search
    *except* ``generations`` (resuming to a larger generation budget is
    the same search continued, not a different one)."""
    from repro.perf.cache import digest_of

    return digest_of(
        "ga-checkpoint",
        target_pc,
        config.num_states,
        config.population,
        config.tournament,
        config.mutation_rate,
        config.crossover_rate,
        config.elite,
        config.seed,
        config.fitness_sample,
    )


def evolve(
    trace: BranchTrace,
    target_pc: int,
    config: GAConfig,
    run_id: Optional[str] = None,
    checkpoint_tag: Optional[str] = None,
) -> Tuple[MachineGenome, float]:
    """Run the GA; returns the best genome and its fitness.

    With ``run_id`` set (and durability enabled) the search checkpoints
    after every generation and resumes from the last complete generation
    on re-invocation -- bit-identical to an uninterrupted run.
    """
    rng = random.Random(config.seed)
    limit = config.fitness_sample or len(trace)
    pcs = trace.pcs[:limit]
    outcomes = trace.outcomes[:limit]

    ckpt_path = None
    journal = None
    tag = checkpoint_tag or f"pc{target_pc:x}"
    if run_id is not None and durability.durability_enabled():
        ckpt_path = durability.checkpoint_path(
            run_id, "ga", tag, _checkpoint_key(config, target_pc)
        )
        journal = durability.Journal(run_id)

    population: Optional[List[Tuple[float, MachineGenome]]] = None
    start_generation = 0
    if ckpt_path is not None:
        state = durability.load_blob(ckpt_path)
        if (
            isinstance(state, dict)
            and 0 < state.get("generation", 0) <= config.generations
        ):
            population = state["population"]
            rng.setstate(state["rng_state"])
            start_generation = state["generation"]
            metrics().incr("ga.resumed")
            if journal is not None:
                journal.append("ga_resumed", tag=tag, generation=start_generation)

    if population is None:
        # Creation draws from the RNG; scoring is pure, so the whole
        # brood can be scored in one batched pass afterwards.
        genomes = [
            random_genome(config.num_states, rng)
            for _ in range(config.population)
        ]
        scores = batch_fitness(genomes, pcs, outcomes, target_pc)
        population = list(zip(scores, genomes))
        population.sort(key=lambda item: -item[0])

    def tournament_pick() -> MachineGenome:
        best: Optional[Tuple[float, MachineGenome]] = None
        for _ in range(config.tournament):
            candidate = population[rng.randrange(len(population))]
            if best is None or candidate[0] > best[0]:
                best = candidate
        assert best is not None
        return best[1]

    for generation in range(start_generation, config.generations):
        next_population: List[Tuple[float, MachineGenome]] = list(
            population[: config.elite]
        )
        # Tournament picks read the *previous* generation's scores, so
        # children can be created first (consuming the RNG in the same
        # order as scoring them one by one would) and scored as one
        # batched brood.
        children: List[MachineGenome] = []
        while len(next_population) + len(children) < config.population:
            parent = tournament_pick()
            if rng.random() < config.crossover_rate:
                child = parent.crossover(tournament_pick(), rng)
            else:
                child = parent.copy()
            child.mutate(rng, config.mutation_rate)
            children.append(child)
        next_population.extend(
            zip(batch_fitness(children, pcs, outcomes, target_pc), children)
        )
        next_population.sort(key=lambda item: -item[0])
        population = next_population
        if ckpt_path is not None:
            # Checkpoint the *complete* generation: population with its
            # scores plus the PRNG's exact state, so a resumed run draws
            # the same random sequence an uninterrupted one would.
            durability.store_blob(
                ckpt_path,
                {
                    "generation": generation + 1,
                    "population": population,
                    "rng_state": rng.getstate(),
                },
            )
            if journal is not None:
                journal.append(
                    "ga_generation",
                    tag=tag,
                    generation=generation + 1,
                    best=round(population[0][0], 6),
                )
            faults.fire_kill("kill_point")
    if journal is not None:
        journal.close()
    best_fitness, best_genome = population[0]
    return best_genome, best_fitness


def search_predictor(
    trace: BranchTrace,
    target_pc: int,
    config: GAConfig,
    run_id: Optional[str] = None,
    checkpoint_tag: Optional[str] = None,
) -> Tuple[MooreMachine, float]:
    """Convenience wrapper returning the decoded machine and its fitness."""
    genome, best_fitness = evolve(
        trace, target_pc, config, run_id=run_id, checkpoint_tag=checkpoint_tag
    )
    return genome.to_machine(), best_fitness
