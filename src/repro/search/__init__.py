"""Extension: genetic search over predictor FSMs.

The closest prior work to the paper is Emer & Gloy's genetic programming
over a predictor-description language (Section 3.2).  The paper contrasts
its constructive approach ("our approach automatically builds FSM
predictors from behavioral traces, without searching") with that search.
This package implements a small, honest version of the searched
alternative -- a steady-state GA over Moore-machine tables, fitness = trace
prediction accuracy -- so the contrast can be *measured* (see
``repro.harness.ablations.run_ga_comparison``).
"""

from repro.search.genome import MachineGenome, random_genome
from repro.search.ga import GAConfig, search_predictor, evolve

__all__ = [
    "MachineGenome",
    "random_genome",
    "GAConfig",
    "search_predictor",
    "evolve",
]
