"""Moore-machine genomes for the GA extension.

A genome is the raw genetic material of a binary-alphabet Moore machine:
per-state output bits and per-state successor pairs.  Crossover splices
state rows; mutation rewires single transitions or flips single outputs.
Both preserve well-formedness by construction (successors always index
valid states), so every genome decodes to a runnable machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.automata.moore import BINARY_ALPHABET, MooreMachine


@dataclass
class MachineGenome:
    """Mutable genome; decode to an immutable machine with ``to_machine``."""

    outputs: List[int]
    transitions: List[Tuple[int, int]]

    @property
    def num_states(self) -> int:
        return len(self.outputs)

    def copy(self) -> "MachineGenome":
        return MachineGenome(
            outputs=list(self.outputs), transitions=list(self.transitions)
        )

    def to_machine(self, start: int = 0) -> MooreMachine:
        return MooreMachine(
            alphabet=BINARY_ALPHABET,
            start=start,
            outputs=tuple(self.outputs),
            transitions=tuple(self.transitions),
        )

    # ------------------------------------------------------------------
    # Genetic operators
    # ------------------------------------------------------------------
    def mutate(self, rng: random.Random, rate: float = 0.1) -> None:
        """Point mutations: each state independently may get an output
        flip or a transition rewire."""
        n = self.num_states
        for state in range(n):
            if rng.random() < rate:
                self.outputs[state] ^= 1
            if rng.random() < rate:
                zero, one = self.transitions[state]
                if rng.random() < 0.5:
                    zero = rng.randrange(n)
                else:
                    one = rng.randrange(n)
                self.transitions[state] = (zero, one)

    def crossover(self, other: "MachineGenome", rng: random.Random) -> "MachineGenome":
        """Single-point crossover on state rows.  Successor indices from
        the partner are taken modulo the child size, so children remain
        well-formed even between unequal-size parents."""
        n = self.num_states
        cut = rng.randrange(1, n) if n > 1 else 0
        child = self.copy()
        for state in range(cut, n):
            src_state = state % other.num_states
            child.outputs[state] = other.outputs[src_state]
            zero, one = other.transitions[src_state]
            child.transitions[state] = (zero % n, one % n)
        return child


def random_genome(num_states: int, rng: random.Random) -> MachineGenome:
    """A uniformly random well-formed genome."""
    if num_states < 1:
        raise ValueError("num_states must be >= 1")
    return MachineGenome(
        outputs=[rng.randrange(2) for _ in range(num_states)],
        transitions=[
            (rng.randrange(num_states), rng.randrange(num_states))
            for _ in range(num_states)
        ],
    )
