"""Ternary cubes: the product terms of two-level logic minimization.

A cube over ``n`` boolean variables is a string in ``{0, 1, -}^n``; ``-``
("don't care" position, the paper writes it as ``x``) matches either value.
A cube denotes the set of minterms it contains, so it doubles as the pattern
notation of the paper's Section 4.4 (e.g. the cover ``{(x 1), (1 x)}``).

Internally a cube is a pair of integers ``(value, mask)``: bit ``i`` of
``mask`` is 1 when position ``i`` is a *care* position, and in that case bit
``i`` of ``value`` holds the required value.  Bit 0 of the integers maps to
the **rightmost** character of the string form, so ``Cube.from_string("10-")``
has its ``-`` at bit 0.  All set operations reduce to integer arithmetic,
which keeps Quine-McCluskey fast enough in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True, order=True)
class Cube:
    """An immutable product term over ``width`` boolean variables."""

    width: int
    value: int
    mask: int

    def __post_init__(self) -> None:
        full = (1 << self.width) - 1
        if self.mask & ~full:
            raise ValueError(f"mask {self.mask:#x} wider than {self.width} bits")
        if self.value & ~self.mask:
            raise ValueError("value has bits set outside the care mask")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse a cube from its string form, e.g. ``"1-0"``.

        The leftmost character is the most-significant position.  Both ``-``
        and ``x`` (any case) are accepted for don't-care positions.
        """
        value = 0
        mask = 0
        for ch in text:
            value <<= 1
            mask <<= 1
            if ch == "1":
                value |= 1
                mask |= 1
            elif ch == "0":
                mask |= 1
            elif ch in ("-", "x", "X"):
                pass
            else:
                raise ValueError(f"invalid cube character {ch!r} in {text!r}")
        return cls(width=len(text), value=value, mask=mask)

    @classmethod
    def from_minterm(cls, minterm: int, width: int) -> "Cube":
        """The cube containing exactly one minterm."""
        full = (1 << width) - 1
        if minterm & ~full:
            raise ValueError(f"minterm {minterm} does not fit in {width} bits")
        return cls(width=width, value=minterm, mask=full)

    @classmethod
    def universe(cls, width: int) -> "Cube":
        """The cube covering every minterm (all positions don't-care)."""
        return cls(width=width, value=0, mask=0)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        chars = []
        for i in reversed(range(self.width)):
            bit = 1 << i
            if not self.mask & bit:
                chars.append("-")
            elif self.value & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def __repr__(self) -> str:
        return f"Cube({str(self)!r})"

    @property
    def num_literals(self) -> int:
        """Number of care positions (the literal count of the product term)."""
        return bin(self.mask).count("1")

    @property
    def num_minterms(self) -> int:
        """How many minterms this cube contains."""
        return 1 << (self.width - self.num_literals)

    @property
    def oldest_care_index(self) -> int:
        """Highest care bit index, or -1 for the universal cube.

        In the predictor pipeline bit 0 is the most recent history bit, so
        this is how far back in history the pattern reaches -- the property
        that governs how many states the recognizing automaton needs
        (roughly ``2**oldest_care_index``).
        """
        if self.mask == 0:
            return -1
        return self.mask.bit_length() - 1

    @property
    def pattern_cost(self) -> int:
        """Covering cost used by the minimizer: literal count plus an
        exponential penalty for reaching deep into history.  Two covers
        with equal literal counts can recognize the same on-set, yet the
        one caring about *recent* bits yields a far smaller FSM; weighting
        by ``2**oldest_care_index`` makes the covering step prefer it."""
        if self.mask == 0:
            return 0
        return self.num_literals + (1 << self.oldest_care_index)

    def contains_minterm(self, minterm: int) -> bool:
        """True when ``minterm`` is in this cube."""
        return (minterm & self.mask) == self.value

    def covers(self, other: "Cube") -> bool:
        """True when every minterm of ``other`` is also in ``self``."""
        if self.width != other.width:
            raise ValueError("cube widths differ")
        if self.mask & ~other.mask:
            return False  # self cares about a position other leaves free
        return (other.value & self.mask) == self.value

    def intersects(self, other: "Cube") -> bool:
        """True when the two cubes share at least one minterm."""
        if self.width != other.width:
            raise ValueError("cube widths differ")
        common = self.mask & other.mask
        return (self.value & common) == (other.value & common)

    def intersection(self, other: "Cube") -> Optional["Cube"]:
        """The cube of shared minterms, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Cube(
            width=self.width,
            value=self.value | other.value,
            mask=self.mask | other.mask,
        )

    def minterms(self) -> Iterator[int]:
        """Yield every minterm contained in this cube, ascending."""
        free_bits = [i for i in range(self.width) if not self.mask & (1 << i)]
        for combo in range(1 << len(free_bits)):
            minterm = self.value
            for j, bit_index in enumerate(free_bits):
                if combo & (1 << j):
                    minterm |= 1 << bit_index
            yield minterm

    # ------------------------------------------------------------------
    # Quine-McCluskey primitives
    # ------------------------------------------------------------------
    def merge(self, other: "Cube") -> Optional["Cube"]:
        """Combine two cubes that differ in exactly one care position.

        Returns the merged cube (with that position freed) or None when the
        cubes are not adjacent.  This is the combining step of
        Quine-McCluskey.
        """
        if self.width != other.width or self.mask != other.mask:
            return None
        diff = self.value ^ other.value
        if diff == 0 or diff & (diff - 1):
            return None  # identical, or differ in more than one position
        return Cube(width=self.width, value=self.value & ~diff, mask=self.mask & ~diff)

    def expand_position(self, position: int) -> "Cube":
        """Free one care position (raise the cube along one variable)."""
        bit = 1 << position
        if not self.mask & bit:
            return self
        return Cube(width=self.width, value=self.value & ~bit, mask=self.mask & ~bit)

    def cofactor_positions(self) -> List[int]:
        """Indices of care positions, most-significant first."""
        return [i for i in reversed(range(self.width)) if self.mask & (1 << i)]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches_bits(self, bits: str) -> bool:
        """Evaluate the cube on a bit string (MSB first), e.g. ``"101"``."""
        if len(bits) != self.width:
            raise ValueError(
                f"bit string length {len(bits)} != cube width {self.width}"
            )
        return self.contains_minterm(int(bits, 2) if bits else 0)


def cover_contains(cover: List[Cube], minterm: int) -> bool:
    """True when any cube in ``cover`` contains ``minterm``."""
    return any(cube.contains_minterm(minterm) for cube in cover)


def cover_literals(cover: List[Cube]) -> int:
    """Total literal count of a cover (the standard minimization cost)."""
    return sum(cube.num_literals for cube in cover)
