"""Unate covering: choose a minimum-cost subset of primes.

Quine-McCluskey reduces minimization to set covering: every on-set minterm
must be contained in at least one chosen prime.  We implement the standard
pipeline -- essential primes, row/column dominance free greedy selection, and
a small exact branch-and-bound.  The cube cost is ``Cube.pattern_cost``
(literals plus an exponential penalty on how far back in history the cube
reaches) rather than Espresso's plain literal count: for predictor design the
automaton's state count is governed by the oldest care bit, so the covering
step prefers recent-history primes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic.cube import Cube


def _build_rows(
    primes: Sequence[Cube], minterms: Iterable[int]
) -> Dict[int, FrozenSet[int]]:
    """Map each minterm to the set of prime indices covering it."""
    rows: Dict[int, Set[int]] = {m: set() for m in minterms}
    # Raw (value, mask) pairs: containment is two int ops per probe.
    pairs = [(prime.value, prime.mask) for prime in primes]
    for idx, (value, mask) in enumerate(pairs):
        for m in rows:
            if (m & mask) == value:
                rows[m].add(idx)
    uncoverable = [m for m, cols in rows.items() if not cols]
    if uncoverable:
        raise ValueError(f"minterms {sorted(uncoverable)} covered by no prime")
    return {m: frozenset(cols) for m, cols in rows.items()}


def essential_primes(
    primes: Sequence[Cube], minterms: Iterable[int]
) -> Tuple[List[int], Set[int]]:
    """Indices of essential primes, plus the minterms they leave uncovered.

    A prime is essential when it is the only prime covering some required
    minterm; every minimum cover must include it.
    """
    rows = _build_rows(primes, minterms)
    essential: Set[int] = set()
    for cols in rows.values():
        if len(cols) == 1:
            essential.add(next(iter(cols)))
    remaining = {
        m for m, cols in rows.items() if not (cols & essential)
    }
    return sorted(essential), remaining


def greedy_cover(
    primes: Sequence[Cube],
    minterms: Iterable[int],
    preselected: Optional[Iterable[int]] = None,
) -> List[int]:
    """Greedy covering: repeatedly take the prime covering the most
    still-uncovered minterms, breaking ties toward lower pattern cost,
    then toward lower index (for determinism).  Returns sorted chosen
    indices, including any ``preselected`` ones.
    """
    chosen: Set[int] = set(preselected or ())
    rows = _build_rows(primes, minterms)
    uncovered = {m for m, cols in rows.items() if not (cols & chosen)}
    while uncovered:
        gain: Dict[int, int] = {}
        for m in uncovered:
            for idx in rows[m]:
                gain[idx] = gain.get(idx, 0) + 1
        # Classic weighted set cover: cheapest cost per newly-covered
        # minterm wins (ties toward bigger gain, then lower index).
        best = min(
            gain,
            key=lambda idx: (
                primes[idx].pattern_cost / gain[idx],
                -gain[idx],
                idx,
            ),
        )
        chosen.add(best)
        uncovered = {m for m in uncovered if best not in rows[m]}
    return sorted(chosen)


def exact_cover(
    primes: Sequence[Cube],
    minterms: Iterable[int],
    preselected: Optional[Iterable[int]] = None,
    node_limit: int = 200_000,
) -> List[int]:
    """Branch-and-bound minimum-cost cover (cost = total pattern cost,
    tie on cube count).  Falls back to the greedy answer if the node
    budget is exhausted, so worst-case behaviour is always bounded.
    """
    pre = set(preselected or ())
    rows_all = _build_rows(primes, minterms)
    uncovered0 = frozenset(m for m, cols in rows_all.items() if not (cols & pre))

    best_choice = set(greedy_cover(primes, minterms, preselected=pre))
    best_cost = _cover_cost(primes, best_choice)
    nodes = [0]

    def branch(uncovered: FrozenSet[int], chosen: Set[int]) -> None:
        nonlocal best_choice, best_cost
        nodes[0] += 1
        if nodes[0] > node_limit:
            return
        cost = _cover_cost(primes, chosen)
        if cost >= best_cost:
            return
        if not uncovered:
            best_choice, best_cost = set(chosen), cost
            return
        # Branch on the hardest row (fewest covering columns).
        pivot = min(uncovered, key=lambda m: (len(rows_all[m]), m))
        for idx in sorted(rows_all[pivot], key=lambda i: primes[i].pattern_cost):
            if idx in chosen:
                continue
            chosen.add(idx)
            branch(
                frozenset(m for m in uncovered if idx not in rows_all[m]), chosen
            )
            chosen.discard(idx)

    branch(uncovered0, set(pre))
    return sorted(best_choice)


def _cover_cost(primes: Sequence[Cube], chosen: Iterable[int]) -> Tuple[int, int]:
    chosen = list(chosen)
    return (sum(primes[i].pattern_cost for i in chosen), len(chosen))


def select_cover(
    primes: Sequence[Cube],
    on_set: Iterable[int],
    exact: bool = True,
) -> List[Cube]:
    """Full covering pipeline: essentials, then exact or greedy residual.

    Returns the selected cubes sorted for determinism.
    """
    on_list = list(on_set)
    if not on_list:
        return []
    ess, remaining = essential_primes(primes, on_list)
    if not remaining:
        return sorted(primes[i] for i in ess)
    if exact and len(primes) <= 64:
        chosen = exact_cover(primes, on_list, preselected=ess)
    else:
        chosen = greedy_cover(primes, on_list, preselected=ess)
    return sorted(primes[i] for i in chosen)
