"""Truth tables with explicit on/off/don't-care partitions.

This is the interchange format between the paper's pattern-definition step
(Section 4.3) and its pattern-compression step (Section 4.4): every history
of length N is assigned to exactly one of the "predict 1" (on), "predict 0"
(off) or "don't care" (dc) sets, and the minimizer is free to merge the dc
set into either side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping

from repro.logic.cube import Cube


@dataclass(frozen=True)
class TruthTable:
    """A single-output incompletely-specified boolean function.

    Minterms absent from both ``on_set`` and ``off_set`` are implicitly
    don't-cares; ``dc_set`` is derived, so the three sets always partition
    the full minterm space.
    """

    width: int
    on_set: FrozenSet[int]
    off_set: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.width < 0:
            raise ValueError("width must be non-negative")
        full = 1 << self.width
        overlap = self.on_set & self.off_set
        if overlap:
            raise ValueError(f"on/off sets overlap on minterms {sorted(overlap)}")
        for m in self.on_set | self.off_set:
            if not 0 <= m < full:
                raise ValueError(f"minterm {m} out of range for width {self.width}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(
        cls,
        width: int,
        on: Iterable[int],
        off: Iterable[int],
    ) -> "TruthTable":
        return cls(width=width, on_set=frozenset(on), off_set=frozenset(off))

    @classmethod
    def from_mapping(cls, width: int, outputs: Mapping[int, str]) -> "TruthTable":
        """Build from ``{minterm: "1" | "0" | "-"}``; unmentioned ⇒ don't care."""
        on: List[int] = []
        off: List[int] = []
        for minterm, symbol in outputs.items():
            if symbol == "1":
                on.append(minterm)
            elif symbol == "0":
                off.append(minterm)
            elif symbol not in ("-", "x", "X"):
                raise ValueError(f"invalid output symbol {symbol!r}")
        return cls.from_sets(width, on, off)

    @classmethod
    def from_strings(cls, width: int, rows: Mapping[str, str]) -> "TruthTable":
        """Build from ``{"01": "1", ...}`` with MSB-first bit strings."""
        return cls.from_mapping(
            width,
            {int(bits, 2) if bits else 0: symbol for bits, symbol in rows.items()},
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def dc_set(self) -> FrozenSet[int]:
        full = frozenset(range(1 << self.width))
        return full - self.on_set - self.off_set

    @property
    def num_specified(self) -> int:
        return len(self.on_set) + len(self.off_set)

    def output_of(self, minterm: int) -> str:
        """The specified output: ``"1"``, ``"0"`` or ``"-"``."""
        if minterm in self.on_set:
            return "1"
        if minterm in self.off_set:
            return "0"
        return "-"

    def complement(self) -> "TruthTable":
        """Swap on and off sets (minimize the predict-0 side)."""
        return TruthTable(width=self.width, on_set=self.off_set, off_set=self.on_set)

    def is_cover_valid(self, cover: List[Cube]) -> bool:
        """A valid cover contains every on minterm and no off minterm."""
        for cube in cover:
            if cube.width != self.width:
                return False
        for m in self.on_set:
            if not any(cube.contains_minterm(m) for cube in cover):
                return False
        for m in self.off_set:
            if any(cube.contains_minterm(m) for cube in cover):
                return False
        return True

    def as_rows(self) -> Dict[str, str]:
        """Render as ``{"00": "0", "01": "1", ...}``, MSB-first keys."""
        rows: Dict[str, str] = {}
        for m in range(1 << self.width):
            rows[format(m, f"0{self.width}b") if self.width else ""] = self.output_of(m)
        return rows

    def __str__(self) -> str:
        lines = [f"TruthTable(width={self.width})"]
        for bits, out in self.as_rows().items():
            lines.append(f"  {bits} -> {out}")
        return "\n".join(lines)
