"""Espresso-style heuristic minimization for wide functions.

Exact Quine-McCluskey is our default at the paper's sizes (N <= 10), but the
library also exposes a heuristic minimizer in the spirit of Espresso's
EXPAND / IRREDUNDANT loop so that nothing in the design flow has an
exponential cliff.  The heuristic takes an initial cover (the on-set
minterms), expands every cube against the off-set as far as possible, and
drops redundant cubes.

Like Espresso, correctness is unconditional -- the result always covers the
on-set and avoids the off-set -- only optimality is heuristic.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.logic.cube import Cube
from repro.logic.truth_table import TruthTable


def _expand_cube(cube: Cube, off_cubes: Sequence[Cube]) -> Cube:
    """Raise (free) care positions of ``cube`` greedily while staying
    disjoint from every off-set cube.  Positions are tried MSB-first, which
    matches how the paper's history patterns prefer dropping old history
    bits first.
    """
    current = cube
    for position in current.cofactor_positions():
        candidate = current.expand_position(position)
        if not any(candidate.intersects(off) for off in off_cubes):
            current = candidate
    return current


def _irredundant(cover: List[Cube], on_set: Set[int]) -> List[Cube]:
    """Remove cubes whose on-set minterms are all covered elsewhere.

    Cubes are examined smallest-first so small cubes get removed in favour
    of large ones.  Only on-set minterms are tested for membership (never
    enumerated from the cube -- an expanded cube can contain exponentially
    many minterms).
    """
    kept = list(cover)
    for cube in sorted(cover, key=lambda c: (c.num_literals, str(c)), reverse=True):
        others = [c for c in kept if c is not cube]
        if not others:
            continue
        still_covered = all(
            any(o.contains_minterm(m) for o in others)
            for m in on_set
            if cube.contains_minterm(m)
        )
        if still_covered:
            kept = others
    return kept


def minimize_heuristic(table: TruthTable) -> List[Cube]:
    """Espresso-like EXPAND + IRREDUNDANT heuristic minimization."""
    if not table.on_set:
        return []
    if not table.off_set:
        return [Cube.universe(table.width)]
    off_cubes = [Cube.from_minterm(m, table.width) for m in sorted(table.off_set)]
    expanded: List[Cube] = []
    for m in sorted(table.on_set):
        if any(cube.contains_minterm(m) for cube in expanded):
            continue
        cube = _expand_cube(Cube.from_minterm(m, table.width), off_cubes)
        expanded.append(cube)
    result = _irredundant(expanded, set(table.on_set))
    return sorted(result)


# Exact minimization is affordable up to this many input variables; beyond
# it we switch to the heuristic.  2^12 minterm enumeration is still fast.
_EXACT_WIDTH_LIMIT = 12


def minimize(table: TruthTable) -> List[Cube]:
    """Minimize ``table``, choosing exact or heuristic mode by width.

    This is the entry point the design pipeline uses as its "Espresso".
    """
    from repro.logic.quine_mccluskey import minimize_exact

    if table.width <= _EXACT_WIDTH_LIMIT:
        return minimize_exact(table)
    return minimize_heuristic(table)
