"""Two-level logic minimization substrate.

The paper compresses the "predict 1" / "predict 0" / "don't care" history sets
with the Espresso logic minimizer (Section 4.4).  This package is the
reproduction's stand-in for Espresso: an exact Quine-McCluskey minimizer with
don't-care support for the small truth tables the paper actually uses
(history length N <= 10, i.e. at most 1024 minterms), plus an Espresso-style
heuristic (EXPAND / IRREDUNDANT) for wider functions.

The public contract mirrors Espresso's: a :class:`TruthTable` with on-set,
off-set and dc-set in, a list of :class:`Cube` product terms out, such that the
cover contains every on-set minterm and no off-set minterm.
"""

from repro.logic.cube import Cube
from repro.logic.truth_table import TruthTable
from repro.logic.quine_mccluskey import prime_implicants, minimize_exact
from repro.logic.covering import (
    essential_primes,
    greedy_cover,
    exact_cover,
    select_cover,
)
from repro.logic.espresso import minimize_heuristic, minimize

__all__ = [
    "Cube",
    "TruthTable",
    "prime_implicants",
    "minimize_exact",
    "essential_primes",
    "greedy_cover",
    "exact_cover",
    "select_cover",
    "minimize_heuristic",
    "minimize",
]
