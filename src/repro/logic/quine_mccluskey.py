"""Exact two-level minimization via Quine-McCluskey.

The paper runs Espresso over truth tables with 2^N rows, N <= 10; at that
size exact prime-implicant generation is cheap, so the exact method is our
default.  Don't-cares participate in prime generation (they let adjacent on
minterms merge) but impose no covering obligation, exactly as in Espresso.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.logic.cube import Cube
from repro.logic.truth_table import TruthTable


def prime_implicants(table: TruthTable) -> List[Cube]:
    """All prime implicants of ``table`` (on-set ∪ dc-set).

    Classic tabular method: start from the minterms of the on and dc sets,
    repeatedly merge cubes adjacent in one position, and keep every cube that
    never merged.  Returns primes sorted for determinism.
    """
    width = table.width
    current: Set[Cube] = {
        Cube.from_minterm(m, width) for m in (table.on_set | table.dc_set)
    }
    primes: Set[Cube] = set()
    while current:
        merged_away: Set[Cube] = set()
        next_level: Set[Cube] = set()
        # Group by mask so only compatible cubes are compared, and inside a
        # mask group bucket by popcount of the value: merges only happen
        # between popcounts k and k+1.
        by_mask: Dict[int, Dict[int, List[Cube]]] = {}
        for cube in current:
            by_mask.setdefault(cube.mask, {}).setdefault(
                bin(cube.value).count("1"), []
            ).append(cube)
        for groups in by_mask.values():
            for count, cubes in groups.items():
                partners = groups.get(count + 1, [])
                for a in cubes:
                    for b in partners:
                        merged = a.merge(b)
                        if merged is not None:
                            merged_away.add(a)
                            merged_away.add(b)
                            next_level.add(merged)
        primes.update(current - merged_away)
        current = next_level
    return sorted(primes)


def _coverage_map(
    primes: List[Cube], required: FrozenSet[int]
) -> Dict[int, List[int]]:
    """For each required minterm, the indices of primes that contain it."""
    coverage: Dict[int, List[int]] = {m: [] for m in required}
    for idx, prime in enumerate(primes):
        for m in required:
            if prime.contains_minterm(m):
                coverage[m].append(idx)
    return coverage


def minimize_exact(table: TruthTable, max_branch_minterms: int = 4096) -> List[Cube]:
    """Minimum-cost prime cover of ``table`` (literal count, then cube count).

    Degenerate cases (empty on-set, or no off-set at all) are handled without
    covering.  Otherwise we take essential primes first, then solve the
    residual covering problem exactly when small (branch and bound) and
    greedily when large.  Guarded by ``max_branch_minterms`` so callers can
    never trip an exponential blow-up by accident.
    """
    from repro.logic.covering import select_cover

    if not table.on_set:
        return []
    if not table.off_set:
        return [Cube.universe(table.width)]
    primes = prime_implicants(table)
    exact = len(table.on_set) <= max_branch_minterms
    return select_cover(primes, table.on_set, exact=exact)
