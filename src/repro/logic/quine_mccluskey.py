"""Exact two-level minimization via Quine-McCluskey.

The paper runs Espresso over truth tables with 2^N rows, N <= 10; at that
size exact prime-implicant generation is cheap, so the exact method is our
default.  Don't-cares participate in prime generation (they let adjacent on
minterms merge) but impose no covering obligation, exactly as in Espresso.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.logic.cube import Cube
from repro.logic.truth_table import TruthTable


def prime_implicants(table: TruthTable) -> List[Cube]:
    """All prime implicants of ``table`` (on-set ∪ dc-set).

    Classic tabular method: start from the minterms of the on and dc sets,
    repeatedly merge cubes adjacent in one position, and keep every cube that
    never merged.  Returns primes sorted for determinism.

    Cubes are handled as raw ``(mask, value)`` integer pairs throughout the
    merge loop.  Two cubes with the same mask merge exactly when their
    values differ in one care bit, so instead of comparing cube pairs we
    probe, for every cube and every care position holding a 0, whether the
    value with that bit set to 1 is also present -- a set lookup instead of
    a quadratic pairing, and no :class:`Cube` objects on the hot path.
    """
    width = table.width
    full = (1 << width) - 1
    current: Dict[int, Set[int]] = {full: set(table.on_set | table.dc_set)}
    primes: Set[Tuple[int, int]] = set()
    while current:
        next_level: Dict[int, Set[int]] = {}
        for mask, values in current.items():
            care_bits = [1 << i for i in range(width) if mask & (1 << i)]
            merged_away: Set[int] = set()
            for value in values:
                for bit in care_bits:
                    if value & bit:
                        continue  # probe upward only: partner has the 1
                    partner = value | bit
                    if partner in values:
                        merged_away.add(value)
                        merged_away.add(partner)
                        next_level.setdefault(mask & ~bit, set()).add(value)
            for value in values - merged_away:
                primes.add((mask, value))
        current = next_level
    return sorted(
        Cube(width=width, value=value, mask=mask) for mask, value in primes
    )


def minimize_exact(table: TruthTable, max_branch_minterms: int = 4096) -> List[Cube]:
    """Minimum-cost prime cover of ``table`` (literal count, then cube count).

    Degenerate cases (empty on-set, or no off-set at all) are handled without
    covering.  Otherwise we take essential primes first, then solve the
    residual covering problem exactly when small (branch and bound) and
    greedily when large.  Guarded by ``max_branch_minterms`` so callers can
    never trip an exponential blow-up by accident.
    """
    from repro.logic.covering import select_cover

    if not table.on_set:
        return []
    if not table.off_set:
        return [Cube.universe(table.width)]
    primes = prime_implicants(table)
    exact = len(table.on_set) <= max_branch_minterms
    return select_cover(primes, table.on_set, exact=exact)
