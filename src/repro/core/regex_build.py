"""Build the regular expression of the predict-1 language (Section 4.5).

Each minimized product term over N history bits becomes a fixed-length
pattern over ``{0, 1, x}``; e.g. the cube ``(1 x)`` becomes ``1(0|1)``.  The
full language must accept *any* input string ending in one of the patterns,
so the terms are alternated and prefixed with ``(0|1)*``:

    {0|1}* { 1{0|1} | {0|1}1 }

(The paper writes the prefix as ``{0|1}`` in its example; the language
intended -- and the one its machines recognize -- is the arbitrary-prefix
closure, which is what we construct.)
"""

from __future__ import annotations

from typing import List, Sequence

from repro.automata import regex as rx
from repro.logic.cube import Cube


def cube_to_regex(cube: Cube) -> rx.Regex:
    """One product term -> the concatenation of its positions.

    Cube positions are taken MSB-first, i.e. oldest history bit first, so
    the regex consumes history in arrival order.
    """
    parts: List[rx.Regex] = []
    for ch in str(cube):
        if ch == "-":
            parts.append(rx.any_symbol())
        else:
            parts.append(rx.Symbol(ch))
    if not parts:
        return rx.Epsilon()
    return rx.concat_all(parts)


def cubes_to_regex(cubes: Sequence[Cube]) -> rx.Regex:
    """Alternation of the per-term regexes (no prefix closure)."""
    if not cubes:
        return rx.EmptySet()
    return rx.alternate_all([cube_to_regex(c) for c in cubes])


def history_language_regex(cubes: Sequence[Cube]) -> rx.Regex:
    """The complete predict-1 language: ``(0|1)* (term_1 | ... | term_k)``.

    An empty cover yields the empty language (the machine never predicts 1);
    a universal cover -- a single all-don't-care cube -- yields ``(0|1)*``
    so the machine always predicts 1.
    """
    if not cubes:
        return rx.EmptySet()
    suffix = cubes_to_regex(cubes)
    if isinstance(suffix, rx.Epsilon):
        # Degenerate zero-width cover: every string qualifies.
        return rx.Star(rx.any_symbol())
    prefix = rx.Star(rx.any_symbol())
    return rx.concat_all([prefix, suffix])
