"""Pattern definition: partition histories into predict-1/0/don't-care sets.

Section 4.3: "We simply pick all the histories that have a probability of
preceding a 1 which is greater than or equal to 1/2 to form the language
'predict 1'."  Two refinements from the paper are supported:

* **bias threshold** -- for confidence estimation the threshold is swept
  above 1/2 to trade coverage for accuracy (a history only joins the
  predict-1 set when ``P[1|h] >= threshold``), producing the Pareto curves
  of Figure 2;
* **don't-care set** -- "by placing only the 1% least seen histories in the
  'don't care' set [we] can reduce the size of the predictor by a factor of
  two with negligible impact on prediction accuracy."  Histories never seen
  in the profile are always don't-cares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.core.markov import MarkovModel
from repro.logic.truth_table import TruthTable
from repro.reliability.errors import DesignError


@dataclass(frozen=True)
class PatternSets:
    """The three history sets, plus the truth-table view the logic
    minimizer consumes."""

    order: int
    predict_one: FrozenSet[int]
    predict_zero: FrozenSet[int]

    @property
    def dont_care(self) -> FrozenSet[int]:
        full = frozenset(range(1 << self.order))
        return full - self.predict_one - self.predict_zero

    def to_truth_table(self) -> TruthTable:
        return TruthTable(
            width=self.order,
            on_set=self.predict_one,
            off_set=self.predict_zero,
        )

    def history_strings(self, which: FrozenSet[int]) -> List[str]:
        return [format(h, f"0{self.order}b") for h in sorted(which)]

    def __str__(self) -> str:
        return (
            f"PatternSets(order={self.order}, "
            f"predict1={self.history_strings(self.predict_one)}, "
            f"predict0={self.history_strings(self.predict_zero)}, "
            f"dontcare={self.history_strings(self.dont_care)})"
        )


def define_patterns(
    model: MarkovModel,
    bias_threshold: float = 0.5,
    dont_care_fraction: float = 0.0,
) -> PatternSets:
    """Partition the model's histories into the three sets.

    ``bias_threshold`` is the minimum ``P[1|h]`` for the predict-1 set; the
    paper's branch predictors use 0.5 (ties predict 1 -- "histories with
    probability equal to 1/2 can go either way", we resolve toward 1), and
    the confidence study sweeps it upward.

    ``dont_care_fraction`` moves the least-seen histories into the
    don't-care set: histories are dropped rarest-first until just before
    the dropped share of total observations would exceed the fraction.
    Unseen histories are don't-cares unconditionally.
    """
    if not 0.0 <= bias_threshold <= 1.0:
        raise DesignError(
            "bias_threshold must be in [0, 1]",
            stage="define_patterns",
            bias_threshold=bias_threshold,
        )
    if not 0.0 <= dont_care_fraction < 1.0:
        raise DesignError(
            "dont_care_fraction must be in [0, 1)",
            stage="define_patterns",
            dont_care_fraction=dont_care_fraction,
        )

    total = model.total_observations
    budget = total * dont_care_fraction
    dropped: set = set()
    if budget > 0 and total > 0:
        # Rarest first; ties broken by history value for determinism.
        by_rarity = sorted(
            model.totals.items(), key=lambda item: (item[1], item[0])
        )
        spent = 0
        for history, count in by_rarity:
            if spent + count > budget:
                break
            dropped.add(history)
            spent += count

    ones: List[int] = []
    zeros: List[int] = []
    for history in model.histories():
        if history in dropped:
            continue
        probability = model.probability_of_one(history)
        assert probability is not None  # histories() only yields seen ones
        if probability >= bias_threshold:
            ones.append(history)
        else:
            zeros.append(history)
    return PatternSets(
        order=model.order,
        predict_one=frozenset(ones),
        predict_zero=frozenset(zeros),
    )


def pattern_sets_summary(sets: PatternSets) -> Tuple[int, int, int]:
    """(``|predict1|``, ``|predict0|``, ``|dontcare|``) for reporting."""
    return len(sets.predict_one), len(sets.predict_zero), len(sets.dont_care)
