"""The paper's primary contribution: the automated FSM-predictor design flow.

Profile trace -> order-N Markov model -> predict-1/0/don't-care partition ->
logic minimization -> regular expression -> NFA -> DFA -> Hopcroft
minimization -> start-state reduction -> Moore-machine predictor
(Sections 4.1-4.7 of Sherwood & Calder, ISCA 2001).
"""

from repro.core.markov import MarkovModel
from repro.core.patterns import PatternSets, define_patterns
from repro.core.regex_build import cubes_to_regex, history_language_regex
from repro.core.pipeline import DesignConfig, DesignResult, FSMDesigner, design_predictor
from repro.core.direct import direct_history_machine

__all__ = [
    "MarkovModel",
    "PatternSets",
    "define_patterns",
    "cubes_to_regex",
    "history_language_regex",
    "DesignConfig",
    "DesignResult",
    "FSMDesigner",
    "design_predictor",
    "direct_history_machine",
]
