"""Cooperative, deadline-based cancellation for the design flow.

The serving layer (:mod:`repro.serve`) hands every request a deadline and
executes it in a pool worker.  A worker cannot be interrupted mid-stage
without risking a half-written cache entry or a poisoned pool, so
cancellation is *cooperative*: the active deadline lives in a
:class:`contextvars.ContextVar` and :class:`~repro.core.pipeline.FSMDesigner`
calls :func:`checkpoint` at every stage boundary.  When the deadline has
passed, the checkpoint raises :class:`~repro.reliability.errors.DeadlineError`
naming the stage that was about to start -- the flow stops between stages,
never inside one, and every invariant (atomic cache writes, single-flight
locks) holds.

With no deadline set (batch CLI, tests, figure sweeps) a checkpoint is a
single ``ContextVar.get`` returning ``None`` -- effectively free, and the
batch paths are byte-identical with the serving layer installed.

The context variable propagates correctly through threads spawned with a
copied context and is per-task under asyncio, so concurrent requests in
one process cannot see each other's deadlines.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.reliability.errors import DeadlineError

#: Absolute ``time.monotonic()`` instant after which the flow must stop;
#: ``None`` (the default) disables every checkpoint.
_DEADLINE: contextvars.ContextVar[Optional[float]] = contextvars.ContextVar(
    "repro_deadline", default=None
)


@contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[None]:
    """Run the block under a deadline ``seconds`` from now.

    ``None`` (or a non-positive value) clears any inherited deadline for
    the block -- a nested scope always wins over an outer one.
    """
    if seconds is None or seconds <= 0:
        token = _DEADLINE.set(None)
    else:
        token = _DEADLINE.set(time.monotonic() + seconds)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def active_deadline() -> Optional[float]:
    """The absolute monotonic deadline of the current context, if any."""
    return _DEADLINE.get()


def remaining() -> Optional[float]:
    """Seconds left before the active deadline; ``None`` when no deadline
    is set.  Can be negative once the deadline has passed."""
    deadline = _DEADLINE.get()
    if deadline is None:
        return None
    return deadline - time.monotonic()


def expired() -> bool:
    deadline = _DEADLINE.get()
    return deadline is not None and time.monotonic() > deadline


def checkpoint(stage: str) -> None:
    """Raise :class:`DeadlineError` when the active deadline has passed.

    Called at every stage boundary of the design flow; the error names
    the stage that was *about to start*, so a timed-out request reports
    exactly how far it got.
    """
    deadline = _DEADLINE.get()
    if deadline is None:
        return
    overshoot = time.monotonic() - deadline
    if overshoot > 0:
        raise DeadlineError(
            f"deadline exceeded {overshoot:.3f}s before stage {stage!r}",
            stage=stage,
            overshoot_s=round(overshoot, 6),
        )
