"""The end-to-end FSM-predictor design flow (Section 4).

``FSMDesigner`` chains every stage of the paper's design chain and records
the intermediate artifacts so that examples, tests, and the experiment
harness can inspect each step:

    trace -> MarkovModel -> PatternSets -> SOP cover (logic minimization)
          -> regular expression -> NFA (Thompson) -> DFA (subset
          construction) -> Hopcroft minimization -> start-state reduction
          -> final MooreMachine

The worked example of Sections 4.2-4.7 (trace ``t``, N=2, final 3-state
machine) is reproduced verbatim in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.automata import regex as rx
from repro.automata.dfa import DFA, subset_construct
from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import BINARY_ALPHABET, MooreMachine
from repro.automata.nfa import NFA, thompson_construct
from repro.automata.startup import startup_state_count, steady_state_reduce
from repro.core.markov import MarkovModel
from repro.core.patterns import PatternSets, define_patterns
from repro.core.regex_build import history_language_regex
from repro.logic.cube import Cube
from repro.logic.espresso import minimize as logic_minimize


@dataclass(frozen=True)
class DesignConfig:
    """Knobs of the design flow.

    ``order``
        History length N (the paper uses 2-10; 9 for the custom branch
        predictors).
    ``bias_threshold``
        Minimum ``P[1|h]`` for the predict-1 set; 0.5 for plain branch
        prediction, swept upward for confidence estimation.
    ``dont_care_fraction``
        Share of the least-seen histories moved to the don't-care set
        (the paper recommends 0.01).
    ``reduce_startup``
        Apply start-state reduction (Section 4.7).  On by default; off is
        only useful for the ablation that measures how many start-up
        states exist.
    ``canonical_history``
        The history that selects the post-reduction start state; defaults
        to all zeros.
    """

    order: int = 4
    bias_threshold: float = 0.5
    dont_care_fraction: float = 0.0
    reduce_startup: bool = True
    canonical_history: Optional[str] = None

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("order must be >= 1")
        if self.canonical_history is not None:
            if len(self.canonical_history) != self.order:
                raise ValueError("canonical_history length must equal order")
            if set(self.canonical_history) - {"0", "1"}:
                raise ValueError("canonical_history must be a 0/1 string")


@dataclass
class DesignResult:
    """Every artifact of one run of the design flow."""

    config: DesignConfig
    model: MarkovModel
    patterns: PatternSets
    cover: List[Cube]
    regex: rx.Regex
    nfa_states: int
    dfa_states: int
    minimized_states: int
    startup_states_removed: int
    machine: MooreMachine

    @property
    def num_states(self) -> int:
        """State count of the final predictor."""
        return self.machine.num_states

    def cover_strings(self) -> List[str]:
        """The minimized patterns in the paper's ``{0,1,x}`` notation."""
        return [str(c).replace("-", "x") for c in self.cover]

    def summary(self) -> str:
        return (
            f"order={self.config.order} "
            f"cover={'|'.join(self.cover_strings()) or '(empty)'} "
            f"nfa={self.nfa_states} dfa={self.dfa_states} "
            f"minimized={self.minimized_states} "
            f"startup_removed={self.startup_states_removed} "
            f"final={self.num_states}"
        )


class FSMDesigner:
    """Runs the automated design flow for one configuration."""

    def __init__(self, config: DesignConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def design_from_trace(self, trace: Sequence[int]) -> DesignResult:
        """Full flow starting from a raw 0/1 trace.

        Memoized on disk: the flow is a pure function of (trace, config),
        so the result is cached under the trace digest, the config, and the
        design-flow version salt (see :mod:`repro.perf.cache`).
        """
        from repro.perf.cache import DESIGN_FLOW_VERSION, cached, digest_of

        try:
            trace_bytes = bytes(bytearray(trace))
        except (TypeError, ValueError):
            trace_bytes = None  # exotic elements: skip caching, still design
        if trace_bytes is None:
            model = MarkovModel.from_trace(trace, self.config.order)
            return self.design_from_model(model)
        key = digest_of(
            "design-from-trace", trace_bytes, self.config, DESIGN_FLOW_VERSION
        )

        def compute() -> DesignResult:
            model = MarkovModel.from_trace(trace, self.config.order)
            return self.design_from_model(model)

        return cached("designs", key, compute)

    def design_from_model(self, model: MarkovModel) -> DesignResult:
        """Full flow starting from a pre-built Markov model (the branch
        flow builds per-branch models during one profiling pass).

        Cached like :meth:`design_from_trace`, keyed by the model's sorted
        count tables instead of a raw trace.
        """
        from repro.perf.cache import DESIGN_FLOW_VERSION, cached, digest_of

        key = digest_of(
            "design-from-model",
            model.order,
            tuple(sorted(model.totals.items())),
            tuple(sorted(model.ones.items())),
            self.config,
            DESIGN_FLOW_VERSION,
        )
        return cached("designs", key, lambda: self._design_from_model(model))

    def _design_from_model(self, model: MarkovModel) -> DesignResult:
        if model.order != self.config.order:
            model = model.truncated(self.config.order)
        patterns = define_patterns(
            model,
            bias_threshold=self.config.bias_threshold,
            dont_care_fraction=self.config.dont_care_fraction,
        )
        return self.design_from_patterns(model, patterns)

    def design_from_patterns(
        self, model: MarkovModel, patterns: PatternSets
    ) -> DesignResult:
        """Remaining flow once the three history sets are fixed."""
        cover = logic_minimize(patterns.to_truth_table())
        regex = history_language_regex(cover)
        machine, nfa_states, dfa_states, minimized_states = self._compile(regex)
        removed = 0
        if self.config.reduce_startup and machine.num_states > 1:
            removed = startup_state_count(machine, self.config.order)
            # Run the reduction even when no states get removed: it also
            # normalizes the start to the canonical-history state, so the
            # predictor powers up as if it had seen that history.
            machine = steady_state_reduce(
                machine,
                self.config.order,
                canonical_history=self.config.canonical_history,
            )
            if removed:
                # Reduction can expose new merges; re-minimize.
                machine = hopcroft_minimize(machine)
        return DesignResult(
            config=self.config,
            model=model,
            patterns=patterns,
            cover=cover,
            regex=regex,
            nfa_states=nfa_states,
            dfa_states=dfa_states,
            minimized_states=minimized_states,
            startup_states_removed=removed,
            machine=machine,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compile(self, regex: rx.Regex):
        """regex -> minimized Moore machine (+ stage state counts)."""
        if isinstance(regex, rx.EmptySet):
            # Never predict 1: the one-state always-0 machine.
            machine = MooreMachine(
                alphabet=BINARY_ALPHABET,
                start=0,
                outputs=(0,),
                transitions=((0, 0),),
            )
            return machine, 0, 1, 1
        nfa = thompson_construct(regex, alphabet=BINARY_ALPHABET)
        dfa = subset_construct(nfa)
        moore = MooreMachine.from_dfa(dfa)
        minimized = hopcroft_minimize(moore)
        return minimized, nfa.num_states, dfa.num_states, minimized.num_states


def design_predictor(
    trace: Sequence[int],
    order: int = 4,
    bias_threshold: float = 0.5,
    dont_care_fraction: float = 0.0,
) -> DesignResult:
    """One-call convenience wrapper: trace in, designed predictor out."""
    config = DesignConfig(
        order=order,
        bias_threshold=bias_threshold,
        dont_care_fraction=dont_care_fraction,
    )
    return FSMDesigner(config).design_from_trace(trace)
