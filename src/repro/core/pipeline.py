"""The end-to-end FSM-predictor design flow (Section 4).

``FSMDesigner`` chains every stage of the paper's design chain and records
the intermediate artifacts so that examples, tests, and the experiment
harness can inspect each step:

    trace -> MarkovModel -> PatternSets -> SOP cover (logic minimization)
          -> regular expression -> NFA (Thompson) -> DFA (subset
          construction) -> Hopcroft minimization -> start-state reduction
          -> final MooreMachine

The worked example of Sections 4.2-4.7 (trace ``t``, N=2, final 3-state
machine) is reproduced verbatim in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.automata import regex as rx
from repro.automata.dfa import DFA, subset_construct
from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import BINARY_ALPHABET, MooreMachine
from repro.automata.nfa import NFA, thompson_construct
from repro.automata.startup import startup_state_count, steady_state_reduce
from repro.core import cancel
from repro.core.markov import MarkovModel
from repro.core.patterns import PatternSets, define_patterns
from repro.core.regex_build import history_language_regex
from repro.logic.cube import Cube
from repro.logic.espresso import minimize as logic_minimize
from repro.obs.tracing import trace_span
from repro.reliability import faults
from repro.reliability.errors import DesignError, TraceError
from repro.reliability.faults import InjectedFault


@dataclass(frozen=True)
class DesignConfig:
    """Knobs of the design flow.

    ``order``
        History length N (the paper uses 2-10; 9 for the custom branch
        predictors).
    ``bias_threshold``
        Minimum ``P[1|h]`` for the predict-1 set; 0.5 for plain branch
        prediction, swept upward for confidence estimation.
    ``dont_care_fraction``
        Share of the least-seen histories moved to the don't-care set
        (the paper recommends 0.01).
    ``reduce_startup``
        Apply start-state reduction (Section 4.7).  On by default; off is
        only useful for the ablation that measures how many start-up
        states exist.
    ``canonical_history``
        The history that selects the post-reduction start state; defaults
        to all zeros.
    ``verify``
        Prove every freshly designed machine against the direct
        construction oracle (:mod:`repro.reliability.verify`) before
        returning it.  Cache *hits* are always verified regardless of
        this flag; ``verify=True`` extends the proof to cold computes.
    """

    order: int = 4
    bias_threshold: float = 0.5
    dont_care_fraction: float = 0.0
    reduce_startup: bool = True
    canonical_history: Optional[str] = None
    verify: bool = False

    def __post_init__(self) -> None:
        # Boundary validation with structured errors (DesignError is a
        # ValueError, so pre-hierarchy callers keep working).
        if not isinstance(self.order, int) or self.order < 1:
            raise DesignError(
                "order must be an integer >= 1",
                stage="config",
                order=self.order,
            )
        for name in ("bias_threshold", "dont_care_fraction"):
            value = getattr(self, name)
            try:
                value = float(value)
            except (TypeError, ValueError):
                raise DesignError(
                    f"{name} must be a real number",
                    stage="config",
                    **{name: value},
                ) from None
            if math.isnan(value) or math.isinf(value):
                raise DesignError(
                    f"{name} must be finite, not {value!r}",
                    stage="config",
                    **{name: value},
                )
        if not 0.0 <= self.bias_threshold <= 1.0:
            raise DesignError(
                "bias_threshold must be in [0, 1]",
                stage="config",
                bias_threshold=self.bias_threshold,
            )
        if not 0.0 <= self.dont_care_fraction < 1.0:
            raise DesignError(
                "dont_care_fraction must be in [0, 1)",
                stage="config",
                dont_care_fraction=self.dont_care_fraction,
            )
        if self.canonical_history is not None:
            if len(self.canonical_history) != self.order:
                raise DesignError(
                    "canonical_history length must equal order",
                    stage="config",
                    canonical_history=self.canonical_history,
                    order=self.order,
                )
            if set(self.canonical_history) - {"0", "1"}:
                raise DesignError(
                    "canonical_history must be a 0/1 string",
                    stage="config",
                    canonical_history=self.canonical_history,
                )

    def cache_fields(self) -> tuple:
        """The semantic knobs, for cache keys.  ``verify`` is excluded:
        it changes what is *checked*, never what is produced, and must
        not split the key space."""
        return (
            self.order,
            self.bias_threshold,
            self.dont_care_fraction,
            self.reduce_startup,
            self.canonical_history,
        )


@dataclass
class DesignResult:
    """Every artifact of one run of the design flow."""

    config: DesignConfig
    model: MarkovModel
    patterns: PatternSets
    cover: List[Cube]
    regex: rx.Regex
    nfa_states: int
    dfa_states: int
    minimized_states: int
    startup_states_removed: int
    machine: MooreMachine

    @property
    def num_states(self) -> int:
        """State count of the final predictor."""
        return self.machine.num_states

    def cover_strings(self) -> List[str]:
        """The minimized patterns in the paper's ``{0,1,x}`` notation."""
        return [str(c).replace("-", "x") for c in self.cover]

    def summary(self) -> str:
        return (
            f"order={self.config.order} "
            f"cover={'|'.join(self.cover_strings()) or '(empty)'} "
            f"nfa={self.nfa_states} dfa={self.dfa_states} "
            f"minimized={self.minimized_states} "
            f"startup_removed={self.startup_states_removed} "
            f"final={self.num_states}"
        )


class FSMDesigner:
    """Runs the automated design flow for one configuration."""

    def __init__(self, config: DesignConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def design_from_trace(self, trace: Sequence[int]) -> DesignResult:
        """Full flow starting from a raw 0/1 trace.

        Memoized on disk: the flow is a pure function of (trace, config),
        so the result is cached under the trace digest, the config, and the
        design-flow version salt (see :mod:`repro.perf.cache`).

        Degenerate traces have defined behaviour (see DESIGN.md): an empty
        trace, or one too short to observe a single history->outcome
        transition (``len(trace) <= order``), raises :class:`TraceError`;
        a constant all-0/all-1 trace designs the one-state constant
        predictor.
        """
        from repro.perf.cache import DESIGN_FLOW_VERSION, cached, digest_of

        self._validate_trace(trace)
        try:
            trace_bytes = bytes(bytearray(trace))
        except (TypeError, ValueError):
            trace_bytes = None  # exotic elements: skip caching, still design
        if trace_bytes is None:
            model = MarkovModel.from_trace(trace, self.config.order)
            return self.design_from_model(model)
        key = digest_of(
            "design-from-trace",
            trace_bytes,
            self.config.cache_fields(),
            DESIGN_FLOW_VERSION,
        )

        def compute() -> DesignResult:
            cancel.checkpoint("markov")
            with trace_span(
                "design.markov",
                trace_len=len(trace),
                order=self.config.order,
            ) as span:
                model = MarkovModel.from_trace(trace, self.config.order)
                span.set(histories=len(model.totals))
            return self._design_from_model(model)

        with trace_span(
            "design.flow",
            source="trace",
            order=self.config.order,
            bias_threshold=self.config.bias_threshold,
        ) as span:
            result = cached("designs", key, compute, validate=_design_hit_ok)
            span.set(final_states=result.num_states)
        return self._finish(result)

    def design_from_model(self, model: MarkovModel) -> DesignResult:
        """Full flow starting from a pre-built Markov model (the branch
        flow builds per-branch models during one profiling pass).

        Cached like :meth:`design_from_trace`, keyed by the model's sorted
        count tables instead of a raw trace.
        """
        from repro.perf.cache import DESIGN_FLOW_VERSION, cached, digest_of

        key = digest_of(
            "design-from-model",
            model.order,
            tuple(sorted(model.totals.items())),
            tuple(sorted(model.ones.items())),
            self.config.cache_fields(),
            DESIGN_FLOW_VERSION,
        )
        with trace_span(
            "design.flow",
            source="model",
            order=self.config.order,
            bias_threshold=self.config.bias_threshold,
        ) as span:
            result = cached(
                "designs",
                key,
                lambda: self._design_from_model(model),
                validate=_design_hit_ok,
            )
            span.set(final_states=result.num_states)
        return self._finish(result)

    def _validate_trace(self, trace: Sequence[int]) -> None:
        try:
            length = len(trace)
        except TypeError:
            raise TraceError(
                "trace must be a sequence of 0/1 outcomes",
                stage="profile",
                trace_type=type(trace).__name__,
            ) from None
        if length == 0:
            raise TraceError("empty trace", stage="profile", order=self.config.order)
        if length <= self.config.order:
            raise TraceError(
                f"trace of length {length} observes no history->outcome "
                f"transition at order {self.config.order}; provide at "
                "least order+1 outcomes",
                stage="profile",
                trace_length=length,
                order=self.config.order,
            )

    def _finish(self, result: DesignResult) -> DesignResult:
        if self.config.verify:
            from repro.reliability.verify import verify_design

            cancel.checkpoint("verify")
            verify_design(result)
        return result

    def _design_from_model(self, model: MarkovModel) -> DesignResult:
        self._stage("define_patterns")
        if model.order != self.config.order:
            model = model.truncated(self.config.order)
        with trace_span(
            "design.patterns",
            order=self.config.order,
            histories=len(model.totals),
        ) as span:
            patterns = define_patterns(
                model,
                bias_threshold=self.config.bias_threshold,
                dont_care_fraction=self.config.dont_care_fraction,
            )
            span.set(
                predict_one=len(patterns.predict_one),
                predict_zero=len(patterns.predict_zero),
            )
        return self.design_from_patterns(model, patterns)

    def design_from_patterns(
        self, model: MarkovModel, patterns: PatternSets
    ) -> DesignResult:
        """Remaining flow once the three history sets are fixed."""
        self._stage("logic_minimize")
        with trace_span(
            "design.cover",
            order=self.config.order,
            on_set=len(patterns.predict_one),
            off_set=len(patterns.predict_zero),
        ) as span:
            cover = logic_minimize(patterns.to_truth_table())
            span.set(product_terms=len(cover))
        self._stage("regex")
        with trace_span("design.regex", product_terms=len(cover)):
            regex = history_language_regex(cover)
        self._stage("compile")
        machine, nfa_states, dfa_states, minimized_states = self._compile(regex)
        removed = 0
        cancel.checkpoint("startup_reduce")
        if self.config.reduce_startup and machine.num_states > 1:
            with trace_span(
                "design.startup",
                order=self.config.order,
                states_in=machine.num_states,
            ) as span:
                removed = startup_state_count(machine, self.config.order)
                # Run the reduction even when no states get removed: it
                # also normalizes the start to the canonical-history
                # state, so the predictor powers up as if it had seen
                # that history.
                machine = steady_state_reduce(
                    machine,
                    self.config.order,
                    canonical_history=self.config.canonical_history,
                )
                if removed:
                    # Reduction can expose new merges; re-minimize.
                    machine = hopcroft_minimize(machine)
                span.set(removed=removed, states_out=machine.num_states)
        return DesignResult(
            config=self.config,
            model=model,
            patterns=patterns,
            cover=cover,
            regex=regex,
            nfa_states=nfa_states,
            dfa_states=dfa_states,
            minimized_states=minimized_states,
            startup_states_removed=removed,
            machine=machine,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stage(self, name: str) -> None:
        """Stage boundary: the cooperative cancellation checkpoint (a
        served request whose deadline has passed stops *between* stages,
        see :mod:`repro.core.cancel`) and host of the ``stage_fail``
        fault point.  An injected stage failure surfaces as a structured
        :class:`DesignError` naming the stage -- the contract every sweep
        relies on (fail loudly, never return a wrong machine)."""
        cancel.checkpoint(name)
        try:
            faults.fire("stage_fail")
        except InjectedFault as exc:
            raise DesignError(
                f"stage {name!r} failed",
                stage=name,
                order=self.config.order,
                bias_threshold=self.config.bias_threshold,
            ) from exc

    def _compile(self, regex: rx.Regex):
        """regex -> minimized Moore machine (+ stage state counts)."""
        if isinstance(regex, rx.EmptySet):
            # Never predict 1: the one-state always-0 machine.
            machine = MooreMachine(
                alphabet=BINARY_ALPHABET,
                start=0,
                outputs=(0,),
                transitions=((0, 0),),
            )
            return machine, 0, 1, 1
        with trace_span("design.nfa") as span:
            nfa = thompson_construct(regex, alphabet=BINARY_ALPHABET)
            span.set(states=nfa.num_states)
        with trace_span("design.dfa", nfa_states=nfa.num_states) as span:
            dfa = subset_construct(nfa)
            span.set(states=dfa.num_states)
        with trace_span("design.minimize", dfa_states=dfa.num_states) as span:
            moore = MooreMachine.from_dfa(dfa)
            minimized = hopcroft_minimize(moore)
            span.set(states=minimized.num_states)
        return minimized, nfa.num_states, dfa.num_states, minimized.num_states


def _design_hit_ok(value) -> bool:
    """Cache-hit validator: a loaded ``DesignResult`` must still prove
    equivalent to the oracle.  An entry that unpickles fine but carries a
    wrong machine (bit-rot, version skew, tampering) would otherwise
    silently poison every figure that reads it; rejecting it here makes
    the cache layer quarantine and recompute instead."""
    from repro.reliability.verify import design_ok

    return isinstance(value, DesignResult) and design_ok(value)


def design_predictor(
    trace: Sequence[int],
    order: int = 4,
    bias_threshold: float = 0.5,
    dont_care_fraction: float = 0.0,
    verify: bool = False,
) -> DesignResult:
    """One-call convenience wrapper: trace in, designed predictor out."""
    config = DesignConfig(
        order=order,
        bias_threshold=bias_threshold,
        dont_care_fraction=dont_care_fraction,
        verify=verify,
    )
    return FSMDesigner(config).design_from_trace(trace)
