"""Direct history-automaton construction: the pipeline's test oracle.

The language built by the pipeline is suffix-determined: for any input of
length >= N, membership depends only on the last N bits.  A machine for such
a language can be written down directly -- one state per length-N history,
transitions by shifting, output = cover evaluated on the history -- and
Hopcroft-minimizing that machine gives the *canonical* minimal steady-state
predictor.

The design flow of the paper must therefore produce a machine equivalent to
this one on all strings of length >= N; the test suite checks exactly that.
This module is not part of the paper's flow (the paper goes through the
regular expression), it exists to cross-validate it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import BINARY_ALPHABET, MooreMachine
from repro.logic.cube import Cube, cover_contains


def direct_history_machine(
    cover: Sequence[Cube],
    order: int,
    start_history: str = "",
    minimize: bool = True,
) -> MooreMachine:
    """Build the 2^N-state shift-register machine for ``cover`` and
    optionally Hopcroft-minimize it.

    ``start_history`` selects the start state (default: all zeros).  State
    integers encode the history with bit 0 = newest outcome, matching
    :mod:`repro.core.markov`.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    for cube in cover:
        if cube.width != order:
            raise ValueError(
                f"cube width {cube.width} does not match order {order}"
            )
    if not start_history:
        start_history = "0" * order
    if len(start_history) != order:
        raise ValueError("start_history length must equal order")

    n_states = 1 << order
    mask = n_states - 1
    outputs: List[int] = []
    rows: List[Tuple[int, int]] = []
    for history in range(n_states):
        outputs.append(1 if cover_contains(list(cover), history) else 0)
        rows.append((((history << 1) | 0) & mask, ((history << 1) | 1) & mask))
    machine = MooreMachine(
        alphabet=BINARY_ALPHABET,
        start=int(start_history, 2),
        outputs=tuple(outputs),
        transitions=tuple(rows),
    )
    if minimize:
        machine = hopcroft_minimize(machine)
    return machine
