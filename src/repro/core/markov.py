"""Order-N Markov models of binary behaviour traces (Section 4.2).

"An Nth order Markov Model is a table of size 2^N which contains
P[1 | last N inputs] for each of the possible 2^N last N inputs in the
trace."  The model is the statistical summary every later pipeline stage
works from; it stores raw counts so the pattern-definition stage can both
compute biases and identify rarely-seen histories for the don't-care set.

Histories are encoded as integers: bit 0 is the **most recent** outcome and
bit N-1 the oldest, so the integer read MSB-first as a bit string shows the
history in arrival order (the paper's notation).  Example: after the inputs
``0, 1`` (oldest first) with N=2 the history integer is ``0b01``, printed
``"01"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.reliability.errors import TraceError

try:  # numpy accelerates batch training but is never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

# Below this many observations the per-element loop beats array setup.
_BATCH_THRESHOLD = 1024


@dataclass
class MarkovModel:
    """Counts of next-bit outcomes conditioned on the last-N-bit history.

    Sparse by design: the paper notes the models "can be compressed down
    significantly by only storing non-zero entries" (Section 7.3), which is
    what a dict of counts gives us.
    """

    order: int
    ones: Dict[int, int] = field(default_factory=dict)
    totals: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.order < 0:
            raise ValueError("order must be non-negative")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Sequence[int], order: int) -> "MarkovModel":
        """Build a model from a 0/1 trace by sliding a window of length
        ``order`` and counting the bit that follows each window."""
        model = cls(order=order)
        model.update_from_trace(trace)
        return model

    @classmethod
    def from_bit_string(cls, bits: str, order: int) -> "MarkovModel":
        """Convenience: train from a string like ``"00001000..."``; spaces
        are ignored (the paper groups traces in fours for readability)."""
        cleaned = bits.replace(" ", "")
        return cls.from_trace([int(ch) for ch in cleaned], order)

    def update_from_trace(self, trace: Sequence[int]) -> None:
        """Accumulate an additional trace into the model."""
        n = self.order
        if len(trace) <= n:
            return
        if _np is not None and len(trace) - n >= _BATCH_THRESHOLD:
            bits = _as_bit_array(trace)
            if bits is not None:
                # History bit j-1 holds the outcome j steps back, so the
                # whole history column is a sum of shifted trace slices.
                length = bits.shape[0]
                outcomes = bits[n:]
                hist = _np.zeros(length - n, dtype=_np.int64)
                for j in range(1, n + 1):
                    hist += bits[n - j : length - j] << (j - 1)
                self._accumulate_keys((hist << 1) | outcomes)
                return
        mask = (1 << n) - 1
        history = 0
        for bit in trace[:n]:
            history = ((history << 1) | _check_bit(bit)) & mask
        ones = self.ones
        totals = self.totals
        for bit in trace[n:]:
            bit = _check_bit(bit)
            totals[history] = totals.get(history, 0) + 1
            if bit:
                ones[history] = ones.get(history, 0) + 1
            history = ((history << 1) | bit) & mask

    def observe(self, history: int, outcome: int) -> None:
        """Record a single (history, next-bit) observation.

        Used by the branch-prediction flow, where each static branch has its
        own model fed with the *global* history at the time the branch
        executed (Section 7.3).
        """
        self.totals[history] = self.totals.get(history, 0) + 1
        if _check_bit(outcome):
            self.ones[history] = self.ones.get(history, 0) + 1

    def observe_trace(
        self, histories: Sequence[int], outcomes: Sequence[int]
    ) -> None:
        """Batch :meth:`observe`: accumulate aligned (history, outcome)
        columns in one pass.  The branch-training flow preconverts whole
        traces to arrays and feeds per-branch slices here instead of calling
        ``observe`` once per executed branch.
        """
        if len(histories) != len(outcomes):
            raise ValueError("histories and outcomes must be the same length")
        if _np is not None and len(histories) >= _BATCH_THRESHOLD:
            hist = _np.asarray(histories, dtype=_np.int64)
            outs = _as_bit_array(outcomes)
            if outs is not None:
                self._accumulate_keys((hist << 1) | outs)
                return
        for history, outcome in zip(histories, outcomes):
            self.observe(int(history), int(outcome))

    def _accumulate_keys(self, keys: "_np.ndarray") -> None:
        """Fold composite ``(history << 1) | outcome`` keys into the count
        dicts.  ``np.unique`` reduces millions of observations to one dict
        update per distinct (history, outcome) pair; counts land as plain
        Python ints.
        """
        uniq, counts = _np.unique(keys, return_counts=True)
        totals = self.totals
        ones = self.ones
        for key, count in zip(uniq.tolist(), counts.tolist()):
            history = key >> 1
            totals[history] = totals.get(history, 0) + count
            if key & 1:
                ones[history] = ones.get(history, 0) + count

    def merge(self, other: "MarkovModel") -> "MarkovModel":
        """Combine two models of the same order (used for aggregate traces
        and cross-training, Section 6.3)."""
        if other.order != self.order:
            raise ValueError("cannot merge models of different order")
        merged = MarkovModel(order=self.order)
        for src in (self, other):
            for h, c in src.totals.items():
                merged.totals[h] = merged.totals.get(h, 0) + c
            for h, c in src.ones.items():
                merged.ones[h] = merged.ones.get(h, 0) + c
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_histories(self) -> int:
        """Number of distinct histories observed."""
        return len(self.totals)

    @property
    def total_observations(self) -> int:
        return sum(self.totals.values())

    def count(self, history: int) -> int:
        """How many times ``history`` was observed."""
        return self.totals.get(history, 0)

    def probability_of_one(self, history: int) -> Optional[float]:
        """``P[1 | history]``, or None when the history was never seen."""
        total = self.totals.get(history, 0)
        if total == 0:
            return None
        return self.ones.get(history, 0) / total

    def histories(self) -> Iterator[int]:
        """Observed histories in ascending integer order."""
        return iter(sorted(self.totals))

    def history_string(self, history: int) -> str:
        """Render a history integer as the paper's bit-string notation
        (oldest bit first)."""
        if self.order == 0:
            return ""
        return format(history, f"0{self.order}b")

    def as_table(self) -> List[Tuple[str, int, Optional[float]]]:
        """Rows of (history string, count, P[1|history]) for reporting."""
        return [
            (self.history_string(h), self.count(h), self.probability_of_one(h))
            for h in self.histories()
        ]

    def truncated(self, order: int) -> "MarkovModel":
        """Project the model onto a shorter history length.

        Counts for histories sharing the same most-recent ``order`` bits are
        summed; used to sweep history lengths from one profiling pass.
        """
        if order > self.order:
            raise ValueError("cannot extend a Markov model; re-profile instead")
        if order == self.order:
            return self
        mask = (1 << order) - 1
        smaller = MarkovModel(order=order)
        for h, total in self.totals.items():
            key = h & mask
            smaller.totals[key] = smaller.totals.get(key, 0) + total
        for h, ones in self.ones.items():
            key = h & mask
            smaller.ones[key] = smaller.ones.get(key, 0) + ones
        return smaller

    def __str__(self) -> str:
        lines = [f"MarkovModel(order={self.order}, observations={self.total_observations})"]
        for history, count, prob in self.as_table():
            prob_text = "n/a" if prob is None else f"{prob:.3f}"
            lines.append(f"  P[1|{history}] = {prob_text}  (seen {count}x)")
        return "\n".join(lines)


def _check_bit(bit: int) -> int:
    if bit not in (0, 1):
        raise TraceError(
            f"trace element {bit!r} is not a 0/1 outcome", stage="profile"
        )
    return bit


def _as_bit_array(trace: Sequence[int]) -> Optional["_np.ndarray"]:
    """Convert ``trace`` to a validated int64 0/1 array, or ``None`` when
    the input is not array-convertible (caller falls back to the loop)."""
    try:
        bits = _np.asarray(trace, dtype=_np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    if bits.ndim != 1:
        return None
    invalid = (bits != 0) & (bits != 1)
    if invalid.any():
        bad = bits[invalid][0]
        raise TraceError(
            f"trace element {int(bad)!r} is not a 0/1 outcome", stage="profile"
        )
    return bits


def history_push(history: int, bit: int, order: int) -> int:
    """Shift ``bit`` into ``history`` as the newest outcome (helper shared
    by the runtime predictors and the trainers)."""
    mask = (1 << order) - 1
    return ((history << 1) | bit) & mask
