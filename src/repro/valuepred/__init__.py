"""Value prediction substrate (Section 6).

A two-delta stride value predictor with a 2K-entry tagged table (the
paper's configuration: "a table size of 2K entries ... value prediction
for only load instructions"), a last-value baseline, and the confidence
estimation harness that produces correctness traces, drives SUD/resetting/
FSM confidence estimators, and measures the accuracy/coverage trade-off of
Figure 2.
"""

from repro.valuepred.stride import TwoDeltaStridePredictor, StrideEntry
from repro.valuepred.last_value import LastValuePredictor
from repro.valuepred.confidence import (
    ConfidenceOutcome,
    ConfidenceStats,
    correctness_trace,
    evaluate_counter_confidence,
    evaluate_fsm_confidence,
    sud_configurations,
)

__all__ = [
    "TwoDeltaStridePredictor",
    "StrideEntry",
    "LastValuePredictor",
    "ConfidenceOutcome",
    "ConfidenceStats",
    "correctness_trace",
    "evaluate_counter_confidence",
    "evaluate_fsm_confidence",
    "sud_configurations",
]
