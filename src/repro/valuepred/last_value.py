"""Last-value prediction (Lipasti & Shen) -- the simplest baseline.

Predicts that a load returns the same value it returned last time.  Not
part of the paper's measured configuration (it uses two-delta stride) but
included as the natural baseline for tests and examples, and because the
two predictors bracket the behaviour classes of the synthetic workloads
(constant loads favour last-value; array walks favour stride).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class _Entry:
    tag: int
    value: int


class LastValuePredictor:
    """Direct-mapped tagged last-value table."""

    def __init__(self, num_entries: int = 2048, pc_shift: int = 2):
        if num_entries < 1 or num_entries & (num_entries - 1):
            raise ValueError("num_entries must be a positive power of two")
        self.num_entries = num_entries
        self.pc_shift = pc_shift
        self._entries: List[Optional[_Entry]] = [None] * num_entries

    def index_of(self, pc: int) -> int:
        return (pc >> self.pc_shift) & (self.num_entries - 1)

    def _tag_of(self, pc: int) -> int:
        return (pc >> self.pc_shift) // self.num_entries

    def predict(self, pc: int) -> Optional[int]:
        entry = self._entries[self.index_of(pc)]
        if entry is not None and entry.tag == self._tag_of(pc):
            return entry.value
        return None

    def update(self, pc: int, actual: int) -> None:
        index = self.index_of(pc)
        self._entries[index] = _Entry(tag=self._tag_of(pc), value=actual)

    def reset(self) -> None:
        self._entries = [None] * self.num_entries

    @property
    def storage_bits(self) -> int:
        tag_bits, value_bits = 18, 32
        return self.num_entries * (tag_bits + value_bits)
