"""Confidence estimation for value prediction (Sections 6.2-6.4).

This module produces everything Figure 2 needs:

* ``correctness_trace`` -- run the two-delta stride predictor over a load
  stream and emit, per executed load, whether it was correctly value
  predicted (the 0/1 trace the FSM designer trains on) together with the
  table entry it mapped to;
* ``evaluate_counter_confidence`` / ``evaluate_fsm_confidence`` -- replay
  a correctness trace against one confidence unit *per table entry* (the
  paper: 2K entries means 2K confidence counters) and measure the
  accuracy/coverage trade-off;
* ``sud_configurations`` -- the paper's SUD sweep: "counters with a
  maximum value (number of states) of 5, 10, 20, and 40, miss penalties of
  1, 2, 5, 10, and full, and ... thresholds of 50% 80% and 90%".

Accuracy is "the percent of value predictions that were marked as
confident, that were in fact correct"; coverage is "the percent of correct
value predictions that were allowed through by the confidence predictor".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.automata.moore import MooreMachine
from repro.predictors.resetting import ResettingCounter
from repro.predictors.sud import FULL_DECREMENT, SaturatingUpDownCounter
from repro.valuepred.stride import TwoDeltaStridePredictor
from repro.workloads.trace import LoadTrace


@dataclass(frozen=True)
class ConfidenceOutcome:
    """One replayed load: which entry it hit and whether the value
    prediction was correct."""

    entry_index: int
    correct: bool


@dataclass
class ConfidenceStats:
    """Accuracy/coverage accounting for one confidence configuration."""

    label: str = ""
    total: int = 0
    correct_total: int = 0
    confident: int = 0
    confident_correct: int = 0

    def record(self, is_confident: bool, is_correct: bool) -> None:
        self.total += 1
        if is_correct:
            self.correct_total += 1
        if is_confident:
            self.confident += 1
            if is_correct:
                self.confident_correct += 1

    @property
    def accuracy(self) -> float:
        """Of the predictions marked confident, the fraction correct."""
        if self.confident == 0:
            return 1.0  # vacuously accurate: nothing was let through
        return self.confident_correct / self.confident

    @property
    def coverage(self) -> float:
        """Of the correct predictions, the fraction marked confident."""
        if self.correct_total == 0:
            return 0.0
        return self.confident_correct / self.correct_total

    def __str__(self) -> str:
        return (
            f"{self.label or 'confidence'}: accuracy={self.accuracy:.3f} "
            f"coverage={self.coverage:.3f} (n={self.total})"
        )


def correctness_trace(
    loads: LoadTrace, num_entries: int = 2048
) -> Tuple[List[int], List[int]]:
    """Run the stride predictor over ``loads``.

    Returns ``(entry_indices, correct_bits)`` -- parallel lists, one
    element per dynamic load.  A table miss (no prediction available)
    counts as an incorrect prediction, matching how a real pipeline could
    not have used the value.
    """
    predictor = TwoDeltaStridePredictor(num_entries=num_entries)
    indices: List[int] = []
    bits: List[int] = []
    for pc, actual in loads:
        predicted = predictor.predict(pc)
        bits.append(1 if predicted == actual else 0)
        indices.append(predictor.index_of(pc))
        predictor.update(pc, actual)
    return indices, bits


def _banked_confidence(
    indices: Sequence[int],
    bits: Sequence[int],
    machine: MooreMachine,
    label: str,
) -> Optional[ConfidenceStats]:
    """Replay an entry-banked confidence sweep through
    :func:`repro.perf.batched.banked_replay`, or return ``None`` when the
    batched path is unavailable or the inputs are not clean 0/1 columns.
    """
    from repro.perf import batched

    if (
        batched._np is None
        or not batched.batch_enabled()
        or len(indices) < batched.BATCH_THRESHOLD
    ):
        return None
    np = batched._np
    try:
        idx = np.asarray(indices, dtype=np.int64)
        ev = np.asarray(bits, dtype=np.int64)
    except (TypeError, ValueError, OverflowError):
        return None
    if idx.ndim != 1 or ev.ndim != 1 or idx.shape != ev.shape:
        return None
    if not ((ev == 0) | (ev == 1)).all():
        return None
    result = batched.banked_replay(
        machine.transitions, machine.start, idx, ev
    )
    outputs = np.asarray(machine.outputs, dtype=np.int64)
    confident = outputs[result.pre_states] == 1
    n = int(ev.shape[0])
    return ConfidenceStats(
        label=label,
        total=n,
        correct_total=int(ev.sum()),
        confident=int(confident.sum()),
        confident_correct=int((ev[confident] == 1).sum()),
    )


def evaluate_counter_confidence(
    indices: Sequence[int],
    bits: Sequence[int],
    counter_factory: Callable[[], object],
    label: str = "",
) -> ConfidenceStats:
    """Replay a correctness trace with one counter per table entry.

    ``counter_factory`` builds anything with ``predict() -> bool`` and
    ``update(event: bool)`` (SUD counters, resetting counters, or an
    :class:`~repro.predictors.fsm.FSMPredictor`).  Factories whose units
    expose ``as_moore()`` (SUD and resetting counters) take the banked
    fast path: the whole entry table advances through one
    :func:`~repro.perf.batched.banked_replay` call.
    """
    probe = counter_factory()
    as_moore = getattr(probe, "as_moore", None)
    if callable(as_moore):
        stats = _banked_confidence(indices, bits, as_moore(), label)
        if stats is not None:
            return stats
    stats = ConfidenceStats(label=label)
    units: Dict[int, object] = {}
    for index, bit in zip(indices, bits):
        unit = units.get(index)
        if unit is None:
            unit = counter_factory()
            units[index] = unit
        stats.record(unit.predict(), bool(bit))
        unit.update(bool(bit))
    return stats


def evaluate_fsm_confidence(
    indices: Sequence[int],
    bits: Sequence[int],
    machine: MooreMachine,
    label: str = "",
) -> ConfidenceStats:
    """Replay a correctness trace with one FSM state register per entry.

    Functionally ``evaluate_counter_confidence`` with an FSM unit, but
    implemented on the raw transition table because this inner loop runs
    millions of times in the Figure 2 sweep; with numpy present the whole
    bank advances through one :func:`~repro.perf.batched.banked_replay`.
    """
    batched_stats = _banked_confidence(indices, bits, machine, label)
    if batched_stats is not None:
        return batched_stats
    stats = ConfidenceStats(label=label)
    outputs = machine.outputs
    transitions = machine.transitions
    start = machine.start
    states: Dict[int, int] = {}
    get_state = states.get
    for index, bit in zip(indices, bits):
        state = get_state(index, start)
        stats.record(bool(outputs[state]), bool(bit))
        states[index] = transitions[state][bit]
    return stats


def sud_configurations() -> List[Tuple[str, Callable[[], SaturatingUpDownCounter]]]:
    """The paper's SUD sweep as (label, factory) pairs.

    Max values 5/10/20/40 states, wrong decrements 1/2/5/10/full, and
    confidence thresholds at 50%, 80% and 90% of the saturation value.
    """
    configurations: List[Tuple[str, Callable[[], SaturatingUpDownCounter]]] = []
    for num_states in (5, 10, 20, 40):
        max_value = num_states - 1
        for decrement in (1, 2, 5, 10, FULL_DECREMENT):
            for threshold_pct in (50, 80, 90):
                threshold = max(1, round(max_value * threshold_pct / 100))
                dec_label = "full" if decrement == FULL_DECREMENT else str(decrement)
                label = f"sud-m{max_value}-d{dec_label}-t{threshold_pct}"

                def factory(
                    max_value: int = max_value,
                    decrement: int = decrement,
                    threshold: int = threshold,
                ) -> SaturatingUpDownCounter:
                    return SaturatingUpDownCounter(
                        max_value=max_value,
                        increment=1,
                        decrement=decrement,
                        threshold=threshold,
                    )

                configurations.append((label, factory))
    return configurations


def resetting_configurations() -> List[Tuple[str, Callable[[], ResettingCounter]]]:
    """Resetting-counter sweep (Jacobsen et al.), used by the extended
    confidence comparison."""
    configurations: List[Tuple[str, Callable[[], ResettingCounter]]] = []
    for max_value in (4, 8, 16, 32):
        for threshold in sorted({max_value // 2, (max_value * 4) // 5, max_value}):
            if threshold < 1:
                continue
            label = f"reset-m{max_value}-t{threshold}"

            def factory(
                max_value: int = max_value, threshold: int = threshold
            ) -> ResettingCounter:
                return ResettingCounter(max_value=max_value, threshold=threshold)

            configurations.append((label, factory))
    return configurations
