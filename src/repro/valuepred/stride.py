"""The two-delta stride value predictor (Eickemeyer & Vassiliadis;
Sazeides & Smith; paper Section 6.1).

"A stride value predictor keeps track of not only the last value brought
in by an instruction, but also the difference between that value and the
previous value ... We chose to use the two-delta stride predictor, which
only replaces the predicted stride with a new stride if that new stride
has been seen twice in a row.  Each entry contains a tag, the predicted
value, the predicted stride, the last stride seen, and a saturating up and
down confidence counter."

The confidence field is deliberately *external* here: the table exposes
per-entry indices so any confidence estimator (SUD counter, resetting
counter, or a designed FSM) can be attached by the harness -- that is the
whole point of the paper's Section 6 study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class StrideEntry:
    """One table entry of the two-delta predictor."""

    tag: int
    value: int
    stride: int
    last_stride: int


class TwoDeltaStridePredictor:
    """Direct-mapped, tagged, 2K-entry by default (the paper's size)."""

    def __init__(self, num_entries: int = 2048, pc_shift: int = 2):
        if num_entries < 1 or num_entries & (num_entries - 1):
            raise ValueError("num_entries must be a positive power of two")
        self.num_entries = num_entries
        self.pc_shift = pc_shift
        self._entries: List[Optional[StrideEntry]] = [None] * num_entries

    # ------------------------------------------------------------------
    def index_of(self, pc: int) -> int:
        """The table slot a load maps to (also the confidence-counter
        index, since there is one confidence unit per entry)."""
        return (pc >> self.pc_shift) & (self.num_entries - 1)

    def _tag_of(self, pc: int) -> int:
        return (pc >> self.pc_shift) // self.num_entries

    def lookup(self, pc: int) -> Optional[StrideEntry]:
        entry = self._entries[self.index_of(pc)]
        if entry is not None and entry.tag == self._tag_of(pc):
            return entry
        return None

    def predict(self, pc: int) -> Optional[int]:
        """Predicted value, or None on a table/tag miss."""
        entry = self.lookup(pc)
        if entry is None:
            return None
        return entry.value + entry.stride

    def update(self, pc: int, actual: int) -> None:
        """Train with the actual loaded value (two-delta stride rule)."""
        index = self.index_of(pc)
        tag = self._tag_of(pc)
        entry = self._entries[index]
        if entry is None or entry.tag != tag:
            self._entries[index] = StrideEntry(
                tag=tag, value=actual, stride=0, last_stride=0
            )
            return
        new_stride = actual - entry.value
        # Two-delta: adopt the stride only when seen twice in a row.
        if new_stride == entry.last_stride:
            entry.stride = new_stride
        entry.last_stride = new_stride
        entry.value = actual

    def reset(self) -> None:
        self._entries = [None] * self.num_entries

    @property
    def storage_bits(self) -> int:
        """Tag + value + stride + last stride per entry (the confidence
        counter is accounted separately by whoever attaches one)."""
        tag_bits, value_bits, stride_bits = 18, 32, 16
        return self.num_entries * (tag_bits + value_bits + 2 * stride_bits)
