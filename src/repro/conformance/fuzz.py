"""Seeded structured fuzzing of the design pipeline.

The fuzzer draws (trace, design-knob) cases from five structured trace
families -- the behaviours real workloads throw at a predictor, plus
adversarial anti-patterns -- and runs each through the differential
runner (:mod:`repro.conformance.diff`).  Everything is derived from one
integer seed: case ``i`` of seed ``s`` uses ``random.Random(f"{s}:{i}")``,
so a run is reproducible bit-for-bit from ``(seed, budget)`` alone.

Reproducibility is also *recorded*: before any case runs, every case of
the session is written to a replay file (one JSON line per case, schema
``repro.fuzz/1``, canonical key order) -- the same seed always produces a
byte-identical replay file, and a single line pasted into
``python -m repro conformance minimize --replay FILE`` re-runs that case.
Divergences are delta-debugged and written as counterexample artifacts
(schema ``repro.counterexample/1``) next to the replay file.

Knobs: ``REPRO_FUZZ_SEED`` (default 0) and ``REPRO_FUZZ_BUDGET`` (number
of cases, default 25); the CLI's ``--seed``/``--budget`` override both.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.conformance.diff import Divergence, check_conformance, minimize_counterexample
from repro.obs.metrics import metrics
from repro.obs.tracing import trace_span

FUZZ_SCHEMA = "repro.fuzz/1"
COUNTEREXAMPLE_SCHEMA = "repro.counterexample/1"
DEFAULT_BUDGET = 25

#: Trace families, in the order the generator cycles through them.  The
#: ``source_*`` families draw their bits from registered trace sources
#: (:mod:`repro.workloads.sources`) and record the generating spec as
#: provenance in the replay file.
FAMILIES = (
    "uniform",
    "periodic",
    "bursty",
    "markov",
    "adversarial",
    "source_kmp",
    "source_pybc",
)

_ORDERS = (1, 2, 3, 4, 5)
_THRESHOLDS = (0.5, 0.5, 0.6, 0.75, 0.9)  # 0.5 twice: the common case
_DC_FRACTIONS = (0.0, 0.0, 0.01, 0.05)


def fuzz_seed(default: int = 0) -> int:
    """``REPRO_FUZZ_SEED`` (the CLI overrides via arguments)."""
    raw = os.environ.get("REPRO_FUZZ_SEED", "").strip()
    return int(raw) if raw else default


def fuzz_budget(default: int = DEFAULT_BUDGET) -> int:
    """``REPRO_FUZZ_BUDGET``: how many cases one fuzz session runs."""
    raw = os.environ.get("REPRO_FUZZ_BUDGET", "").strip()
    return int(raw) if raw else default


# ----------------------------------------------------------------------
# Trace families
# ----------------------------------------------------------------------


def gen_uniform(rng: random.Random, length: int) -> List[int]:
    """IID bits with a randomly chosen bias."""
    bias = rng.choice((0.1, 0.3, 0.5, 0.7, 0.9))
    return [1 if rng.random() < bias else 0 for _ in range(length)]


def gen_periodic(rng: random.Random, length: int) -> List[int]:
    """A short random pattern tiled to length (loop-branch behaviour)."""
    period = rng.randint(1, 8)
    pattern = [rng.randint(0, 1) for _ in range(period)]
    return [pattern[i % period] for i in range(length)]


def gen_bursty(rng: random.Random, length: int) -> List[int]:
    """Alternating runs of 0s and 1s with geometric run lengths."""
    bits: List[int] = []
    value = rng.randint(0, 1)
    while len(bits) < length:
        run = 1
        while run < 32 and rng.random() < 0.7:
            run += 1
        bits.extend([value] * run)
        value ^= 1
    return bits[:length]


def gen_markov(rng: random.Random, length: int) -> List[int]:
    """Bits from a random order-k Markov source (k independent of the
    design order, so the model under- or over-fits at random)."""
    k = rng.randint(1, 3)
    table = [rng.random() for _ in range(1 << k)]
    mask = (1 << k) - 1
    history = rng.randrange(1 << k)
    bits: List[int] = []
    for _ in range(length):
        bit = 1 if rng.random() < table[history] else 0
        bits.append(bit)
        history = ((history << 1) | bit) & mask
    return bits


def gen_adversarial(rng: random.Random, length: int) -> List[int]:
    """Anti-patterns aimed at stage edge cases: strict alternation (every
    history maximally biased), a 50/50 threshold straddle (P[1|h] exactly
    at the tie), a long constant run followed by alternation (start-up
    vs steady state), and a de Bruijn-style walk touching every history."""
    kind = rng.randrange(4)
    if kind == 0:
        first = rng.randint(0, 1)
        return [(i + first) % 2 for i in range(length)]
    if kind == 1:
        # Each 2-bit history is followed by 0 and 1 equally often.
        block = [0, 0, 1, 1]
        return [block[i % 4] for i in range(length)]
    if kind == 2:
        run = length // 2
        value = rng.randint(0, 1)
        tail = [(i + value + 1) % 2 for i in range(length - run)]
        return [value] * run + tail
    k = rng.randint(2, 4)
    history = 0
    bits = []
    for _ in range(length):
        # Greedy de-Bruijn-ish walk: prefer the successor extending the
        # least-recently emitted history.
        bit = (history >> (k - 1)) ^ 1
        bits.append(bit & 1)
        history = ((history << 1) | (bit & 1)) & ((1 << k) - 1)
    return bits


_GENERATORS = {
    "uniform": gen_uniform,
    "periodic": gen_periodic,
    "bursty": gen_bursty,
    "markov": gen_markov,
    "adversarial": gen_adversarial,
}


def gen_source_kmp(rng: random.Random, length: int) -> "Tuple[List[int], str]":
    """Bits from a randomly configured KMP analytic source; returns the
    bits plus a provenance string (canonical spec + generation seed)."""
    from repro.workloads.sources import create_source

    pattern = rng.choice(("b", "ab", "aab", "abb", "aabab"))
    variant = rng.choice(("mp", "kmp"))
    if rng.random() < 0.5:
        q = rng.choice(("1/5", "3/10", "1/2", "7/10"))
        spec = f"kmp:pattern={pattern},q={q},text=iid,variant={variant}"
    else:
        word = rng.choice(("ab", "aab", "abb"))
        spec = (
            f"kmp:pattern={pattern},text=periodic,"
            f"variant={variant},word={word}"
        )
    seed = rng.randrange(1 << 16)
    source = create_source(spec)
    bits = source.generate(length, seed).outcome_bits()
    return bits, f"{source.spec_string()}#seed={seed}"


def gen_source_pybc(rng: random.Random, length: int) -> "Tuple[List[int], str]":
    """Bits from a bytecode-interpreter source program."""
    from repro.workloads.sources import create_source

    program = rng.choice(("sort", "dictprobe", "tokenize"))
    seed = rng.randrange(1 << 16)
    source = create_source(f"pybytecode:program={program}")
    bits = source.generate(length, seed).outcome_bits()
    return bits, f"{source.spec_string()}#seed={seed}"


#: Source-derived families: generators returning (bits, provenance).
_SOURCE_GENERATORS = {
    "source_kmp": gen_source_kmp,
    "source_pybc": gen_source_pybc,
}


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzCase:
    """One fully specified fuzz input: a trace plus the design knobs."""

    index: int
    family: str
    order: int
    bias_threshold: float
    dont_care_fraction: float
    bits: str
    #: Provenance for source-derived cases: "spec#seed=N" naming the
    #: registered source that generated the bits ("" for the classic
    #: families, and then omitted from the JSON so their replay lines
    #: are unchanged).
    source: str = ""

    @property
    def trace(self) -> List[int]:
        return [int(ch) for ch in self.bits]

    def to_json(self) -> Dict[str, Any]:
        record = {
            "schema": FUZZ_SCHEMA,
            "index": self.index,
            "family": self.family,
            "order": self.order,
            "bias_threshold": self.bias_threshold,
            "dont_care_fraction": self.dont_care_fraction,
            "bits": self.bits,
        }
        if self.source:
            record["source"] = self.source
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "FuzzCase":
        schema = record.get("schema", FUZZ_SCHEMA)
        if schema not in (FUZZ_SCHEMA, COUNTEREXAMPLE_SCHEMA):
            raise ValueError(f"unknown fuzz-case schema {schema!r}")
        return cls(
            index=int(record.get("index", 0)),
            family=str(record.get("family", "replay")),
            order=int(record["order"]),
            bias_threshold=float(record.get("bias_threshold", 0.5)),
            dont_care_fraction=float(record.get("dont_care_fraction", 0.0)),
            bits=str(record["bits"]),
            source=str(record.get("source", "")),
        )

    def run(self) -> Optional[Divergence]:
        return check_conformance(
            self.trace,
            order=self.order,
            bias_threshold=self.bias_threshold,
            dont_care_fraction=self.dont_care_fraction,
        )


def generate_case(seed: int, index: int) -> FuzzCase:
    """Case ``index`` of fuzz session ``seed`` -- a pure function of both
    (string-seeded PRNGs hash deterministically across platforms)."""
    rng = random.Random(f"repro-fuzz:{seed}:{index}")
    family = FAMILIES[index % len(FAMILIES)]
    order = rng.choice(_ORDERS)
    length = max(order + 1, rng.randint(32, 220))
    provenance = ""
    if family in _SOURCE_GENERATORS:
        bits, provenance = _SOURCE_GENERATORS[family](rng, length)
    else:
        bits = _GENERATORS[family](rng, length)
    return FuzzCase(
        index=index,
        family=family,
        order=order,
        bias_threshold=rng.choice(_THRESHOLDS),
        dont_care_fraction=rng.choice(_DC_FRACTIONS),
        bits="".join(str(b) for b in bits),
        source=provenance,
    )


def _dumps(record: Dict[str, Any]) -> str:
    """Canonical JSON: sorted keys, no whitespace -- the byte-identical
    replay-file contract rides on this."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def replay_path(out_dir: Path, seed: int) -> Path:
    return Path(out_dir) / f"replay_{seed}.jsonl"


def load_replay(path: Path) -> List[FuzzCase]:
    """Parse a replay file (JSONL, one case per line) or a single
    counterexample/case JSON document."""
    text = Path(path).read_text()
    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        record = None
    if isinstance(record, dict):
        return [FuzzCase.from_json(record)]
    cases = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            cases.append(FuzzCase.from_json(json.loads(line)))
    return cases


# ----------------------------------------------------------------------
# The fuzz session
# ----------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Outcome of one fuzz session."""

    seed: int
    budget: int
    replay_file: Path
    divergences: List[Divergence]
    counterexample_files: List[Path]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.divergences)} DIVERGENT"
        return (
            f"fuzz seed={self.seed} budget={self.budget}: {status} "
            f"(replay: {self.replay_file})"
        )


def run_fuzz(
    seed: Optional[int] = None,
    budget: Optional[int] = None,
    out_dir: str = ".",
) -> FuzzReport:
    """Run one fuzz session: write the replay file, run every case, and
    minimize + persist any divergence as a counterexample artifact."""
    seed = fuzz_seed() if seed is None else seed
    budget = fuzz_budget() if budget is None else budget
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    cases = [generate_case(seed, index) for index in range(budget)]
    replay = replay_path(out, seed)
    replay.write_text(
        "".join(_dumps(case.to_json()) + "\n" for case in cases)
    )

    divergences: List[Divergence] = []
    artifacts: List[Path] = []
    with trace_span("conformance.fuzz", seed=seed, budget=budget) as span:
        for case in cases:
            metrics().incr("conformance.fuzz.cases")
            metrics().incr(f"conformance.fuzz.family.{case.family}")
            divergence = case.run()
            if divergence is None:
                continue
            minimized = minimize_counterexample(divergence)
            divergences.append(minimized)
            record = minimized.to_json()
            record["family"] = case.family
            record["index"] = case.index
            record["original_bits"] = case.bits
            artifact = out / f"counterexample_{seed}_{case.index}.json"
            artifact.write_text(
                json.dumps(record, sort_keys=True, indent=2) + "\n"
            )
            artifacts.append(artifact)
        span.set(divergences=len(divergences))
    return FuzzReport(
        seed=seed,
        budget=budget,
        replay_file=replay,
        divergences=divergences,
        counterexample_files=artifacts,
    )
