"""Differential-oracle conformance testing for the design pipeline.

Four pieces, layered:

- :mod:`repro.conformance.oracles` -- slow, obviously-correct reference
  implementations of every pipeline stage (brute-force cover checks,
  language enumeration, table-driven Moore simulation, exhaustive
  reachability).
- :mod:`repro.conformance.diff` -- the stage-by-stage differential
  runner: real pipeline vs. oracle, first diverging stage, delta-debugged
  minimal counterexample.
- :mod:`repro.conformance.fuzz` -- seeded structured fuzzing over trace
  families and design knobs, with byte-identical replay files and
  persisted counterexample artifacts.
- :mod:`repro.conformance.golden` -- schema-versioned golden vectors in
  ``tests/golden/`` regenerated via ``python -m repro conformance regen``.
"""

from repro.conformance.diff import (
    Divergence,
    STAGES,
    check_conformance,
    minimize_counterexample,
    run_stages,
)
from repro.conformance.fuzz import (
    FuzzCase,
    FuzzReport,
    fuzz_budget,
    fuzz_seed,
    generate_case,
    load_replay,
    run_fuzz,
)
from repro.conformance.golden import (
    GOLDEN_SCHEMA,
    GoldenCase,
    check_golden_vectors,
    check_oracle_corpus,
    compute_vector,
    golden_corpus,
    golden_dir,
    write_golden_vectors,
)

__all__ = [
    "Divergence",
    "STAGES",
    "check_conformance",
    "minimize_counterexample",
    "run_stages",
    "FuzzCase",
    "FuzzReport",
    "fuzz_budget",
    "fuzz_seed",
    "generate_case",
    "load_replay",
    "run_fuzz",
    "GOLDEN_SCHEMA",
    "GoldenCase",
    "check_golden_vectors",
    "check_oracle_corpus",
    "compute_vector",
    "golden_corpus",
    "golden_dir",
    "write_golden_vectors",
]
