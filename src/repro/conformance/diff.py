"""Stage-by-stage differential runner with counterexample minimization.

``check_conformance(trace, order, ...)`` re-runs the paper's design chain
one stage at a time -- the *same* stage functions :class:`FSMDesigner`
composes, but uncached, so nothing can mask a wrong artifact -- and
checks each artifact against its oracle from
:mod:`repro.conformance.oracles`.  The first disagreement is returned as
a :class:`Divergence` naming the stage; ``None`` means every stage
conforms.

``minimize_counterexample`` then delta-debugs the trace by bisection
(classic ddmin over complements): chunks of the trace are removed while
the *same stage* keeps diverging, converging to a 1-minimal trace that
still exhibits the bug.  Because every probe re-runs the whole chain,
deterministic fault plans (probability specs, see
:mod:`repro.reliability.faults`) minimize just as well as real bugs --
which is how the selfcheck battery proves this machinery can catch a
wrong-but-plausible Hopcroft.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.automata.dfa import DFA, subset_construct
from repro.automata.hopcroft import hopcroft_minimize
from repro.automata.moore import BINARY_ALPHABET, MooreMachine
from repro.automata.nfa import NFA, thompson_construct
from repro.automata.startup import startup_state_count, steady_state_core, steady_state_reduce
from repro.conformance import oracles
from repro.core.markov import MarkovModel
from repro.core.patterns import PatternSets, define_patterns
from repro.core.regex_build import history_language_regex
from repro.logic.cube import Cube
from repro.logic.espresso import minimize as logic_minimize
from repro.obs.metrics import metrics
from repro.obs.tracing import trace_span

#: Stage names, in pipeline order, as reported in divergences.
STAGES = (
    "core.markov",
    "core.patterns",
    "logic.cover",
    "core.regex",
    "automata.nfa",
    "automata.dfa",
    "automata.hopcroft",
    "automata.startup",
    "sim.outputs",
    "sim.optimal",
)

#: Stage 10 searches every <=k-state machine; past this trace length the
#: exhaustive sweep is not worth paying per conformance probe.
OPTIMAL_CHECK_MAX_BITS = 4096


@dataclass
class Divergence:
    """One pipeline stage disagreeing with its oracle."""

    stage: str
    detail: str
    order: int
    bias_threshold: float
    dont_care_fraction: float
    trace: List[int]

    def describe(self) -> str:
        bits = "".join(str(b) for b in self.trace)
        return (
            f"stage {self.stage} diverged from its oracle\n"
            f"  detail : {self.detail}\n"
            f"  config : order={self.order} "
            f"bias_threshold={self.bias_threshold} "
            f"dont_care_fraction={self.dont_care_fraction}\n"
            f"  trace  : {bits} ({len(self.trace)} bits)"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "repro.counterexample/1",
            "stage": self.stage,
            "detail": self.detail,
            "order": self.order,
            "bias_threshold": self.bias_threshold,
            "dont_care_fraction": self.dont_care_fraction,
            "bits": "".join(str(b) for b in self.trace),
        }


@dataclass
class StageArtifacts:
    """Every intermediate artifact of one uncached stage-by-stage run."""

    model: MarkovModel
    patterns: PatternSets
    cover: List[Cube]
    regex: Any
    nfa: Optional[NFA]
    dfa: Optional[DFA]
    minimized: MooreMachine
    final: MooreMachine
    startup_removed: int


def run_stages(
    trace: Sequence[int],
    order: int,
    bias_threshold: float = 0.5,
    dont_care_fraction: float = 0.0,
) -> StageArtifacts:
    """The design chain, stage by stage, with no caching and no
    verification -- exactly the composition of
    :meth:`FSMDesigner.design_from_patterns`, exposed so the differential
    runner (and the golden-vector generator) can inspect every rung."""
    model = MarkovModel.from_trace(trace, order)
    patterns = define_patterns(
        model,
        bias_threshold=bias_threshold,
        dont_care_fraction=dont_care_fraction,
    )
    cover = logic_minimize(patterns.to_truth_table())
    regex = history_language_regex(cover)
    if not cover:
        # Mirrors FSMDesigner._compile's EmptySet special case.
        nfa = None
        dfa = None
        minimized = MooreMachine(
            alphabet=BINARY_ALPHABET,
            start=0,
            outputs=(0,),
            transitions=((0, 0),),
        )
    else:
        nfa = thompson_construct(regex, alphabet=BINARY_ALPHABET)
        dfa = subset_construct(nfa)
        minimized = hopcroft_minimize(MooreMachine.from_dfa(dfa))
    final = minimized
    removed = 0
    if minimized.num_states > 1:
        removed = startup_state_count(minimized, order)
        final = steady_state_reduce(minimized, order)
        if removed:
            final = hopcroft_minimize(final)
    return StageArtifacts(
        model=model,
        patterns=patterns,
        cover=cover,
        regex=regex,
        nfa=nfa,
        dfa=dfa,
        minimized=minimized,
        final=final,
        startup_removed=removed,
    )


def check_conformance(
    trace: Sequence[int],
    order: int,
    bias_threshold: float = 0.5,
    dont_care_fraction: float = 0.0,
    max_len: Optional[int] = None,
) -> Optional[Divergence]:
    """Run every stage against its oracle; return the first divergence.

    ``max_len`` bounds the language-enumeration oracles (default
    ``order + 2``: long enough to exercise the arbitrary-prefix closure
    and every length-``order`` suffix).
    """
    trace = [int(b) for b in trace]
    if max_len is None:
        max_len = order + 2

    def diverge(stage: str, detail: str) -> Divergence:
        metrics().incr("conformance.divergences")
        metrics().incr(f"conformance.divergences.{stage}")
        return Divergence(
            stage=stage,
            detail=detail,
            order=order,
            bias_threshold=bias_threshold,
            dont_care_fraction=dont_care_fraction,
            trace=list(trace),
        )

    with trace_span(
        "conformance.check", order=order, trace_len=len(trace)
    ) as span:
        metrics().incr("conformance.checks")
        art = run_stages(
            trace,
            order,
            bias_threshold=bias_threshold,
            dont_care_fraction=dont_care_fraction,
        )

        # Stage 1: Markov profiling vs the naive recount.
        totals, ones = oracles.oracle_markov_counts(trace, order)
        if dict(art.model.totals) != totals or dict(art.model.ones) != ones:
            return diverge(
                "core.markov",
                f"model counts totals={dict(art.model.totals)} "
                f"ones={dict(art.model.ones)} != oracle "
                f"totals={totals} ones={ones}",
            )

        # Stage 2: pattern partition vs the naive re-partition.
        want_one, want_zero = oracles.oracle_pattern_sets(
            totals, ones, bias_threshold, dont_care_fraction
        )
        if (
            art.patterns.predict_one != want_one
            or art.patterns.predict_zero != want_zero
        ):
            return diverge(
                "core.patterns",
                f"predict1={sorted(art.patterns.predict_one)} "
                f"predict0={sorted(art.patterns.predict_zero)} != oracle "
                f"predict1={sorted(want_one)} predict0={sorted(want_zero)}",
            )

        # Stage 3: minimized SOP cover, brute-forced over all minterms.
        issues = oracles.cover_violations(
            art.cover, order, art.patterns.predict_one, art.patterns.predict_zero
        )
        if issues:
            return diverge("logic.cover", "; ".join(issues))

        # Stage 4: the regex denotes exactly the suffix language of the
        # cover (checked by enumerating both languages up to max_len).
        want_lang = oracles.expected_history_language(art.cover, order, max_len)
        regex_lang = oracles.regex_language(art.regex, max_len)
        if regex_lang != want_lang:
            return diverge(
                "core.regex",
                _language_delta("regex", regex_lang, "specification", want_lang),
            )

        # Stages 5-6: NFA and DFA accept the same enumerated language.
        if art.nfa is not None:
            nfa_lang = oracles.machine_language(art.nfa, max_len)
            if nfa_lang != regex_lang:
                return diverge(
                    "automata.nfa",
                    _language_delta("nfa", nfa_lang, "regex", regex_lang),
                )
            dfa_lang = oracles.machine_language(art.dfa, max_len)
            if dfa_lang != nfa_lang:
                return diverge(
                    "automata.dfa",
                    _language_delta("dfa", dfa_lang, "nfa", nfa_lang),
                )

            # Stage 7: Hopcroft must return exactly the canonical minimal
            # machine the pairwise oracle builds.
            moore = MooreMachine.from_dfa(art.dfa)
            want_min = oracles.oracle_minimal_moore(moore)
            if art.minimized != want_min:
                if not oracles.machines_agree_from(
                    art.minimized, art.minimized.start, want_min, want_min.start
                ):
                    detail = (
                        f"minimized machine ({art.minimized.num_states} "
                        f"states) is not equivalent to the oracle minimal "
                        f"machine ({want_min.num_states} states)"
                    )
                elif not oracles.is_minimal(art.minimized):
                    detail = (
                        f"minimized machine has {art.minimized.num_states} "
                        f"states but is not minimal (oracle: "
                        f"{want_min.num_states})"
                    )
                else:
                    detail = "minimized machine is not in canonical form"
                return diverge("automata.hopcroft", detail)

        # Stage 8: start-state reduction vs exhaustive reachability.
        if art.minimized.num_states > 1:
            want_steady = oracles.oracle_steady_states(art.minimized, order)
            got_steady = steady_state_core(art.minimized, order)
            if got_steady != want_steady:
                return diverge(
                    "automata.startup",
                    f"steady-state core {sorted(got_steady)} != exhaustive "
                    f"reachability {sorted(want_steady)}",
                )
            # Semantic check: after any length-N history the reduced
            # machine must track the unreduced one forever.
            for history in range(1 << order):
                bits = format(history, f"0{order}b")
                a = _run_bits_state(art.final, bits)
                b = _run_bits_state(art.minimized, bits)
                if not oracles.machines_agree_from(
                    art.final, a, art.minimized, b
                ):
                    return diverge(
                        "automata.startup",
                        f"reduced machine disagrees with the unreduced one "
                        f"after history {bits}",
                    )
            if art.final.num_states > art.minimized.num_states:
                return diverge(
                    "automata.startup",
                    f"reduction grew the machine: {art.final.num_states} > "
                    f"{art.minimized.num_states} states",
                )

        # Stage 9: the compiled batch kernels and trace_outputs agree with
        # the table-driven simulation on the full trace.
        want_outputs = oracles.oracle_moore_outputs(art.final, trace)
        got_outputs = art.final.trace_outputs("".join(str(b) for b in trace))
        if got_outputs != want_outputs:
            return diverge(
                "sim.outputs",
                "trace_outputs disagrees with the table-driven simulation "
                f"at index {_first_mismatch(got_outputs, want_outputs)}",
            )
        compiled = [int(o) for o in art.final.compile().run_bits(trace)]
        if compiled != want_outputs:
            return diverge(
                "sim.outputs",
                "compiled run_bits disagrees with the table-driven "
                f"simulation at index {_first_mismatch(compiled, want_outputs)}",
            )

        # Stage 10: the designed machine can never beat the exact optimal
        # k-state predictor oracle at its own size.  A violation means
        # either the pipeline miscounted its machine's predictions or the
        # oracle's exhaustive search is wrong -- both are bugs worth a
        # divergence.  Skipped for machines larger than the searchable
        # ``REPRO_OPT_KMAX`` (the bound only applies at sizes the oracle
        # actually searched) and for very long traces.
        from repro.predictors.optimal import opt_kmax, optimal_predictors

        kmax = opt_kmax()
        num_states = art.final.num_states
        if (
            trace
            and num_states <= kmax
            and len(trace) <= OPTIMAL_CHECK_MAX_BITS
        ):
            hits, lookups = oracles.oracle_prediction_counts(art.final, trace)
            misses = lookups - hits
            bound = optimal_predictors(trace, kmax=num_states)[
                num_states
            ].mispredicts
            if misses < bound:
                return diverge(
                    "sim.optimal",
                    f"designed {num_states}-state machine mispredicts "
                    f"{misses} times, beating the exhaustive optimum "
                    f"{bound} for {num_states} states -- impossible unless "
                    "a simulation or search stage is wrong",
                )
        span.set(stages=len(STAGES), final_states=art.final.num_states)
    return None


def _run_bits_state(machine: MooreMachine, bits: str) -> int:
    state = machine.start
    for ch in bits:
        state = machine.transitions[state][int(ch)]
    return state


def _first_mismatch(got: Sequence[int], want: Sequence[int]) -> int:
    for i, (g, w) in enumerate(zip(got, want)):
        if g != w:
            return i
    return min(len(got), len(want))


def _language_delta(
    got_name: str, got: frozenset, want_name: str, want: frozenset
) -> str:
    extra = sorted(got - want, key=lambda s: (len(s), s))[:5]
    missing = sorted(want - got, key=lambda s: (len(s), s))[:5]
    parts = [f"{got_name} language != {want_name} language"]
    if extra:
        parts.append(f"extra={extra}")
    if missing:
        parts.append(f"missing={missing}")
    return " ".join(parts)


# ----------------------------------------------------------------------
# Counterexample minimization (ddmin over the trace)
# ----------------------------------------------------------------------


def minimize_counterexample(divergence: Divergence) -> Divergence:
    """Delta-debug the divergence's trace by bisection.

    Classic ddmin: split the trace into ``n`` chunks and try dropping one
    chunk at a time, keeping any candidate on which the *same stage*
    still diverges; granularity doubles when no chunk can be dropped.
    The result is 1-minimal at chunk size 1: removing any single bit
    makes the divergence disappear (or move to a different stage).
    """

    def probe(candidate: List[int]) -> Optional[Divergence]:
        if len(candidate) <= divergence.order:
            return None  # too short to design from
        try:
            found = check_conformance(
                candidate,
                order=divergence.order,
                bias_threshold=divergence.bias_threshold,
                dont_care_fraction=divergence.dont_care_fraction,
            )
        except Exception:
            return None  # a crash is a different bug; don't chase it here
        if found is not None and found.stage == divergence.stage:
            return found
        return None

    current = list(divergence.trace)
    best = divergence
    n = 2
    with trace_span(
        "conformance.minimize",
        diverging_stage=divergence.stage,
        trace_len=len(current),
    ) as span:
        while len(current) >= 2:
            chunk = math.ceil(len(current) / n)
            reduced = False
            for i in range(n):
                candidate = current[: i * chunk] + current[(i + 1) * chunk :]
                if len(candidate) == len(current):
                    continue
                found = probe(candidate)
                if found is not None:
                    current = candidate
                    best = found
                    n = max(n - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if n >= len(current):
                    break
                n = min(len(current), 2 * n)
        span.set(minimized_len=len(current))
    metrics().incr("conformance.minimized")
    return best
