"""Conformance check #11: KMP analytic sources vs their closed forms.

The KMP trace sources (:mod:`repro.workloads.kmp`) are the only
workloads in the repo whose *optimal* mispredict rate is an exact
rational number derived independently of any simulation -- a stationary
distribution over the matcher's comparison chain, or exactly zero on a
periodic text.  That makes them ground truth the pipeline cannot game:

* the exhaustive opt(k) oracle (:mod:`repro.predictors.optimal`), run at
  the chain's own state count, must land within sampling tolerance of
  the closed-form rate -- if it is *better*, the trace generator is
  broken (no predictor beats the information-theoretic floor); if it is
  *worse*, the oracle search is broken;
* the full design pipeline, given enough history, must get close to the
  same floor -- a regression anywhere in model -> cover -> minimize
  shows up as a rate gap on these traces before it shows up anywhere
  else.

Tolerances are sampling slack for the pinned (seed, length), generous
enough to be version-stable (string-seeded PRNGs are platform-stable,
so in practice the measured numbers are exact constants) but tight
enough that a real regression -- a off-by-one in simulation, a broken
transition -- blows straight through them.  Cases are restricted to
chains with at most 3 states so the pure-python (no-numpy) CI leg can
afford the exhaustive oracle search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: Designed machines may exceed the floor by this much on top of the
#: per-case sampling tolerance: the pipeline predicts from finite-order
#: history statistics, not the matcher chain, so a small model-mismatch
#: overhead is expected and correct.
DESIGN_SLACK = 0.03


@dataclass(frozen=True)
class KmpCase:
    """One pinned analytic configuration."""

    name: str
    spec: str
    length: int
    seed: int
    order: int  # design-pipeline history length
    tolerance: float  # |measured - closed| bound for the oracle


CASES = (
    # Single-char pattern over biased IID text: the stream is IID
    # Bernoulli, closed form min(q, 1-q) = 0.3, one chain state.
    KmpCase(
        name="iid_b_q03",
        spec="kmp:pattern=b,q=3/10,text=iid,variant=mp",
        length=4096,
        seed=11,
        order=2,
        tolerance=0.03,
    ),
    # The worked example: pattern "ab" over fair IID text; the 3-state
    # comparison chain yields exactly 2/5.
    KmpCase(
        name="iid_ab_q05",
        spec="kmp:pattern=ab,q=1/2,text=iid,variant=mp",
        length=4096,
        seed=12,
        order=4,
        tolerance=0.03,
    ),
    # Strong failure function on the same pattern (identical chain for
    # "ab" -- exercises the kmp-variant code path end to end).
    KmpCase(
        name="iid_ab_q05_kmp",
        spec="kmp:pattern=ab,q=1/2,text=iid,variant=kmp",
        length=4096,
        seed=13,
        order=4,
        tolerance=0.03,
    ),
    # Periodic text: the outcome stream is eventually periodic with
    # cycle length 2, so the floor is exactly 0 (startup mispredicts
    # only).
    KmpCase(
        name="periodic_b_ab",
        spec="kmp:pattern=b,text=periodic,variant=mp,word=ab",
        length=2048,
        seed=0,
        order=2,
        tolerance=0.01,
    ),
)


def check_kmp_corpus(kmax: Optional[int] = None) -> List[str]:
    """Run every pinned case; returns human-readable violations (empty
    means the measured optimum and the designed machine both honor the
    closed form).  ``kmax`` caps the oracle search (cases needing more
    states than the cap are skipped, so a constrained environment can
    still run the cheap ones)."""
    from repro.conformance.diff import run_stages
    from repro.predictors.optimal import (
        MAX_KMAX,
        machine_mispredicts,
        optimal_predictors,
    )
    from repro.workloads.sources import create_source

    cap = MAX_KMAX if kmax is None else min(kmax, MAX_KMAX)
    issues: List[str] = []
    for case in CASES:
        source = create_source(case.spec)
        closed_rate, k_needed = source.closed_form()
        if k_needed > cap:
            continue
        trace = source.generate(case.length, case.seed)
        bits = trace.outcome_bits()
        closed = float(closed_rate)

        optima = optimal_predictors(bits, kmax=k_needed)
        measured = optima[k_needed].miss_rate
        if abs(measured - closed) > case.tolerance:
            issues.append(
                f"{case.name}: opt({k_needed}) rate {measured:.4f} is "
                f"outside closed form {closed:.4f} "
                f"+/- {case.tolerance} ({case.spec})"
            )

        # The designed machine is allowed DESIGN_SLACK on both sides of
        # the sampling tolerance: above for model-mismatch overhead,
        # below because a machine fitted *on this sample* can beat the
        # asymptotic floor by its in-hindsight luck on 4096 bits.
        art = run_stages(bits, case.order, bias_threshold=0.5)
        designed = machine_mispredicts(art.final, bits) / len(bits)
        if designed < closed - case.tolerance - DESIGN_SLACK:
            issues.append(
                f"{case.name}: designed machine rate {designed:.4f} beats "
                f"the closed-form floor {closed:.4f} ({case.spec})"
            )
        elif designed > closed + case.tolerance + DESIGN_SLACK:
            issues.append(
                f"{case.name}: designed machine rate {designed:.4f} misses "
                f"the closed-form floor {closed:.4f} by more than "
                f"{case.tolerance + DESIGN_SLACK} ({case.spec})"
            )
    return issues
