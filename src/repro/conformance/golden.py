"""Schema-versioned golden conformance vectors.

A golden vector freezes what the pipeline produces for one (trace,
config): the canonical minimized machine (start state, per-state outputs
and transitions -- Hopcroft's breadth-first renumbering makes this form
unique), the stage state counts, and the predictor's hit count on its own
training trace.  The vectors live in ``tests/golden/*.json`` (schema
``repro.golden/1``) and are regenerated with
``python -m repro conformance regen`` (or ``--regen``); regeneration on an
unchanged tree is byte-identical, so any diff under ``tests/golden/`` is a
behaviour change that must be reviewed, never noise.

The corpus reuses the deterministic fuzz trace families with pinned seeds
plus the paper's worked trace and the degenerate constant trace, and every
corpus case doubles as a differential-runner input for
``python -m repro conformance run``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.conformance import fuzz as fuzz_mod
from repro.conformance.diff import run_stages
from repro.conformance.oracles import oracle_prediction_counts

GOLDEN_SCHEMA = "repro.golden/1"
GOLDEN_SOURCES_SCHEMA = "repro.golden-sources/1"

#: The paper's worked trace (Section 4.2).
PAPER_TRACE_BITS = "000010001011110111101111"


@dataclass(frozen=True)
class GoldenCase:
    """One named corpus entry: a deterministic trace plus design knobs."""

    name: str
    group: str
    bits: str
    order: int
    bias_threshold: float = 0.5
    dont_care_fraction: float = 0.0

    @property
    def trace(self) -> List[int]:
        return [int(ch) for ch in self.bits]


def _family_bits(family: str, seed: str, length: int) -> str:
    import random

    generator = fuzz_mod._GENERATORS[family]
    bits = generator(random.Random(f"repro-golden:{seed}"), length)
    return "".join(str(b) for b in bits)


def golden_corpus() -> List[GoldenCase]:
    """The fixed conformance corpus: every trace family, several orders,
    thresholds above 1/2, a don't-care budget, and the degenerate
    constant trace.  Deterministic by construction -- no ambient state."""
    cases: List[GoldenCase] = []
    for order in (1, 2, 3, 4):
        cases.append(
            GoldenCase(
                name=f"paper_order{order}",
                group="paper",
                bits=PAPER_TRACE_BITS * 4,
                order=order,
            )
        )
    cases.append(
        GoldenCase(
            name="paper_order2_dc",
            group="paper",
            bits=PAPER_TRACE_BITS * 4,
            order=2,
            dont_care_fraction=0.05,
        )
    )
    for family, order, threshold, dc in (
        ("uniform", 3, 0.5, 0.0),
        ("uniform", 4, 0.75, 0.01),
        ("periodic", 3, 0.5, 0.0),
        ("periodic", 5, 0.5, 0.0),
        ("bursty", 4, 0.5, 0.01),
        ("bursty", 2, 0.9, 0.0),
        ("markov", 3, 0.6, 0.0),
        ("markov", 4, 0.5, 0.05),
        ("adversarial", 2, 0.5, 0.0),
        ("adversarial", 3, 0.5, 0.0),
    ):
        name = f"{family}_order{order}_t{threshold}_dc{dc}"
        cases.append(
            GoldenCase(
                name=name.replace(".", ""),
                group=family,
                bits=_family_bits(family, name, 160),
                order=order,
                bias_threshold=threshold,
                dont_care_fraction=dc,
            )
        )
    cases.append(
        GoldenCase(name="constant_ones", group="degenerate", bits="1" * 40, order=2)
    )
    cases.append(
        GoldenCase(name="constant_zeros", group="degenerate", bits="0" * 40, order=3)
    )
    return cases


def golden_dir() -> Path:
    """Where the vectors live: ``REPRO_GOLDEN_DIR`` when set, else
    ``tests/golden/`` next to this source tree."""
    override = os.environ.get("REPRO_GOLDEN_DIR", "").strip()
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def compute_vector(case: GoldenCase) -> Dict[str, Any]:
    """Run the (uncached) stage chain for ``case`` and freeze the result."""
    art = run_stages(
        case.trace,
        case.order,
        bias_threshold=case.bias_threshold,
        dont_care_fraction=case.dont_care_fraction,
    )
    hits, lookups = oracle_prediction_counts(art.final, case.trace)
    return {
        "name": case.name,
        "order": case.order,
        "bias_threshold": case.bias_threshold,
        "dont_care_fraction": case.dont_care_fraction,
        "bits": case.bits,
        "cover": [str(cube).replace("-", "x") for cube in art.cover],
        "states": {
            "nfa": art.nfa.num_states if art.nfa is not None else 0,
            "dfa": art.dfa.num_states if art.dfa is not None else 1,
            "minimized": art.minimized.num_states,
            "startup_removed": art.startup_removed,
            "final": art.final.num_states,
        },
        "machine": {
            "start": art.final.start,
            "outputs": list(art.final.outputs),
            "transitions": [list(row) for row in art.final.transitions],
        },
        "accuracy": {"hits": hits, "lookups": lookups},
    }


def _group_files(cases: List[GoldenCase]) -> Dict[str, List[GoldenCase]]:
    groups: Dict[str, List[GoldenCase]] = {}
    for case in cases:
        groups.setdefault(case.group, []).append(case)
    return groups


def _render(group: str, vectors: List[Dict[str, Any]]) -> str:
    document = {"schema": GOLDEN_SCHEMA, "group": group, "vectors": vectors}
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_golden_vectors(directory: Optional[Path] = None) -> List[Path]:
    """Regenerate every golden file; returns the written paths."""
    directory = golden_dir() if directory is None else Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for group, cases in sorted(_group_files(golden_corpus()).items()):
        vectors = [compute_vector(case) for case in cases]
        path = directory / f"golden_{group}.json"
        path.write_text(_render(group, vectors))
        written.append(path)
    written.append(write_golden_sources(directory))
    return written


# ----------------------------------------------------------------------
# Source golden vectors (repro.golden-sources/1)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SourceGoldenCase:
    """One pinned (source spec, length, seed, design order) tuple."""

    name: str
    spec: str
    length: int
    seed: int
    order: int


def sources_corpus() -> List[SourceGoldenCase]:
    """Every registered source family, pinned: trace digests freeze the
    generators byte-for-byte, designed state counts freeze what the
    pipeline builds from them, and the KMP entries also pin their
    closed-form rates as exact fractions."""
    return [
        SourceGoldenCase("minivm_gsm", "minivm:benchmark=gsm,variant=eval", 2000, 0, 4),
        SourceGoldenCase("minivm_vortex", "minivm:benchmark=vortex,variant=train", 2000, 0, 3),
        SourceGoldenCase("pybc_sort", "pybytecode:program=sort", 1500, 7, 4),
        SourceGoldenCase("pybc_dictprobe", "pybytecode:program=dictprobe", 1500, 7, 3),
        SourceGoldenCase("pybc_tokenize", "pybytecode:program=tokenize", 1500, 7, 4),
        SourceGoldenCase("kmp_ab_iid", "kmp:pattern=ab,q=1/2,text=iid,variant=mp", 1024, 5, 4),
        SourceGoldenCase("kmp_aab_kmp", "kmp:pattern=aab,q=3/10,text=iid,variant=kmp", 1024, 5, 4),
        SourceGoldenCase("kmp_periodic", "kmp:pattern=b,text=periodic,variant=mp,word=ab", 512, 0, 2),
    ]


def _trace_digest(trace: Any) -> str:
    import hashlib

    body = ",".join(
        f"{pc}:{bit}" for pc, bit in zip(trace.pcs, trace.outcomes)
    )
    return hashlib.sha256(body.encode("ascii")).hexdigest()


def compute_source_vector(case: SourceGoldenCase) -> Dict[str, Any]:
    """Generate the case's trace (uncached) and freeze its identity plus
    what the design pipeline builds from it."""
    from repro.workloads.sources import KMPSource, create_source

    source = create_source(case.spec)
    trace = source.generate(case.length, case.seed)
    bits = trace.outcome_bits()
    art = run_stages(bits, case.order, bias_threshold=0.5)
    vector: Dict[str, Any] = {
        "name": case.name,
        "spec": source.spec_string(),
        "length": case.length,
        "seed": case.seed,
        "order": case.order,
        "trace_sha256": _trace_digest(trace),
        "taken": sum(trace.outcomes),
        "static_pcs": len(set(trace.pcs)),
        "states": {
            "minimized": art.minimized.num_states,
            "final": art.final.num_states,
        },
    }
    if source.spec.name == "pybytecode":
        from repro.workloads.pybc import python_tag

        # Bytecode offsets are a property of the CPython version; the
        # tag lets the checker skip (not fail) on other interpreters.
        vector["python"] = python_tag()
    if isinstance(source, KMPSource):
        rate, k_needed = source.closed_form()
        vector["closed_form"] = str(rate)
        vector["k_needed"] = k_needed
    return vector


def _render_sources(vectors: List[Dict[str, Any]]) -> str:
    document = {"schema": GOLDEN_SOURCES_SCHEMA, "vectors": vectors}
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_golden_sources(directory: Optional[Path] = None) -> Path:
    directory = golden_dir() if directory is None else Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    vectors = [compute_source_vector(case) for case in sources_corpus()]
    path = directory / "golden_sources.json"
    path.write_text(_render_sources(vectors))
    return path


def check_golden_sources(directory: Optional[Path] = None) -> List[str]:
    """Recompute every source vector and diff against the stored file.

    Vectors carrying a ``python`` tag for a different interpreter are
    skipped, not failed -- bytecode offsets legitimately differ across
    CPython versions -- and the byte-level drift check only runs when
    nothing was skipped (a partial regeneration cannot be byte-compared).
    """
    from repro.workloads.pybc import python_tag

    directory = golden_dir() if directory is None else Path(directory)
    path = directory / "golden_sources.json"
    issues: List[str] = []
    if not path.exists():
        return [f"missing golden file {path} (run: conformance regen)"]
    try:
        stored = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path.name}: unparseable ({exc})"]
    if stored.get("schema") != GOLDEN_SOURCES_SCHEMA:
        return [
            f"{path.name}: schema {stored.get('schema')!r} != "
            f"{GOLDEN_SOURCES_SCHEMA!r}"
        ]
    by_name = {v.get("name"): v for v in stored.get("vectors", [])}
    skipped = 0
    for case in sources_corpus():
        got = by_name.pop(case.name, None)
        if got is None:
            issues.append(f"{path.name}: vector {case.name!r} missing")
            continue
        tagged = got.get("python")
        if tagged is not None and tagged != python_tag():
            skipped += 1
            continue
        want = compute_source_vector(case)
        if got != want:
            keys = [k for k in want if got.get(k) != want[k]]
            issues.append(
                f"{path.name}: vector {case.name!r} differs in {keys}"
            )
    for stale in by_name:
        issues.append(f"{path.name}: stale vector {stale!r}")
    if not issues and not skipped:
        fresh = _render_sources(
            [compute_source_vector(case) for case in sources_corpus()]
        )
        if fresh != path.read_text():
            issues.append(f"{path.name}: byte-level drift (re-run regen)")
    return issues


def check_oracle_corpus(kmax: Optional[int] = None) -> List[str]:
    """Cross-check every corpus design against the exact optimal k-state
    predictor oracle (:mod:`repro.predictors.optimal`).

    Two obligations:

    * every designed machine whose size the oracle can search must
      mispredict at least ``opt(num_states)`` times on its own trace;
    * order-1 cases with at most two states must attain the bound
      *exactly* -- an order-1 design is the last-outcome partition, which
      is optimal at that size on every corpus trace, so any slack is a
      design-pipeline regression.

    Returns human-readable violations; empty means the corpus conforms.
    """
    from repro.predictors.optimal import opt_kmax, optimal_predictors

    if kmax is None:
        kmax = opt_kmax()
    issues: List[str] = []
    for case in golden_corpus():
        art = run_stages(
            case.trace,
            case.order,
            bias_threshold=case.bias_threshold,
            dont_care_fraction=case.dont_care_fraction,
        )
        num_states = art.final.num_states
        if num_states > kmax:
            continue
        hits, lookups = oracle_prediction_counts(art.final, case.trace)
        misses = lookups - hits
        bound = optimal_predictors(case.trace, kmax=num_states)[
            num_states
        ].mispredicts
        if misses < bound:
            issues.append(
                f"{case.name}: designed {num_states}-state machine beats "
                f"the exhaustive optimum ({misses} < {bound} mispredicts)"
            )
        elif case.order == 1 and num_states <= 2 and misses != bound:
            issues.append(
                f"{case.name}: order-1 design must attain the optimal "
                f"{num_states}-state bound exactly ({misses} != {bound})"
            )
    return issues


def check_golden_vectors(directory: Optional[Path] = None) -> List[str]:
    """Recompute every vector and diff against the stored files.  Returns
    human-readable mismatches; empty means the tree still reproduces its
    golden behaviour byte for byte."""
    directory = golden_dir() if directory is None else Path(directory)
    issues: List[str] = []
    for group, cases in sorted(_group_files(golden_corpus()).items()):
        path = directory / f"golden_{group}.json"
        if not path.exists():
            issues.append(f"missing golden file {path} (run: conformance regen)")
            continue
        try:
            stored = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            issues.append(f"{path.name}: unparseable ({exc})")
            continue
        if stored.get("schema") != GOLDEN_SCHEMA:
            issues.append(
                f"{path.name}: schema {stored.get('schema')!r} != {GOLDEN_SCHEMA!r}"
            )
            continue
        by_name = {v.get("name"): v for v in stored.get("vectors", [])}
        for case in cases:
            want = compute_vector(case)
            got = by_name.pop(case.name, None)
            if got is None:
                issues.append(f"{path.name}: vector {case.name!r} missing")
            elif got != want:
                keys = [k for k in want if got.get(k) != want[k]]
                issues.append(
                    f"{path.name}: vector {case.name!r} differs in {keys}"
                )
        for stale in by_name:
            issues.append(f"{path.name}: stale vector {stale!r}")
        # Byte-level check: regeneration must reproduce the file exactly.
        if not issues:
            fresh = _render(group, [compute_vector(case) for case in cases])
            if fresh != path.read_text():
                issues.append(f"{path.name}: byte-level drift (re-run regen)")
    return issues
