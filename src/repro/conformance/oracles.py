"""Slow, obviously-correct reference implementations of every pipeline stage.

Each function here re-derives one stage's artifact by the most direct
method available -- dictionary loops, exhaustive string enumeration,
pairwise state comparison -- deliberately sharing *no* code with the fast
implementations in :mod:`repro.core`, :mod:`repro.logic`,
:mod:`repro.automata`, and :mod:`repro.perf`.  The differential runner
(:mod:`repro.conformance.diff`) pits the real pipeline against these
oracles on arbitrary inputs; any disagreement is a bug in one of the two,
and the oracles are simple enough to audit by eye.

Inventory:

=============================  ============================================
``oracle_markov_counts``       naive sliding-window recount (vs the numpy
                               batch trainer in :mod:`repro.core.markov`)
``oracle_pattern_sets``        naive re-partition into predict-1/0/dc sets
``cover_violations``           brute-force SOP check over all 2^N minterms,
                               evaluating cubes by string comparison
``regex_language``             set-theoretic language enumeration up to
                               length L straight off the regex AST
``machine_language``           language of an automaton by running every
                               string up to length L
``oracle_moore_outputs``       table-driven Moore simulation (vs the
                               compiled batch kernels)
``oracle_minimal_moore``       minimization by pairwise state equivalence
                               (vs Hopcroft's partition refinement)
``oracle_steady_states``       exhaustive start-state reachability: run
                               all 2^N length-N inputs, close the image
``oracle_prediction_counts``   prediction hit counting by stepping the
                               machine one bit at a time
=============================  ============================================
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.automata import regex as rx
from repro.automata.moore import MooreMachine
from repro.logic.cube import Cube

# ----------------------------------------------------------------------
# Stage 1: Markov profiling
# ----------------------------------------------------------------------


def oracle_markov_counts(
    trace: Sequence[int], order: int
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """``(totals, ones)`` recounted with a plain window loop.

    Bit 0 of a history integer is the most recent outcome, matching
    :mod:`repro.core.markov`; the window is rebuilt from scratch for every
    position, so there is no shift-register state to get wrong.
    """
    totals: Dict[int, int] = {}
    ones: Dict[int, int] = {}
    for i in range(order, len(trace)):
        history = 0
        for j in range(order):
            # trace[i - 1 - j] is the outcome j steps back -> bit j.
            history |= (trace[i - 1 - j] & 1) << j
        totals[history] = totals.get(history, 0) + 1
        if trace[i] == 1:
            ones[history] = ones.get(history, 0) + 1
    return totals, ones


# ----------------------------------------------------------------------
# Stage 2: pattern definition
# ----------------------------------------------------------------------


def oracle_pattern_sets(
    totals: Dict[int, int],
    ones: Dict[int, int],
    bias_threshold: float,
    dont_care_fraction: float,
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """``(predict_one, predict_zero)`` re-partitioned naively.

    Same contract as :func:`repro.core.patterns.define_patterns`: drop the
    rarest histories (ties toward the lower history value) while the
    dropped observation share stays within ``dont_care_fraction``, then
    split the rest on ``P[1|h] >= bias_threshold``.
    """
    total_observations = sum(totals.values())
    budget = total_observations * dont_care_fraction
    dropped: Set[int] = set()
    spent = 0
    for history, count in sorted(totals.items(), key=lambda kv: (kv[1], kv[0])):
        if budget <= 0 or spent + count > budget:
            break
        dropped.add(history)
        spent += count
    predict_one: Set[int] = set()
    predict_zero: Set[int] = set()
    for history, count in totals.items():
        if history in dropped:
            continue
        if ones.get(history, 0) / count >= bias_threshold:
            predict_one.add(history)
        else:
            predict_zero.add(history)
    return frozenset(predict_one), frozenset(predict_zero)


# ----------------------------------------------------------------------
# Stage 3: two-level minimization (SOP cover)
# ----------------------------------------------------------------------


def _cube_matches_bits(cube: Cube, bits: str) -> bool:
    """Evaluate a cube on an MSB-first bit string by comparing characters
    against the cube's own string form (no integer mask arithmetic)."""
    pattern = str(cube)
    if len(pattern) != len(bits):
        return False
    return all(p in ("-", b) for p, b in zip(pattern, bits))


def cover_violations(
    cover: Sequence[Cube],
    order: int,
    on_set: FrozenSet[int],
    off_set: FrozenSet[int],
) -> List[str]:
    """Brute-force SOP cover check over every length-``order`` history.

    A valid cover contains every on-set minterm, no off-set minterm, and
    consists of width-``order`` cubes; don't-cares may land on either
    side.  Returns human-readable violations (empty = valid).
    """
    issues: List[str] = []
    for cube in cover:
        if cube.width != order:
            issues.append(f"cube {cube} has width {cube.width}, expected {order}")
    if issues:
        return issues
    for minterm in range(1 << order):
        bits = format(minterm, f"0{order}b")
        covered = any(_cube_matches_bits(cube, bits) for cube in cover)
        if minterm in on_set and not covered:
            issues.append(f"on-set history {bits} not covered")
        elif minterm in off_set and covered:
            issues.append(f"off-set history {bits} wrongly covered")
    return issues


# ----------------------------------------------------------------------
# Stages 4-6: regex -> NFA -> DFA, via language enumeration
# ----------------------------------------------------------------------


def all_strings(alphabet: Sequence[str], max_len: int) -> List[str]:
    """Every string over ``alphabet`` of length 0..``max_len``, sorted by
    (length, lexicographic)."""
    out: List[str] = []
    for length in range(max_len + 1):
        for combo in product(alphabet, repeat=length):
            out.append("".join(combo))
    return out


def regex_language(node: rx.Regex, max_len: int) -> FrozenSet[str]:
    """The language of ``node`` restricted to strings of length <=
    ``max_len``, computed set-theoretically from the AST.

    Each operator maps to its defining set operation -- union for
    alternation, pairwise concatenation for sequencing, iterated
    concatenation to a fixpoint for the star -- so this is the regex
    *semantics*, independent of any automaton construction.
    """

    def lang(n: rx.Regex) -> FrozenSet[str]:
        if isinstance(n, rx.EmptySet):
            return frozenset()
        if isinstance(n, rx.Epsilon):
            return frozenset({""})
        if isinstance(n, rx.Symbol):
            return frozenset({n.char}) if max_len >= 1 else frozenset()
        if isinstance(n, rx.Alternate):
            result: FrozenSet[str] = frozenset()
            for option in n.options:
                result |= lang(option)
            return result
        if isinstance(n, rx.Concat):
            result = frozenset({""})
            for part in n.parts:
                part_lang = lang(part)
                result = frozenset(
                    a + b
                    for a in result
                    for b in part_lang
                    if len(a) + len(b) <= max_len
                )
                if not result:
                    return result
            return result
        if isinstance(n, rx.Star):
            inner = lang(n.inner)
            result = frozenset({""})
            while True:
                grown = result | frozenset(
                    a + b
                    for a in result
                    for b in inner
                    if b and len(a) + len(b) <= max_len
                )
                if grown == result:
                    return result
                result = grown
        raise TypeError(f"unknown regex node {n!r}")

    return lang(node)


def expected_history_language(
    cover: Sequence[Cube], order: int, max_len: int
) -> FrozenSet[str]:
    """The language the pipeline's regex *should* denote: every string of
    length >= ``order`` whose last ``order`` bits match some cube.  This
    is Section 4.5's specification stated directly, bypassing the regex
    construction entirely."""
    return frozenset(
        s
        for s in all_strings(("0", "1"), max_len)
        if len(s) >= order
        and any(_cube_matches_bits(cube, s[-order:]) for cube in cover)
    )


def machine_language(machine, max_len: int) -> FrozenSet[str]:
    """Accepted strings of an NFA/DFA up to ``max_len``, one
    ``accepts_string`` run per string."""
    return frozenset(
        s
        for s in all_strings(tuple(machine.alphabet), max_len)
        if machine.accepts_string(s)
    )


def moore_language(machine: MooreMachine, max_len: int) -> FrozenSet[str]:
    """Strings driving the Moore machine to an output-1 state (the DFA
    view's language), computed by stepping states one symbol at a time."""
    accepted: Set[str] = set()
    for s in all_strings(tuple(machine.alphabet), max_len):
        state = machine.start
        for symbol in s:
            state = machine.transitions[state][machine.alphabet.index(symbol)]
        if machine.outputs[state] == 1:
            accepted.add(s)
    return frozenset(accepted)


# ----------------------------------------------------------------------
# Moore simulation (vs the compiled batch kernels)
# ----------------------------------------------------------------------


def oracle_moore_outputs(
    machine: MooreMachine, bits: Sequence[int], start: Optional[int] = None
) -> List[int]:
    """Outputs of the states visited while consuming ``bits``: the
    table-driven reference for ``MooreMachine.trace_outputs`` and the
    compiled ``run_bits`` fast path."""
    state = machine.start if start is None else start
    outputs: List[int] = []
    for bit in bits:
        state = machine.transitions[state][bit]
        outputs.append(machine.outputs[state])
    return outputs


def oracle_prediction_counts(
    machine: MooreMachine, trace: Sequence[int]
) -> Tuple[int, int]:
    """``(hits, lookups)`` of the predictor on ``trace``: before each
    outcome the current state's output is the prediction, then the machine
    steps on the actual outcome."""
    state = machine.start
    hits = 0
    for bit in trace:
        if machine.outputs[state] == bit:
            hits += 1
        state = machine.transitions[state][bit]
    return hits, len(trace)


# ----------------------------------------------------------------------
# Minimization (vs Hopcroft)
# ----------------------------------------------------------------------


def _states_equivalent(machine: MooreMachine, a: int, b: int) -> bool:
    """Moore equivalence of two states by explicit pair exploration."""
    seen: Set[Tuple[int, int]] = set()
    stack: List[Tuple[int, int]] = [(a, b)]
    while stack:
        x, y = stack.pop()
        if machine.outputs[x] != machine.outputs[y]:
            return False
        if (x, y) in seen:
            continue
        seen.add((x, y))
        for index in range(len(machine.alphabet)):
            stack.append(
                (machine.transitions[x][index], machine.transitions[y][index])
            )
    return True


def machines_agree_from(
    machine_a: MooreMachine, a: int, machine_b: MooreMachine, b: int
) -> bool:
    """Cross-machine Moore equivalence of state ``a`` of ``machine_a`` and
    state ``b`` of ``machine_b``, by explicit pair exploration."""
    seen: Set[Tuple[int, int]] = set()
    stack: List[Tuple[int, int]] = [(a, b)]
    while stack:
        x, y = stack.pop()
        if machine_a.outputs[x] != machine_b.outputs[y]:
            return False
        if (x, y) in seen:
            continue
        seen.add((x, y))
        for index in range(len(machine_a.alphabet)):
            stack.append(
                (
                    machine_a.transitions[x][index],
                    machine_b.transitions[y][index],
                )
            )
    return True


def oracle_minimal_moore(machine: MooreMachine) -> MooreMachine:
    """Minimal equivalent machine built the slow way: drop unreachable
    states, group the rest by pairwise :func:`_states_equivalent`, and
    renumber the classes breadth-first from the start class.

    The breadth-first renumbering matches :func:`hopcroft_minimize`'s
    canonical form, so a correct Hopcroft must return *exactly* this
    machine -- not merely an equivalent one.
    """
    reachable = sorted(machine.reachable_states())
    classes: List[List[int]] = []
    for state in reachable:
        for group in classes:
            if _states_equivalent(machine, group[0], state):
                group.append(state)
                break
        else:
            classes.append([state])
    class_of = {state: i for i, group in enumerate(classes) for state in group}

    # Breadth-first renumbering from the start state's class.
    order: List[int] = [class_of[machine.start]]
    seen: Set[int] = set(order)
    queue: List[int] = list(order)
    while queue:
        current = queue.pop(0)
        representative = classes[current][0]
        for nxt in machine.transitions[representative]:
            nxt_class = class_of[nxt]
            if nxt_class not in seen:
                seen.add(nxt_class)
                order.append(nxt_class)
                queue.append(nxt_class)
    renumber = {old: new for new, old in enumerate(order)}
    outputs: List[int] = []
    rows: List[Tuple[int, ...]] = []
    for old in order:
        representative = classes[old][0]
        outputs.append(machine.outputs[representative])
        rows.append(
            tuple(
                renumber[class_of[nxt]]
                for nxt in machine.transitions[representative]
            )
        )
    return MooreMachine(
        alphabet=machine.alphabet,
        start=0,
        outputs=tuple(outputs),
        transitions=tuple(rows),
    )


def is_minimal(machine: MooreMachine) -> bool:
    """True when every state is reachable and no two are equivalent."""
    if machine.reachable_states() != set(range(machine.num_states)):
        return False
    return not any(
        _states_equivalent(machine, a, b)
        for a in range(machine.num_states)
        for b in range(a + 1, machine.num_states)
    )


# ----------------------------------------------------------------------
# Start-state reduction (exhaustive reachability)
# ----------------------------------------------------------------------


def oracle_steady_states(machine: MooreMachine, horizon: int) -> Set[int]:
    """States occupied after any input of length >= ``horizon``, found
    exhaustively: run all ``2^horizon`` length-``horizon`` inputs from the
    start state, then close the image under transitions (a state occupied
    after exactly ``horizon`` inputs plus any continuation is occupied
    after >= ``horizon`` inputs, and nothing else is)."""
    image: Set[int] = set()
    for combo in product(machine.alphabet, repeat=horizon):
        state = machine.start
        for symbol in combo:
            state = machine.transitions[state][machine.alphabet.index(symbol)]
        image.add(state)
    frontier = list(image)
    closed = set(image)
    while frontier:
        state = frontier.pop()
        for nxt in machine.transitions[state]:
            if nxt not in closed:
                closed.add(nxt)
                frontier.append(nxt)
    return closed
