"""Figure 4: area of generated FSM predictors vs. their state count.

The paper synthesizes a random 10% sample of all custom FSM predictors
generated across the benchmarks and plots Synopsys area against state
count, fitting the linear bound used for every later area estimate.  We
regenerate the experiment end to end: design per-branch predictors for
every branch benchmark, sample them, synthesize each sampled machine with
our cost model, fit the line, and report the residual structure (the
large *regular* machines that fall below the bound).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Tuple

from repro.harness.area_model import LinearAreaModel, fit_area_model, residuals
from repro.harness.branch_training import (
    collect_branch_models,
    design_branch_predictors,
    rank_branches_by_misses,
)
from repro.harness.reporting import format_table
from repro.perf.cache import digest_of
from repro.reliability.durability import durable_map
from repro.synth.area import AreaReport, estimate_area
from repro.workloads.programs import BRANCH_BENCHMARKS, branch_trace

_SAMPLE_SEED = 0xF164


@dataclass
class FigureFourResult:
    """Sampled (states, area) points plus the fitted bound."""

    reports: List[AreaReport]
    model: LinearAreaModel

    def points(self) -> List[Tuple[int, float]]:
        return [(r.num_states, r.area) for r in self.reports]

    def render(self) -> str:
        rows = [
            (r.num_states, r.area, self.model.estimate(r.num_states), r.encoding_name)
            for r in sorted(self.reports, key=lambda r: r.num_states)
        ]
        table = format_table(
            ["states", "area", "linear_estimate", "encoding"],
            rows,
            title="Figure 4: FSM predictor area vs number of states",
        )
        return f"{table}\n\nfit: {self.model}\n"


def _benchmark_machines(
    benchmark: str,
    max_branches: int,
    branches_per_benchmark: int,
    min_states: int,
):
    """One benchmark's deployable machines (a durable_map shard)."""
    trace = branch_trace(benchmark, "train", max_branches)
    ranked = rank_branches_by_misses(trace)
    models = collect_branch_models(trace)
    top = [pc for pc, _ in ranked[:branches_per_benchmark]]
    machines = []
    for pc, design in design_branch_predictors(models, top).items():
        if design.machine.num_states >= min_states:
            machines.append((f"{benchmark}@{pc:#x}", design.machine))
    return machines


def collect_design_machines(
    benchmarks: Tuple[str, ...] = BRANCH_BENCHMARKS,
    max_branches: int = 60_000,
    branches_per_benchmark: int = 8,
    min_states: int = 4,
    run_id: Optional[str] = None,
):
    """Design custom predictors for the worst branches of every benchmark
    (the population Figure 4 samples from) -- one journaled shard per
    benchmark, so a killed collection resumes where it stopped.

    Machines below ``min_states`` are excluded: they belong to trivially
    biased branches that a real flow would never hard-wire, and the paper's
    sampled population consists of deployed custom predictors."""
    shards = durable_map(
        partial(
            _benchmark_machines,
            max_branches=max_branches,
            branches_per_benchmark=branches_per_benchmark,
            min_states=min_states,
        ),
        list(benchmarks),
        run_id=run_id,
        sweep="fig4.machines",
        fingerprint=digest_of(max_branches, branches_per_benchmark, min_states),
    )
    return [machine for shard in shards for machine in shard]


def run_fig4(
    benchmarks: Tuple[str, ...] = BRANCH_BENCHMARKS,
    max_branches: int = 60_000,
    branches_per_benchmark: int = 8,
    sample_fraction: float = 1.0,
    seed: int = _SAMPLE_SEED,
    run_id: Optional[str] = None,
) -> FigureFourResult:
    """Regenerate Figure 4.

    ``sample_fraction`` defaults to 1.0 (synthesize everything) because
    our population is smaller than the paper's; pass 0.1 to reproduce the
    paper's literal 10% sampling.
    """
    machines = collect_design_machines(
        benchmarks, max_branches, branches_per_benchmark, run_id=run_id
    )
    if not machines:
        raise RuntimeError("no machines designed; check the workload setup")
    rng = random.Random(seed)
    sample_size = max(1, round(len(machines) * sample_fraction))
    sampled = rng.sample(machines, min(sample_size, len(machines)))
    reports = [estimate_area(machine) for _name, machine in sampled]
    model = fit_area_model([(r.num_states, r.area) for r in reports])
    return FigureFourResult(reports=reports, model=model)
