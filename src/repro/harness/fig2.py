"""Figure 2: value-prediction confidence, SUD counters vs. designed FSMs.

For each benchmark in the value suite the driver produces:

* the scatter of saturating up/down counter configurations (the paper's
  sweep of max value x wrong decrement x threshold);
* one accuracy/coverage *curve* per FSM history length (2, 4, 6, 8, 10),
  obtained by sweeping the bias threshold of the pattern-definition stage
  -- the knob that trades coverage for accuracy;
* everything **cross-trained**: the FSM for benchmark X is designed from
  the merged correctness traces of every benchmark *except* X
  (Section 6.3), so the predictors are general purpose, not specialized.

Each trace element is "was this load correctly value predicted by the
2K-entry two-delta stride predictor"; at runtime there is one confidence
unit (FSM state register) per value-table entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.markov import MarkovModel
from repro.core.pipeline import DesignConfig, FSMDesigner
from repro.harness.metrics import pareto_front
from repro.harness.reporting import format_table
from repro.perf.cache import digest_of
from repro.reliability.durability import durable_map
from repro.valuepred.confidence import (
    ConfidenceStats,
    correctness_trace,
    evaluate_counter_confidence,
    evaluate_fsm_confidence,
    sud_configurations,
)
from repro.workloads.values import VALUE_BENCHMARKS, load_trace

DEFAULT_HISTORY_LENGTHS: Tuple[int, ...] = (2, 4, 6, 8, 10)
DEFAULT_BIAS_THRESHOLDS: Tuple[float, ...] = (
    0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.995,
)


@dataclass
class ConfidencePoint:
    label: str
    accuracy: float
    coverage: float
    # Gap-to-optimal annotations (None when the oracle column is off):
    # the config's machine deployed as a plain next-bit predictor over
    # the benchmark's correctness stream, vs the exact optimal machine
    # of comparable size (repro.predictors.optimal).
    num_states: Optional[int] = None
    machine_miss_rate: Optional[float] = None
    gap_to_optimal: Optional[float] = None


@dataclass
class FigureTwoResult:
    """One panel of Figure 2."""

    benchmark: str
    sud_points: List[ConfidencePoint]
    fsm_curves: Dict[int, List[ConfidencePoint]]  # history length -> curve
    #: k -> exact optimal miss rate on this panel's correctness stream
    #: (empty when the gap column is disabled).
    optimal_rates: Dict[int, float] = field(default_factory=dict)

    def fsm_pareto(self, history: int) -> List[Tuple[float, float]]:
        return pareto_front(
            [(p.accuracy, p.coverage) for p in self.fsm_curves[history]]
        )

    def sud_pareto(self) -> List[Tuple[float, float]]:
        return pareto_front([(p.accuracy, p.coverage) for p in self.sud_points])

    def render(self) -> str:
        with_gap = bool(self.optimal_rates)

        def row(series: str, point: ConfidencePoint):
            base = (series, point.label, point.accuracy, point.coverage)
            if not with_gap:
                return base
            if point.gap_to_optimal is None:
                return base + ("", "")
            return base + (
                f"{point.machine_miss_rate:.4f}",
                f"{point.gap_to_optimal:+.4f}",
            )

        rows = [row("up/down", p) for p in self.sud_points]
        for history in sorted(self.fsm_curves):
            rows.extend(
                row(f"custom h={history}", p) for p in self.fsm_curves[history]
            )
        headers = ["series", "config", "accuracy", "coverage"]
        title = (
            f"Figure 2 ({self.benchmark}): value prediction confidence, "
            "accuracy vs coverage"
        )
        if with_gap:
            headers += ["pred miss", "gap to opt"]
            kmax = max(self.optimal_rates)
            opt = self.optimal_rates[kmax]
            title += (
                f"\n  optimal {kmax}-state predictor miss rate on this "
                f"stream: {opt:.4f} (gap = machine miss - optimal miss "
                "at min(states, kmax))"
            )
        return format_table(headers, rows, title=title)


def _correctness_shard(
    benchmark: str, variant: str, num_loads: int
) -> Tuple[List[int], List[int]]:
    return correctness_trace(load_trace(benchmark, variant, num_loads))


def _correctness_traces(
    benchmarks: Sequence[str],
    variant: str,
    num_loads: int,
    run_id: Optional[str] = None,
) -> Dict[str, Tuple[List[int], List[int]]]:
    names = list(benchmarks)
    shards = durable_map(
        partial(_correctness_shard, variant=variant, num_loads=num_loads),
        names,
        run_id=run_id,
        sweep=f"fig2.traces.{variant}",
        fingerprint=digest_of(variant, num_loads),
    )
    return dict(zip(names, shards))


def _cross_trained_model(
    traces: Dict[str, Tuple[List[int], List[int]]],
    held_out: str,
    order: int,
) -> MarkovModel:
    """Merge the correctness bits of every benchmark except ``held_out``
    into one Markov model (the aggregate general-purpose trace)."""
    model = MarkovModel(order=order)
    for benchmark, (_indices, bits) in traces.items():
        if benchmark == held_out:
            continue
        model.update_from_trace(bits)
    return model


def _resolve_gap_kmax(gap_kmax: Optional[int]) -> int:
    """``None`` -> the environment default (``REPRO_OPT_KMAX``), ``0`` or
    negative -> disabled, otherwise clamped to the oracle's hard cap."""
    from repro.predictors.optimal import MAX_KMAX, opt_kmax

    if gap_kmax is None:
        return opt_kmax()
    if gap_kmax <= 0:
        return 0
    return min(gap_kmax, MAX_KMAX)


def _fsm_curve(
    model: MarkovModel,
    history: int,
    indices: List[int],
    bits: List[int],
    bias_thresholds: Sequence[float],
    gap_kmax: int,
    optimal_rates: Dict[int, float],
) -> List[ConfidencePoint]:
    """One accuracy/coverage curve: sweep the bias threshold at a fixed
    history length, designing from ``model`` and evaluating on
    ``(indices, bits)``.  Shared by the benchmark and source drivers."""
    curve: List[ConfidencePoint] = []
    for threshold in bias_thresholds:
        config = DesignConfig(
            order=history,
            bias_threshold=threshold,
            dont_care_fraction=0.01,
        )
        result = FSMDesigner(config).design_from_model(model)
        label = f"h{history}-t{threshold:g}"
        stats = evaluate_fsm_confidence(
            indices, bits, result.machine, label=label
        )
        point = ConfidencePoint(
            label=label, accuracy=stats.accuracy, coverage=stats.coverage
        )
        if gap_kmax and bits:
            from repro.predictors.optimal import machine_mispredicts

            num_states = result.machine.num_states
            misses = machine_mispredicts(result.machine, bits)
            point.num_states = num_states
            point.machine_miss_rate = misses / len(bits)
            point.gap_to_optimal = (
                point.machine_miss_rate
                - optimal_rates[min(num_states, gap_kmax)]
            )
        curve.append(point)
    return curve


def run_fig2_benchmark(
    benchmark: str,
    traces: Optional[Dict[str, Tuple[List[int], List[int]]]] = None,
    num_loads: int = 80_000,
    history_lengths: Sequence[int] = DEFAULT_HISTORY_LENGTHS,
    bias_thresholds: Sequence[float] = DEFAULT_BIAS_THRESHOLDS,
    gap_kmax: Optional[int] = None,
    run_id: Optional[str] = None,
) -> FigureTwoResult:
    """One benchmark's panel.  Pass pre-computed ``traces`` when sweeping
    all benchmarks so the load streams are generated only once.

    ``gap_kmax`` controls the gap-to-optimal column: every designed FSM is
    also deployed as a plain next-bit predictor over the benchmark's own
    correctness stream and compared against the exhaustive optimal k-state
    predictor (k = min(machine states, gap_kmax)).  ``0`` disables the
    column; ``None`` uses the ``REPRO_OPT_KMAX`` default.
    """
    if traces is None:
        traces = _correctness_traces(VALUE_BENCHMARKS, "train", num_loads)
    indices, bits = traces[benchmark]

    gap_kmax = _resolve_gap_kmax(gap_kmax)
    optimal_rates: Dict[int, float] = {}
    if gap_kmax:
        from repro.predictors.optimal import optimal_predictors

        optima = optimal_predictors(bits, kmax=gap_kmax, run_id=run_id)
        optimal_rates = {k: r.miss_rate for k, r in optima.items()}

    sud_points: List[ConfidencePoint] = []
    for label, factory in sud_configurations():
        stats = evaluate_counter_confidence(indices, bits, factory, label=label)
        sud_points.append(
            ConfidencePoint(label=label, accuracy=stats.accuracy, coverage=stats.coverage)
        )

    fsm_curves: Dict[int, List[ConfidencePoint]] = {}
    max_order = max(history_lengths)
    full_model = _cross_trained_model(traces, benchmark, max_order)
    for history in history_lengths:
        fsm_curves[history] = _fsm_curve(
            full_model.truncated(history),
            history,
            indices,
            bits,
            bias_thresholds,
            gap_kmax,
            optimal_rates,
        )
    return FigureTwoResult(
        benchmark=benchmark,
        sud_points=sud_points,
        fsm_curves=fsm_curves,
        optimal_rates=optimal_rates,
    )


def _fig2_source_shard(
    history: int,
    model: MarkovModel,
    indices: List[int],
    bits: List[int],
    bias_thresholds: Sequence[float],
    gap_kmax: int,
    optimal_rates: Dict[int, float],
) -> List[ConfidencePoint]:
    """One durable shard of the source panel: the curve at one history
    length (module-level so the process pool can pickle it)."""
    return _fsm_curve(
        model.truncated(history),
        history,
        indices,
        bits,
        bias_thresholds,
        gap_kmax,
        optimal_rates,
    )


def run_fig2_source(
    spec: str,
    length: Optional[int] = None,
    seed: Optional[int] = None,
    history_lengths: Sequence[int] = DEFAULT_HISTORY_LENGTHS,
    bias_thresholds: Sequence[float] = DEFAULT_BIAS_THRESHOLDS,
    gap_kmax: Optional[int] = None,
    run_id: Optional[str] = None,
) -> FigureTwoResult:
    """The Figure 2 panel over an arbitrary registered trace source
    (``repro.workloads.sources``): the source's outcome stream stands in
    for the correctness trace, its PCs index the confidence table, and
    the FSMs are *self-trained* on the same stream -- the specialization
    limit case, which is exactly what a known-optimal source (e.g. a KMP
    family with a closed-form rate) wants measured.

    The durable sweep fingerprint folds the canonical spec string plus
    ``(length, seed)`` and the design knobs, so journals from different
    sources or configurations can never replay into each other.
    """
    from repro.workloads.sources import (
        create_source,
        source_length,
        source_seed,
        source_trace,
    )

    source = create_source(spec)
    spec_string = source.spec_string()
    length = source_length() if length is None else int(length)
    seed = source_seed() if seed is None else int(seed)
    trace = source_trace(spec_string, length, seed)
    indices = list(trace.pcs)
    bits = trace.outcome_bits()

    gap_kmax = _resolve_gap_kmax(gap_kmax)
    optimal_rates: Dict[int, float] = {}
    if gap_kmax:
        from repro.predictors.optimal import optimal_predictors

        optima = optimal_predictors(bits, kmax=gap_kmax, run_id=run_id)
        optimal_rates = {k: r.miss_rate for k, r in optima.items()}

    sud_points: List[ConfidencePoint] = []
    for label, factory in sud_configurations():
        stats = evaluate_counter_confidence(indices, bits, factory, label=label)
        sud_points.append(
            ConfidencePoint(
                label=label, accuracy=stats.accuracy, coverage=stats.coverage
            )
        )

    full_model = MarkovModel(order=max(history_lengths))
    full_model.update_from_trace(bits)
    histories = list(history_lengths)
    curves = durable_map(
        partial(
            _fig2_source_shard,
            model=full_model,
            indices=indices,
            bits=bits,
            bias_thresholds=tuple(bias_thresholds),
            gap_kmax=gap_kmax,
            optimal_rates=optimal_rates,
        ),
        histories,
        run_id=run_id,
        sweep="fig2.source",
        fingerprint=digest_of(
            spec_string,
            length,
            seed,
            tuple(histories),
            tuple(bias_thresholds),
            gap_kmax,
        ),
    )
    return FigureTwoResult(
        benchmark=f"source:{spec_string}",
        sud_points=sud_points,
        fsm_curves=dict(zip(histories, curves)),
        optimal_rates=optimal_rates,
    )


def run_fig2(
    benchmarks: Sequence[str] = VALUE_BENCHMARKS,
    num_loads: int = 80_000,
    history_lengths: Sequence[int] = DEFAULT_HISTORY_LENGTHS,
    bias_thresholds: Sequence[float] = DEFAULT_BIAS_THRESHOLDS,
    gap_kmax: Optional[int] = None,
    run_id: Optional[str] = None,
) -> Dict[str, FigureTwoResult]:
    """The full figure.  With ``run_id`` both sweeps (trace generation,
    per-benchmark panels) journal shard completions and resume after a
    kill; without it they run as plain parallel sweeps."""
    traces = _correctness_traces(
        VALUE_BENCHMARKS, "train", num_loads, run_id=run_id
    )
    names = list(benchmarks)
    # Resolve the gap column once so the sweep fingerprint is stable even
    # when the default comes from the environment.
    gap_kmax = _resolve_gap_kmax(gap_kmax)
    # One process-pool shard per benchmark; durable_map returns results in
    # input order, so the figure output is identical to a serial run.
    results = durable_map(
        partial(
            run_fig2_benchmark,
            traces=traces,
            history_lengths=tuple(history_lengths),
            bias_thresholds=tuple(bias_thresholds),
            gap_kmax=gap_kmax,
        ),
        names,
        run_id=run_id,
        sweep="fig2.panels",
        fingerprint=digest_of(
            num_loads, tuple(history_lengths), tuple(bias_thresholds), gap_kmax
        ),
    )
    return dict(zip(names, results))
