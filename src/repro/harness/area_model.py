"""The linear states->area bound of Figure 4 (Section 7.4).

The paper synthesizes a 10% random sample of all generated FSM predictors,
observes that area is linearly bounded by state count, and uses the fitted
line "to estimate the area for the rest of the FSM predictors" so that
high-level design trade-offs never wait on synthesis.  This module fits
the same bound on our cost model's reports and exposes it as an estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.synth.area import AreaReport


@dataclass(frozen=True)
class LinearAreaModel:
    """``area ≈ slope * num_states + intercept``."""

    slope: float
    intercept: float
    sample_size: int

    def estimate(self, num_states: int) -> float:
        return self.slope * num_states + self.intercept

    def __str__(self) -> str:
        return (
            f"area ≈ {self.slope:.2f} * states + {self.intercept:.2f} "
            f"(fit on {self.sample_size} machines)"
        )


def fit_area_model(points: Sequence[Tuple[int, float]]) -> LinearAreaModel:
    """Least-squares line through (num_states, area) points.

    Pure-Python normal equations -- two unknowns do not need numpy -- with
    the degenerate single-point/vertical cases handled by falling back to
    a proportional model.
    """
    n = len(points)
    if n == 0:
        raise ValueError("cannot fit an area model to zero samples")
    sum_x = float(sum(x for x, _ in points))
    sum_y = float(sum(y for _, y in points))
    sum_xx = float(sum(x * x for x, _ in points))
    sum_xy = float(sum(x * y for x, y in points))
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        # All machines the same size: proportional estimate.
        mean_x = sum_x / n
        slope = (sum_y / n) / mean_x if mean_x else 0.0
        return LinearAreaModel(slope=slope, intercept=0.0, sample_size=n)
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    intercept = (sum_y - slope * sum_x) / n
    return LinearAreaModel(slope=slope, intercept=intercept, sample_size=n)


def fit_from_reports(reports: Iterable[AreaReport]) -> LinearAreaModel:
    return fit_area_model([(r.num_states, r.area) for r in reports])


def residuals(
    model: LinearAreaModel, points: Sequence[Tuple[int, float]]
) -> List[float]:
    """Per-point ``actual - estimated`` (Figure 4's below-the-line large
    regular machines show up as negative residuals)."""
    return [area - model.estimate(states) for states, area in points]
