"""Metric helpers shared by the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def pareto_front(
    points: Iterable[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """The non-dominated subset of (accuracy, coverage) points, sorted by
    accuracy ascending.  A point dominates another when it is at least as
    good on both axes and strictly better on one (both axes maximized).
    """
    unique = sorted(set(points))
    front: List[Tuple[float, float]] = []
    # Sweep from the highest accuracy down, keeping points whose coverage
    # exceeds everything already kept (which all have higher accuracy).
    best_coverage = float("-inf")
    for accuracy, coverage in sorted(unique, reverse=True):
        if coverage > best_coverage:
            front.append((accuracy, coverage))
            best_coverage = coverage
    front.reverse()
    return front


def dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """True when point ``a`` dominates ``b`` (both axes maximized)."""
    return a[0] >= b[0] and a[1] >= b[1] and a != b


def interpolate_coverage_at(
    curve: Sequence[Tuple[float, float]], accuracy: float
) -> float:
    """Coverage a (sorted ascending-accuracy) Pareto curve attains at a
    target accuracy: the best coverage among points with accuracy >= the
    target (0.0 when the curve never reaches it).  This is how "coverage
    at 80% accuracy" comparisons like the paper's gcc example are read off
    Figure 2."""
    eligible = [cov for acc, cov in curve if acc >= accuracy]
    return max(eligible) if eligible else 0.0


def weighted_miss_rate(pairs: Iterable[Tuple[int, int]]) -> float:
    """Overall miss rate from per-branch (executions, misses) pairs."""
    total_execs = 0
    total_misses = 0
    for execs, misses in pairs:
        total_execs += execs
        total_misses += misses
    if total_execs == 0:
        return 0.0
    return total_misses / total_execs
