"""Metric helpers shared by the experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def pareto_front(
    points: Iterable[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """The non-dominated subset of (accuracy, coverage) points, sorted by
    accuracy ascending.  A point dominates another when it is at least as
    good on both axes and strictly better on one (both axes maximized).
    """
    unique = sorted(set(points))
    front: List[Tuple[float, float]] = []
    # Sweep from the highest accuracy down, keeping points whose coverage
    # exceeds everything already kept (which all have higher accuracy).
    best_coverage = float("-inf")
    for accuracy, coverage in sorted(unique, reverse=True):
        if coverage > best_coverage:
            front.append((accuracy, coverage))
            best_coverage = coverage
    front.reverse()
    return front


def dominates(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
    """True when point ``a`` dominates ``b`` (both axes maximized)."""
    return a[0] >= b[0] and a[1] >= b[1] and a != b


def interpolate_coverage_at(
    curve: Sequence[Tuple[float, float]],
    accuracy: float,
    mode: str = "linear",
) -> float:
    """Coverage an (accuracy, coverage) Pareto curve attains at a target
    accuracy.

    ``mode="linear"`` (the default) linearly interpolates between the two
    Pareto points bracketing the target accuracy -- the operating point a
    predictor sweeping its threshold between the two configurations would
    reach.  A target at or below the curve's lowest measured accuracy
    returns the coverage of that lowest-accuracy point (no extrapolation:
    on a Pareto curve that *is* the best coverage, and on non-Pareto input
    it avoids crediting coverage from higher-accuracy configurations that
    the target never asked for).  A target above the range returns 0.0
    (the curve never reaches that accuracy).

    ``mode="step"`` keeps the conservative read-off used for the paper's
    gcc example ("coverage at 80% accuracy"): the best coverage among
    points with accuracy >= the target, 0.0 when none qualify -- i.e. the
    coverage of an *achieved* configuration, with no credit between
    points.  (This function historically always behaved this way despite
    its name; the linear mode is the documented behaviour.)
    """
    if mode == "step":
        eligible = [cov for acc, cov in curve if acc >= accuracy]
        return max(eligible) if eligible else 0.0
    if mode != "linear":
        raise ValueError(f"unknown interpolation mode {mode!r}")
    if not curve:
        return 0.0
    # Collapse duplicate accuracies to their best coverage and sort, so
    # arbitrary (non-Pareto) input still yields a well-defined curve.
    best: dict = {}
    for acc, cov in curve:
        if acc not in best or cov > best[acc]:
            best[acc] = cov
    points = sorted(best.items())
    if accuracy > points[-1][0]:
        return 0.0
    if accuracy <= points[0][0]:
        # At or below the measured range: the lowest-accuracy point's own
        # coverage.  (Returning the global max here over-credited
        # non-Pareto curves whose max coverage sat at a *higher* accuracy.)
        return points[0][1]
    for (a0, c0), (a1, c1) in zip(points, points[1:]):
        if accuracy == a1:
            return c1
        if a0 < accuracy < a1:
            fraction = (accuracy - a0) / (a1 - a0)
            return c0 + (c1 - c0) * fraction
    return points[-1][1]  # accuracy == last point (loop covers the rest)


def weighted_miss_rate(pairs: Iterable[Tuple[int, int]]) -> float:
    """Overall miss rate from per-branch (executions, misses) pairs."""
    total_execs = 0
    total_misses = 0
    for execs, misses in pairs:
        total_execs += execs
        total_misses += misses
    if total_execs == 0:
        return 0.0
    return total_misses / total_execs
