"""Experiment harness: drivers that regenerate every figure of the paper.

One module per paper artifact (see DESIGN.md's per-experiment index):

* :mod:`repro.harness.fig2` -- value-prediction confidence (Figure 2);
* :mod:`repro.harness.fig4` -- FSM area vs. state count (Figure 4);
* :mod:`repro.harness.fig5` -- misprediction rate vs. estimated area for
  the customized branch predictors (Figure 5);
* :mod:`repro.harness.fig67` -- the example machines of Figures 6 and 7;
* :mod:`repro.harness.ablations` -- the paper's in-text claims
  (don't-care sizing, start-up state counts) and the GA extension study;

plus shared infrastructure: metrics, the linear area model, the
per-branch FSM training flow of Section 7.3, and plain-text reporting.
"""

from repro.harness.metrics import pareto_front
from repro.harness.area_model import LinearAreaModel, fit_area_model
from repro.harness.branch_training import (
    PerBranchModels,
    collect_branch_models,
    design_branch_predictors,
    rank_branches_by_misses,
)
from repro.harness.reporting import format_table, write_report

__all__ = [
    "pareto_front",
    "LinearAreaModel",
    "fit_area_model",
    "PerBranchModels",
    "collect_branch_models",
    "design_branch_predictors",
    "rank_branches_by_misses",
    "format_table",
    "write_report",
]
