"""Training the per-branch custom FSM predictors (Section 7.3).

"The first step ... is to profile the application with our baseline
predictor ... This identifies those branches that are causing the greatest
amount of mispredictions.  For each of these branches we generate a Markov
Model ... we keep track of a single global history register of length N.
When a branch is encountered in the trace, we update that branch's Markov
Model with the outcome of the branch, given the history in the global
history register."  The paper uses history length 9 for all custom branch
predictors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.automata.moore import MooreMachine
from repro.core.markov import MarkovModel, _as_bit_array
from repro.core.pipeline import DesignConfig, DesignResult, FSMDesigner
from repro.predictors.xscale import XScalePredictor
from repro.workloads.trace import BranchTrace

try:  # numpy accelerates profiling but is never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

CUSTOM_HISTORY_LENGTH = 9  # the paper's setting for all custom predictors

# Below this many records the per-record loop beats array setup.
_BATCH_THRESHOLD = 2048


@dataclass
class PerBranchModels:
    """Global-history Markov models keyed by static branch address."""

    order: int
    models: Dict[int, MarkovModel] = field(default_factory=dict)

    def model_for(self, pc: int) -> MarkovModel:
        model = self.models.get(pc)
        if model is None:
            model = MarkovModel(order=self.order)
            self.models[pc] = model
        return model


def collect_branch_models(
    trace: BranchTrace, order: int = CUSTOM_HISTORY_LENGTH
) -> PerBranchModels:
    """One profiling pass: feed every branch's Markov model with the
    global history at the moment the branch executes."""
    collection = PerBranchModels(order=order)
    models = collection.models
    if _np is not None and len(trace.pcs) >= _BATCH_THRESHOLD:
        outcomes = _as_bit_array(trace.outcomes)
        if outcomes is not None:
            pcs = _np.asarray(trace.pcs, dtype=_np.int64)
            length = outcomes.shape[0]
            # Global history before record i, zero-seeded like the loop:
            # bit j-1 holds the outcome j records back.
            hist = _np.zeros(length, dtype=_np.int64)
            for j in range(1, order + 1):
                hist[j:] += outcomes[: length - j] << (j - 1)
            # One composite key per record folds the whole profiling pass
            # into a single np.unique: (dense pc index, history, outcome).
            uniq_pcs, inverse = _np.unique(pcs, return_inverse=True)
            shift = order + 1
            composite = (
                (inverse.astype(_np.int64) << shift) | (hist << 1) | outcomes
            )
            keys, counts = _np.unique(composite, return_counts=True)
            pc_list = uniq_pcs.tolist()
            submask = (1 << shift) - 1
            for key, count in zip(keys.tolist(), counts.tolist()):
                pc = pc_list[key >> shift]
                history = (key & submask) >> 1
                model = models.get(pc)
                if model is None:
                    model = MarkovModel(order=order)
                    models[pc] = model
                model.totals[history] = model.totals.get(history, 0) + count
                if key & 1:
                    model.ones[history] = model.ones.get(history, 0) + count
            return collection
    mask = (1 << order) - 1
    history = 0
    for pc, outcome in zip(trace.pcs, trace.outcomes):
        model = models.get(pc)
        if model is None:
            model = MarkovModel(order=order)
            models[pc] = model
        model.observe(history, outcome)
        history = ((history << 1) | outcome) & mask
    return collection


def rank_branches_by_misses(
    trace: BranchTrace, baseline: Optional[XScalePredictor] = None
) -> List[Tuple[int, int]]:
    """Profile with the baseline predictor; return ``(pc, misses)`` sorted
    worst-first.  Ties break on pc for determinism."""
    predictor = baseline if baseline is not None else XScalePredictor()
    misses: Dict[int, int] = {}
    for pc, outcome in zip(trace.pcs, trace.outcomes):
        taken = bool(outcome)
        if predictor.predict(pc) != taken:
            misses[pc] = misses.get(pc, 0) + 1
        predictor.update(pc, taken)
    return sorted(misses.items(), key=lambda item: (-item[1], item[0]))


def design_branch_predictors(
    models: PerBranchModels,
    branch_pcs: List[int],
    dont_care_fraction: float = 0.01,
) -> Dict[int, DesignResult]:
    """Run the full design flow for each listed branch.

    Uses the paper's defaults: bias threshold 1/2 (plain direction
    prediction) and the 1% don't-care rule of Section 4.3.
    """
    config = DesignConfig(
        order=models.order,
        bias_threshold=0.5,
        dont_care_fraction=dont_care_fraction,
    )
    designer = FSMDesigner(config)
    results: Dict[int, DesignResult] = {}
    for pc in branch_pcs:
        model = models.models.get(pc)
        if model is None or model.total_observations == 0:
            continue
        results[pc] = designer.design_from_model(model)
    return results


def machines_of(designs: Dict[int, DesignResult]) -> Dict[int, MooreMachine]:
    return {pc: result.machine for pc, result in designs.items()}


def fsm_correct_counts(
    trace: BranchTrace, machines: Dict[int, MooreMachine]
) -> Dict[int, Tuple[int, int]]:
    """Replay the update-all policy of Section 7.3: every machine consumes
    every outcome; when its own branch executes, the output of the current
    state is its prediction.  Returns ``{pc: (executions, correct)}``.

    Fast path: under update-all, every machine walks the same global
    outcome stream independently of where its own branch sits, so each
    machine's whole state trajectory is one compiled ``run_states`` batch;
    the per-branch tally is a couple of gathers over that trajectory.
    """
    if _np is not None and machines and len(trace.pcs) >= _BATCH_THRESHOLD:
        outcomes = _as_bit_array(trace.outcomes)
        if outcomes is not None:
            from repro.perf.batched import BatchedMoore, batch_enabled

            pcs = _np.asarray(trace.pcs, dtype=_np.int64)
            items = list(machines.items())
            result: Dict[int, Tuple[int, int]] = {}
            # One stacked pass covers every machine (they all consume the
            # same global outcome stream), replacing a compile + run per
            # machine with a single BatchedMoore run.
            states_all = None
            if batch_enabled() and len(items) > 1:
                states_all = BatchedMoore(
                    [machine for _pc, machine in items]
                ).run_states(outcomes)
            for m, (pc, machine) in enumerate(items):
                idx = _np.flatnonzero(pcs == pc)
                execs = int(idx.size)
                correct = 0
                if execs and machine.num_states == 1:
                    correct = int((outcomes[idx] == machine.outputs[0]).sum())
                elif execs:
                    if states_all is not None:
                        states_after = states_all[m]
                    else:
                        states_after = machine.compile().run_states(outcomes)
                    outputs = _np.asarray(machine.outputs, dtype=_np.int64)
                    # The machine predicts from the state *before* each
                    # record: after[i-1], or the start state at i == 0.
                    before = _np.empty(execs, dtype=_np.int64)
                    nonzero = idx > 0
                    before[nonzero] = states_after[idx[nonzero] - 1]
                    before[~nonzero] = machine.start
                    correct = int((outputs[before] == outcomes[idx]).sum())
                result[pc] = (execs, correct)
            return result
    items = [
        (pc, machine.outputs, machine.transitions, machine.start)
        for pc, machine in machines.items()
    ]
    states = [start for _pc, _outputs, _transitions, start in items]
    execs = [0] * len(items)
    correct = [0] * len(items)
    pc_to_slot = {pc: slot for slot, (pc, _o, _t, _s) in enumerate(items)}
    transition_tables = [transitions for _pc, _o, transitions, _s in items]
    output_tables = [outputs for _pc, outputs, _t, _s in items]
    slots = range(len(items))
    for pc, outcome in zip(trace.pcs, trace.outcomes):
        slot = pc_to_slot.get(pc)
        if slot is not None:
            execs[slot] += 1
            if output_tables[slot][states[slot]] == outcome:
                correct[slot] += 1
        for slot2 in slots:
            states[slot2] = transition_tables[slot2][states[slot2]][outcome]
    return {
        items[slot][0]: (execs[slot], correct[slot]) for slot in slots
    }


def rank_by_improvement(
    train_trace: BranchTrace,
    designs: Dict[int, DesignResult],
    baseline_misses: Dict[int, int],
) -> List[int]:
    """Order candidate branches by how many *training-input* mispredictions
    the custom FSM removes relative to the baseline, dropping branches the
    FSM does not improve.

    The paper deploys FSMs on "branches that do not work well with the
    default predictor"; measuring the improvement on the training input
    (never the evaluation input) is the practical way a design flow
    decides which candidates are worth hard-wiring.
    """
    machines = machines_of(designs)
    per_branch = fsm_correct_counts(train_trace, machines)
    improvements: List[Tuple[int, int]] = []
    for pc, (execs, correct) in per_branch.items():
        fsm_misses = execs - correct
        gain = baseline_misses.get(pc, 0) - fsm_misses
        if gain > 0:
            improvements.append((pc, gain))
    improvements.sort(key=lambda item: (-item[1], item[0]))
    return [pc for pc, _gain in improvements]
