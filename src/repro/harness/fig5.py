"""Figure 5: misprediction rate vs. estimated area, per benchmark.

For each of the six embedded benchmarks the driver produces the paper's
five series:

* ``xscale`` -- the 128-entry BTB-coupled baseline (one point);
* ``gshare`` -- a range of table sizes;
* ``lgc``    -- the local/global chooser over a range of sizes;
* ``custom-same`` -- the customized architecture trained on the *same*
  input used for measurement, sweeping the number of custom FSM entries
  (the limit case the paper uses to bound custom performance);
* ``custom-diff`` -- trained on a different input (the honest result).

Beyond the paper, two *modern-regime* series situate the 2001 frontier
against later predictor families (gate with ``modern=False`` or
``REPRO_MODERN=0``, or ``--no-modern`` on the CLI):

* ``tage``       -- a small TAGE over a range of table index widths;
* ``perceptron`` -- a hashed perceptron over a range of table sizes.

Custom-curve areas use the fitted linear states->area model, exactly as
the paper does ("we use this approximation to quantify area rather than
performing synthesis on each") -- the model is fitted on the machines
designed in this very run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.automata.moore import MooreMachine
from repro.harness.area_model import LinearAreaModel, fit_area_model
from repro.harness.branch_training import (
    CUSTOM_HISTORY_LENGTH,
    collect_branch_models,
    design_branch_predictors,
    fsm_correct_counts,
    rank_branches_by_misses,
    rank_by_improvement,
)
from repro.harness.reporting import format_table
from repro.perf.batched import batched_map
from repro.predictors.base import simulate_predictor
from repro.predictors.gshare import GSharePredictor
from repro.predictors.local_global import LocalGlobalChooser
from repro.predictors.xscale import TAG_BITS, TARGET_BITS, XScalePredictor
from repro.synth.area import cam_bits_area, estimate_area, table_bits_area
from repro.workloads.programs import BRANCH_BENCHMARKS, branch_trace
from repro.workloads.trace import BranchTrace

DEFAULT_GSHARE_BITS: Tuple[int, ...] = (8, 10, 12, 14, 16)
DEFAULT_LGC_BITS: Tuple[int, ...] = (6, 8, 10, 12, 14)
DEFAULT_CUSTOM_COUNTS: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 10, 12, 16, 20)
DEFAULT_TAGE_BITS: Tuple[int, ...] = (8, 10, 12)
DEFAULT_PERCEPTRON_ROWS: Tuple[int, ...] = (128, 256, 512)


def modern_default() -> bool:
    """Modern-regime series default: on unless ``REPRO_MODERN`` is a
    falsy value (``0``, ``false``, ``no``, ``off``)."""
    import os

    raw = os.environ.get("REPRO_MODERN", "").strip().lower()
    return raw not in ("0", "false", "no", "off")

# Every predictor needs a BTB for branch targets; the paper's Figure 5
# x-axis is "the total area of the predictor, including the BTB structure",
# so the direction-only predictors (gshare, LGC) are charged for one too.
BTB_STORAGE_AREA = table_bits_area((TAG_BITS + TARGET_BITS) * 128)


@dataclass(frozen=True)
class SeriesPoint:
    label: str
    area: float
    miss_rate: float


@dataclass
class Series:
    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def best_miss_rate(self) -> float:
        # Degenerate points (0 lookups) carry the NaN sentinel; they must
        # not poison the minimum.
        rates = [p.miss_rate for p in self.points if p.miss_rate == p.miss_rate]
        return min(rates) if rates else float("nan")

    def miss_rate_at_or_below_area(self, area: float) -> Optional[float]:
        eligible = [
            p.miss_rate
            for p in self.points
            if p.area <= area and p.miss_rate == p.miss_rate
        ]
        return min(eligible) if eligible else None


@dataclass
class FigureFiveResult:
    benchmark: str
    series: Dict[str, Series]

    def render(self) -> str:
        rows = []
        for name in sorted(self.series):
            for point in self.series[name].points:
                rows.append((name, point.label, point.area, point.miss_rate))
        return format_table(
            ["series", "config", "est_area", "miss_rate"],
            rows,
            title=f"Figure 5 ({self.benchmark}): misprediction rate vs estimated area",
        )


# ----------------------------------------------------------------------
# Custom-architecture evaluation
# ----------------------------------------------------------------------

def _xscale_misses_excluding(
    trace: BranchTrace, excluded: frozenset
) -> Tuple[int, int]:
    """Simulate the XScale baseline counting only branches outside
    ``excluded`` (which neither query nor train the baseline, since the
    custom table owns them).  Returns (counted branches, misses)."""
    predictor = XScalePredictor()
    counted = 0
    misses = 0
    for pc, outcome in zip(trace.pcs, trace.outcomes):
        if pc in excluded:
            continue
        taken = bool(outcome)
        if predictor.predict(pc) != taken:
            misses += 1
        counted += 1
        predictor.update(pc, taken)
    return counted, misses


def evaluate_custom_curve(
    eval_trace: BranchTrace,
    ordered_pcs: Sequence[int],
    machines: Dict[int, MooreMachine],
    counts: Sequence[int],
    area_model: LinearAreaModel,
    series_name: str,
) -> Series:
    """Sweep the number of custom FSM entries, worst branch first."""
    usable = [pc for pc in ordered_pcs if pc in machines]
    per_branch = fsm_correct_counts(
        eval_trace, {pc: machines[pc] for pc in usable}
    )
    total = len(eval_trace)
    baseline = XScalePredictor()
    series = Series(name=series_name)
    for k in counts:
        k = min(k, len(usable))
        if k == 0:
            continue
        chosen = usable[:k]
        _counted, base_misses = _xscale_misses_excluding(
            eval_trace, frozenset(chosen)
        )
        fsm_misses = sum(
            per_branch[pc][0] - per_branch[pc][1] for pc in chosen
        )
        area = baseline.area()
        for pc in chosen:
            area += cam_bits_area(TAG_BITS + TARGET_BITS)
            area += area_model.estimate(machines[pc].num_states)
        series.points.append(
            SeriesPoint(
                label=f"k={k}",
                area=area,
                miss_rate=(base_misses + fsm_misses) / total,
            )
        )
        if k == len(usable):
            break
    return series


# ----------------------------------------------------------------------
# Full driver
# ----------------------------------------------------------------------

def _panel_series(
    eval_trace: BranchTrace,
    diff_train_trace: BranchTrace,
    gshare_bits: Sequence[int],
    lgc_bits: Sequence[int],
    custom_counts: Sequence[int],
    history_length: int,
    modern: bool,
    tage_bits: Sequence[int],
    perceptron_rows: Sequence[int],
) -> Dict[str, Series]:
    """Every series of one panel, given the evaluation trace and the
    different-input training trace for ``custom-diff``.  Shared by the
    benchmark driver and the trace-source driver."""
    series: Dict[str, Series] = {}

    xscale = XScalePredictor()
    stats = simulate_predictor(xscale, eval_trace)
    series["xscale"] = Series(
        name="xscale",
        points=[SeriesPoint("btb128", xscale.area(), stats.miss_rate)],
    )

    gshare_series = Series(name="gshare")
    gshare_predictors = [GSharePredictor(bits) for bits in gshare_bits]
    for predictor, stats in zip(
        gshare_predictors, batched_map(gshare_predictors, eval_trace)
    ):
        gshare_series.points.append(
            SeriesPoint(
                predictor.name.replace("gshare-", "2^"),
                predictor.area() + BTB_STORAGE_AREA,
                stats.miss_rate,
            )
        )
    series["gshare"] = gshare_series

    lgc_series = Series(name="lgc")
    lgc_predictors = [LocalGlobalChooser(bits) for bits in lgc_bits]
    for predictor, stats in zip(
        lgc_predictors, batched_map(lgc_predictors, eval_trace)
    ):
        lgc_series.points.append(
            SeriesPoint(
                predictor.name.replace("lgc-", "2^"),
                predictor.area() + BTB_STORAGE_AREA,
                stats.miss_rate,
            )
        )
    series["lgc"] = lgc_series

    if modern:
        from repro.predictors.perceptron import PerceptronPredictor
        from repro.predictors.tage import TagePredictor

        tage_series = Series(name="tage")
        for bits in tage_bits:
            predictor = TagePredictor(index_bits=bits)
            stats = simulate_predictor(predictor, eval_trace)
            tage_series.points.append(
                SeriesPoint(
                    predictor.name.replace("tage-", ""),
                    predictor.area() + BTB_STORAGE_AREA,
                    stats.miss_rate,
                )
            )
        series["tage"] = tage_series

        perceptron_series = Series(name="perceptron")
        for rows in perceptron_rows:
            predictor = PerceptronPredictor(num_perceptrons=rows)
            stats = simulate_predictor(predictor, eval_trace)
            perceptron_series.points.append(
                SeriesPoint(
                    predictor.name.replace("perceptron-", ""),
                    predictor.area() + BTB_STORAGE_AREA,
                    stats.miss_rate,
                )
            )
        series["perceptron"] = perceptron_series

    max_count = max(custom_counts)
    for variant_name, train_trace in (
        ("custom-same", eval_trace),
        ("custom-diff", diff_train_trace),
    ):
        ranked = rank_branches_by_misses(train_trace)
        models = collect_branch_models(train_trace, order=history_length)
        candidate_pcs = [pc for pc, _misses in ranked[: 2 * max_count]]
        designs = design_branch_predictors(models, candidate_pcs)
        # Deploy in order of measured training-input improvement, skipping
        # branches where the FSM does not beat the baseline.
        top_pcs = rank_by_improvement(train_trace, designs, dict(ranked))[:max_count]
        machines = {pc: designs[pc].machine for pc in top_pcs}
        area_model = fit_area_model(
            [
                (m.num_states, estimate_area(m).area)
                for m in machines.values()
            ]
        )
        series[variant_name] = evaluate_custom_curve(
            eval_trace, top_pcs, machines, custom_counts, area_model, variant_name
        )
    return series


def run_fig5_benchmark(
    benchmark: str,
    max_branches: int = 120_000,
    gshare_bits: Sequence[int] = DEFAULT_GSHARE_BITS,
    lgc_bits: Sequence[int] = DEFAULT_LGC_BITS,
    custom_counts: Sequence[int] = DEFAULT_CUSTOM_COUNTS,
    history_length: int = CUSTOM_HISTORY_LENGTH,
    modern: Optional[bool] = None,
    tage_bits: Sequence[int] = DEFAULT_TAGE_BITS,
    perceptron_rows: Sequence[int] = DEFAULT_PERCEPTRON_ROWS,
) -> FigureFiveResult:
    """All five paper series of one Figure 5 panel, plus the modern-regime
    ``tage``/``perceptron`` series unless disabled."""
    if modern is None:
        modern = modern_default()
    eval_trace = branch_trace(benchmark, "eval", max_branches)
    train_trace = branch_trace(benchmark, "train", max_branches)
    series = _panel_series(
        eval_trace,
        train_trace,
        gshare_bits,
        lgc_bits,
        custom_counts,
        history_length,
        modern,
        tage_bits,
        perceptron_rows,
    )
    return FigureFiveResult(benchmark=benchmark, series=series)


def run_fig5_source(
    spec: str,
    length: Optional[int] = None,
    seed: Optional[int] = None,
    gshare_bits: Sequence[int] = DEFAULT_GSHARE_BITS,
    lgc_bits: Sequence[int] = DEFAULT_LGC_BITS,
    custom_counts: Sequence[int] = DEFAULT_CUSTOM_COUNTS,
    history_length: int = CUSTOM_HISTORY_LENGTH,
    modern: Optional[bool] = None,
    tage_bits: Sequence[int] = DEFAULT_TAGE_BITS,
    perceptron_rows: Sequence[int] = DEFAULT_PERCEPTRON_ROWS,
) -> FigureFiveResult:
    """One Figure 5 panel over a registered trace source.

    The ``custom-diff`` training trace comes from the source's
    :meth:`training_counterpart` -- a different input variant when the
    source has one (MiniVM train/eval), otherwise the same spec at
    ``seed + 1`` -- so the honest cross-input series keeps its meaning
    for purely seeded sources.
    """
    from repro.workloads.sources import (
        create_source,
        source_length,
        source_seed,
        source_trace,
    )

    if modern is None:
        modern = modern_default()
    source = create_source(spec)
    spec_string = source.spec_string()
    length = source_length() if length is None else int(length)
    seed = source_seed() if seed is None else int(seed)
    eval_trace = source_trace(spec_string, length, seed)
    counterpart = source.training_counterpart()
    train_seed = seed
    if counterpart.spec_string() == spec_string:
        train_seed = seed + 1
    train_trace = source_trace(counterpart.spec_string(), length, train_seed)
    series = _panel_series(
        eval_trace,
        train_trace,
        gshare_bits,
        lgc_bits,
        custom_counts,
        history_length,
        modern,
        tage_bits,
        perceptron_rows,
    )
    return FigureFiveResult(benchmark=f"source:{spec_string}", series=series)


def run_fig5(
    benchmarks: Sequence[str] = BRANCH_BENCHMARKS,
    run_id: Optional[str] = None,
    **kwargs,
) -> Dict[str, FigureFiveResult]:
    from functools import partial

    from repro.perf.cache import digest_of
    from repro.reliability.durability import durable_map

    names = list(benchmarks)
    # Resolve the modern-series gate before fingerprinting so a cached
    # sweep is never replayed under a different REPRO_MODERN setting.
    if kwargs.get("modern") is None:
        kwargs["modern"] = modern_default()
    # One shard per benchmark panel; ordering (and therefore output) is
    # identical to the serial comprehension this replaces.  With run_id
    # each completed panel is journaled, so a killed sweep resumes with
    # only the missing panels.
    results = durable_map(
        partial(run_fig5_benchmark, **kwargs),
        names,
        run_id=run_id,
        sweep="fig5.panels",
        fingerprint=digest_of(sorted(kwargs.items())),
    )
    return dict(zip(names, results))
