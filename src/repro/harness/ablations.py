"""Ablations for the design choices the paper asserts in text.

* **Don't-care sizing** (Section 4.3): "by placing only the 1% least seen
  histories in the 'don't care' set can reduce the size of the predictor
  by a factor of two with negligible impact on prediction accuracy."
  ``run_dontcare_ablation`` sweeps the fraction and reports state count
  and training-trace miss rate per setting.

* **Start-up states** (Section 4.7): "There can be up to 2^N start-up
  states, and they typically account for around one half of all states."
  ``run_startup_ablation`` designs with and without the reduction.

* **GA search** (extension; Emer & Gloy contrast, Section 3.2):
  ``run_ga_comparison`` pits a genetic-programming search for a Moore
  machine of the same size budget against the constructed predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.markov import MarkovModel
from repro.core.pipeline import DesignConfig, FSMDesigner
from repro.harness.branch_training import (
    collect_branch_models,
    rank_branches_by_misses,
)
from repro.harness.reporting import format_table
from repro.perf.cache import digest_of
from repro.reliability.durability import durable_map
from repro.workloads.programs import branch_trace


# ----------------------------------------------------------------------
# Don't-care fraction
# ----------------------------------------------------------------------

@dataclass
class DontCareRow:
    fraction: float
    num_states: int
    num_terms: float
    expected_miss_rate: float  # from the Markov model, see below


def _model_miss_rate(model: MarkovModel, machine) -> float:
    """Expected steady-state miss rate of ``machine`` under the history
    distribution recorded in ``model``: for each observed history, the
    machine (from any state) lands in a state predicting cover(h); compare
    with the per-history outcome counts."""
    total = 0
    misses = 0
    order = model.order
    for history in model.histories():
        count = model.count(history)
        ones = round((model.probability_of_one(history) or 0.0) * count)
        bits = format(history, f"0{order}b")
        prediction = machine.output_after(bits)
        misses += (count - ones) if prediction == 1 else ones
        total += count
    return misses / total if total else 0.0


def run_dontcare_ablation(
    benchmark: str = "vortex",
    fractions: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05),
    order: int = 9,
    max_branches: int = 60_000,
    top_branches: int = 5,
    run_id: Optional[str] = None,
) -> List[DontCareRow]:
    """Average predictor size and model-expected miss rate over the worst
    branches of ``benchmark``, for each don't-care fraction.

    The paper's size-halving claim needs histories that are *observed but
    rare*; vortex (noisy hashed-digest branches) is our densest-model
    benchmark and shows the effect, while motif-driven benchmarks like gs
    observe so few distinct histories that the implicit unseen-history
    don't-cares already dominate (see EXPERIMENTS.md)."""
    trace = branch_trace(benchmark, "train", max_branches)
    ranked = rank_branches_by_misses(trace)
    models = collect_branch_models(trace, order=order)
    chosen = [pc for pc, _m in ranked[:top_branches]]
    chosen_models = {pc: models.models[pc] for pc in chosen}
    return durable_map(
        partial(_dontcare_shard, order=order, models=chosen_models, chosen=chosen),
        list(fractions),
        run_id=run_id,
        sweep="ablation.dontcare",
        fingerprint=digest_of(benchmark, order, max_branches, top_branches),
    )


def _dontcare_shard(
    fraction: float,
    order: int,
    models: Dict[int, MarkovModel],
    chosen: Sequence[int],
) -> DontCareRow:
    """One don't-care fraction's row (a parallel_map shard)."""
    config = DesignConfig(
        order=order, bias_threshold=0.5, dont_care_fraction=fraction
    )
    designer = FSMDesigner(config)
    states: List[int] = []
    terms: List[int] = []
    miss_rates: List[float] = []
    for pc in chosen:
        model = models[pc]
        result = designer.design_from_model(model)
        states.append(result.machine.num_states)
        terms.append(len(result.cover))
        miss_rates.append(_model_miss_rate(model, result.machine))
    return DontCareRow(
        fraction=fraction,
        num_states=round(sum(states) / len(states)),
        num_terms=sum(terms) / len(terms),
        expected_miss_rate=sum(miss_rates) / len(miss_rates),
    )


def render_dontcare(rows: List[DontCareRow]) -> str:
    return format_table(
        ["dontcare_fraction", "avg_states", "avg_terms", "expected_miss_rate"],
        [(r.fraction, r.num_states, r.num_terms, r.expected_miss_rate) for r in rows],
        title="Ablation: don't-care fraction vs predictor size and accuracy",
    )


# ----------------------------------------------------------------------
# Start-up state reduction
# ----------------------------------------------------------------------

@dataclass
class StartupRow:
    benchmark: str
    branch_pc: int
    states_with_startup: int
    states_final: int

    @property
    def removed_fraction(self) -> float:
        if self.states_with_startup == 0:
            return 0.0
        return 1.0 - self.states_final / self.states_with_startup


def run_startup_ablation(
    benchmarks: Sequence[str] = ("ijpeg", "gs", "vortex"),
    order: int = 9,
    max_branches: int = 60_000,
    top_branches: int = 4,
    run_id: Optional[str] = None,
) -> List[StartupRow]:
    shards = durable_map(
        partial(
            _startup_shard,
            order=order,
            max_branches=max_branches,
            top_branches=top_branches,
        ),
        list(benchmarks),
        run_id=run_id,
        sweep="ablation.startup",
        fingerprint=digest_of(order, max_branches, top_branches),
    )
    return [row for shard in shards for row in shard]


def _startup_shard(
    benchmark: str, order: int, max_branches: int, top_branches: int
) -> List[StartupRow]:
    """One benchmark's startup-reduction rows (a parallel_map shard)."""
    trace = branch_trace(benchmark, "train", max_branches)
    ranked = rank_branches_by_misses(trace)
    models = collect_branch_models(trace, order=order)
    with_reduction = FSMDesigner(
        DesignConfig(order=order, dont_care_fraction=0.01)
    )
    without_reduction = FSMDesigner(
        DesignConfig(order=order, dont_care_fraction=0.01, reduce_startup=False)
    )
    rows: List[StartupRow] = []
    for pc, _misses in ranked[:top_branches]:
        model = models.models[pc]
        full = without_reduction.design_from_model(model)
        reduced = with_reduction.design_from_model(model)
        rows.append(
            StartupRow(
                benchmark=benchmark,
                branch_pc=pc,
                states_with_startup=full.machine.num_states,
                states_final=reduced.machine.num_states,
            )
        )
    return rows


def render_startup(rows: List[StartupRow]) -> str:
    return format_table(
        ["benchmark", "branch", "with_startup", "final", "removed_frac"],
        [
            (r.benchmark, hex(r.branch_pc), r.states_with_startup,
             r.states_final, r.removed_fraction)
            for r in rows
        ],
        title="Ablation: start-up state reduction (Section 4.7)",
    )


# ----------------------------------------------------------------------
# GA-search comparison (extension)
# ----------------------------------------------------------------------

@dataclass
class GAComparisonRow:
    benchmark: str
    branch_pc: int
    constructed_states: int
    constructed_accuracy: float
    ga_states: int
    ga_accuracy: float


def run_ga_comparison(
    benchmark: str = "ijpeg",
    order: int = 6,
    max_branches: int = 30_000,
    top_branches: int = 2,
    generations: int = 40,
    seed: int = 7,
    run_id: Optional[str] = None,
) -> List[GAComparisonRow]:
    """Constructed FSMs vs. GA-searched machines of the same state budget,
    scored on per-branch prediction accuracy over the training trace."""
    from repro.search.ga import GAConfig, search_predictor
    from repro.harness.branch_training import fsm_correct_counts

    trace = branch_trace(benchmark, "train", max_branches)
    ranked = rank_branches_by_misses(trace)
    models = collect_branch_models(trace, order=order)
    designer = FSMDesigner(DesignConfig(order=order, dont_care_fraction=0.01))
    rows: List[GAComparisonRow] = []
    interesting = []
    for pc, _misses in ranked:
        design = designer.design_from_model(models.models[pc])
        if design.machine.num_states >= 4:  # skip trivially-biased branches
            interesting.append((pc, design))
        if len(interesting) >= top_branches:
            break
    for pc, design in interesting:
        constructed = design.machine
        counts = fsm_correct_counts(trace, {pc: constructed})
        execs, correct = counts[pc]
        constructed_accuracy = correct / execs if execs else 0.0

        config = GAConfig(
            num_states=max(2, constructed.num_states),
            generations=generations,
            seed=seed,
        )
        # With run_id the GA checkpoints per generation and resumes a
        # killed search from the last complete generation.
        ga_machine, ga_accuracy = search_predictor(
            trace, pc, config,
            run_id=run_id, checkpoint_tag=f"{benchmark}-{pc:x}",
        )
        rows.append(
            GAComparisonRow(
                benchmark=benchmark,
                branch_pc=pc,
                constructed_states=constructed.num_states,
                constructed_accuracy=constructed_accuracy,
                ga_states=ga_machine.num_states,
                ga_accuracy=ga_accuracy,
            )
        )
    return rows


def render_ga(rows: List[GAComparisonRow]) -> str:
    return format_table(
        ["benchmark", "branch", "constructed_states", "constructed_acc",
         "ga_states", "ga_acc"],
        [
            (r.benchmark, hex(r.branch_pc), r.constructed_states,
             r.constructed_accuracy, r.ga_states, r.ga_accuracy)
            for r in rows
        ],
        title="Extension: constructed FSMs vs GA-searched FSMs (Emer & Gloy contrast)",
    )
