"""Plain-text reporting: aligned tables and result files.

Every figure driver both *returns* structured data (for tests) and can
*render* it the way the paper's tables/series read; the benchmark targets
print the rendering and tee it under ``results/``.  Reports are written
atomically (temp file + ``os.replace``, the cache's pattern), so a crash
mid-write can never leave a truncated ``results/*.txt`` behind.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterable, List, Optional, Sequence

# Explicit override for the results directory (tests monkeypatch this).
# When unset, the location is resolved at call time by results_dir():
# REPRO_RESULTS_DIR if set, else <cwd>/results.  It used to be derived
# from __file__ (src/repro/harness/../../../results), which works from a
# source checkout but sends an installed wheel's reports into
# site-packages.
RESULTS_DIR: Optional[str] = None


def results_dir() -> str:
    """Absolute path of the directory reports are written to."""
    if RESULTS_DIR:
        return os.path.abspath(RESULTS_DIR)
    env = os.environ.get("REPRO_RESULTS_DIR", "").strip()
    if env:
        return os.path.abspath(env)
    return os.path.join(os.getcwd(), "results")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def results_path(name: str) -> str:
    """Absolute path of ``results/<name>`` (directory created on demand)."""
    directory = results_dir()
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, name)


def write_report(name: str, text: str) -> str:
    """Atomically write a rendering under ``results/``; returns its path.

    The rendering lands in a temp file first and is renamed into place,
    so readers (and a resumed run diffing against a clean one) see either
    the previous complete report or the new complete report -- never a
    torn file, even if the process is killed mid-write."""
    path = results_path(name)
    data = text if text.endswith("\n") else text + "\n"
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
