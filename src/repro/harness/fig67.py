"""Figures 6 and 7: the example machines the paper walks through.

Figure 6 is a machine generated for an ijpeg branch that "captures the
history pattern 1x" -- predict taken iff the branch two back was taken --
in four states.  Figure 7, from gs, captures several patterns with
don't-cares at once.  The driver designs the custom predictors for both
benchmarks and returns the machine whose cover matches each figure's
description, plus the DOT rendering used to eyeball the state diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import DesignResult
from repro.harness.branch_training import (
    collect_branch_models,
    design_branch_predictors,
    rank_branches_by_misses,
)
from repro.workloads.programs import branch_label_map, branch_trace


@dataclass
class ExampleMachine:
    benchmark: str
    branch_label: str
    design: DesignResult

    def render(self) -> str:
        lines = [
            f"Benchmark: {self.benchmark}   branch: {self.branch_label}",
            f"Minimized patterns: {' | '.join(self.design.cover_strings())}",
            f"States: {self.design.machine.num_states} "
            f"(start-up states removed: {self.design.startup_states_removed})",
            "",
            self.design.machine.describe(),
            "",
            self.design.machine.to_dot(name="example"),
        ]
        return "\n".join(lines)


def design_all_branches(
    benchmark: str, max_branches: int = 60_000, top: int = 10
) -> Dict[str, DesignResult]:
    """Design predictors for the benchmark's worst branches, keyed by the
    human-readable branch label."""
    trace = branch_trace(benchmark, "train", max_branches)
    ranked = rank_branches_by_misses(trace)
    models = collect_branch_models(trace)
    designs = design_branch_predictors(models, [pc for pc, _m in ranked[:top]])
    labels = branch_label_map(benchmark)
    return {labels.get(pc, hex(pc)): d for pc, d in designs.items()}


def find_smallest_short_pattern(
    designs: Dict[str, DesignResult],
    max_states: int = 8,
) -> Optional[Tuple[str, DesignResult]]:
    """The Figure 6 exemplar: the smallest machine whose cover is a single
    short pattern (few literals), like the paper's ``1x``."""
    candidates = [
        (label, d)
        for label, d in designs.items()
        if len(d.cover) == 1
        and d.cover[0].num_literals >= 1
        and 2 <= d.machine.num_states <= max_states
    ]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda item: (item[1].machine.num_states, item[0]),
    )


def find_multi_pattern(
    designs: Dict[str, DesignResult],
) -> Optional[Tuple[str, DesignResult]]:
    """The Figure 7 exemplar: a machine capturing two or more patterns
    with don't-cares."""
    candidates = [
        (label, d) for label, d in designs.items() if len(d.cover) >= 2
    ]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda item: (item[1].machine.num_states, item[0]),
    )


def run_fig67(
    max_branches: int = 60_000, run_id: Optional[str] = None
) -> Dict[str, ExampleMachine]:
    """Reproduce both example figures.  Keys: ``fig6`` and ``fig7``.

    With ``run_id`` the whole reproduction runs as one journaled shard
    (:func:`~repro.reliability.durability.durable_call`), so a crashed
    ``figures fig67`` re-run replays instead of redesigning."""
    if run_id is not None:
        from functools import partial

        from repro.perf.cache import digest_of
        from repro.reliability.durability import durable_call

        return durable_call(
            partial(_run_fig67, max_branches),
            run_id,
            "fig67.examples",
            fingerprint=digest_of(max_branches),
        )
    return _run_fig67(max_branches)


def _run_fig67(max_branches: int = 60_000) -> Dict[str, ExampleMachine]:
    examples: Dict[str, ExampleMachine] = {}

    ijpeg_designs = design_all_branches("ijpeg", max_branches)
    fig6 = find_smallest_short_pattern(ijpeg_designs)
    if fig6 is None:
        fig6 = min(
            ijpeg_designs.items(), key=lambda item: item[1].machine.num_states
        )
    examples["fig6"] = ExampleMachine(
        benchmark="ijpeg", branch_label=fig6[0], design=fig6[1]
    )

    gs_designs = design_all_branches("gs", max_branches)
    fig7 = find_multi_pattern(gs_designs)
    if fig7 is None:
        fig7 = max(gs_designs.items(), key=lambda item: len(item[1].cover))
    examples["fig7"] = ExampleMachine(
        benchmark="gs", branch_label=fig7[0], design=fig7[1]
    )
    return examples
