"""Gate-level synthesis of a Moore machine: encoded next-state logic.

Given a machine and a state encoding, build -- with the same two-level
minimizer the design flow uses -- one minimized cover per next-state bit and
per output bit, with unused code points as don't-cares.  The result can be
*simulated* (evaluating the covers), which lets the tests prove that the
synthesized netlist implements the behavioral machine exactly: this is the
verification a real flow would get from gate-level simulation of the
generated VHDL.

Minterm layout for next-state logic: ``(state_code << num_inputs) | input``
with the input symbol index in the low bits; output logic is a function of
the state code alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.automata.moore import MooreMachine
from repro.logic.cube import Cube, cover_contains
from repro.logic.espresso import minimize as logic_minimize
from repro.logic.truth_table import TruthTable
from repro.synth.encoding import StateEncoding, binary_encoding


def _input_bits_needed(num_symbols: int) -> int:
    bits = 1
    while (1 << bits) < num_symbols:
        bits += 1
    return bits


@dataclass(frozen=True)
class SynthesizedMachine:
    """The encoded machine: registers plus minimized two-level logic."""

    machine: MooreMachine
    encoding: StateEncoding
    input_bits: int
    next_state_covers: Tuple[Tuple[Cube, ...], ...]  # one per state bit, MSB j
    output_cover: Tuple[Cube, ...]

    # ------------------------------------------------------------------
    # Gate-level simulation
    # ------------------------------------------------------------------
    def step_code(self, code: int, symbol_index: int) -> int:
        """Next state code from the synthesized logic."""
        minterm = (code << self.input_bits) | symbol_index
        next_code = 0
        for bit, cover in enumerate(self.next_state_covers):
            if cover_contains(list(cover), minterm):
                next_code |= 1 << (self.encoding.num_bits - 1 - bit)
        return next_code

    def output_of_code(self, code: int) -> int:
        return 1 if cover_contains(list(self.output_cover), code) else 0

    def run_codes(self, text: str) -> Tuple[int, int]:
        """Simulate an input string; returns (final code, final output)."""
        code = self.encoding.code_of(self.machine.start)
        for symbol in text:
            code = self.step_code(code, self.machine.symbol_index(symbol))
        return code, self.output_of_code(code)

    # ------------------------------------------------------------------
    # Cost accounting (consumed by repro.synth.area)
    # ------------------------------------------------------------------
    @property
    def num_flip_flops(self) -> int:
        return self.encoding.num_bits

    @property
    def total_literals(self) -> int:
        literals = sum(
            cube.num_literals for cover in self.next_state_covers for cube in cover
        )
        literals += sum(cube.num_literals for cube in self.output_cover)
        return literals

    @property
    def total_terms(self) -> int:
        return sum(len(c) for c in self.next_state_covers) + len(self.output_cover)


def synthesize_machine(
    machine: MooreMachine, encoding: StateEncoding = None
) -> SynthesizedMachine:
    """Synthesize ``machine`` under ``encoding`` (default: binary).

    Each next-state bit and the Moore output become minimized covers; code
    points not assigned to any state are don't-cares everywhere, which is
    exactly the freedom a synthesis tool exploits.
    """
    if encoding is None:
        encoding = binary_encoding(machine.num_states)
    if encoding.num_states != machine.num_states:
        raise ValueError(
            f"encoding has {encoding.num_states} codes for "
            f"{machine.num_states} states"
        )
    num_symbols = len(machine.alphabet)
    input_bits = _input_bits_needed(num_symbols)
    width = encoding.num_bits + input_bits

    next_covers: List[Tuple[Cube, ...]] = []
    for bit in range(encoding.num_bits):
        bit_mask = 1 << (encoding.num_bits - 1 - bit)
        on: List[int] = []
        off: List[int] = []
        for state in range(machine.num_states):
            code = encoding.code_of(state)
            for sym in range(num_symbols):
                minterm = (code << input_bits) | sym
                next_code = encoding.code_of(machine.transitions[state][sym])
                if next_code & bit_mask:
                    on.append(minterm)
                else:
                    off.append(minterm)
        table = TruthTable.from_sets(width, on, off)
        next_covers.append(tuple(logic_minimize(table)))

    on_out: List[int] = []
    off_out: List[int] = []
    for state in range(machine.num_states):
        code = encoding.code_of(state)
        if machine.outputs[state]:
            on_out.append(code)
        else:
            off_out.append(code)
    output_table = TruthTable.from_sets(encoding.num_bits, on_out, off_out)
    output_cover = tuple(logic_minimize(output_table))

    return SynthesizedMachine(
        machine=machine,
        encoding=encoding,
        input_bits=input_bits,
        next_state_covers=tuple(next_covers),
        output_cover=output_cover,
    )
