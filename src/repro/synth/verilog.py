"""Verilog emission (extension beyond the paper, which targeted VHDL).

Same two-process structure as :mod:`repro.synth.vhdl` in Verilog-2001:
a localparam-encoded state register and two always blocks.  Provided
because most modern customized-processor flows consume Verilog.
"""

from __future__ import annotations

from typing import List

from repro.automata.moore import MooreMachine


def generate_verilog(machine: MooreMachine, module_name: str = "fsm_predictor") -> str:
    """Render ``machine`` as a synthesizable Verilog-2001 module."""
    if machine.alphabet != ("0", "1"):
        raise ValueError("Verilog emitter supports binary-alphabet machines only")
    if not module_name.isidentifier():
        raise ValueError(f"invalid module name {module_name!r}")

    n = machine.num_states
    width = max(1, (n - 1).bit_length())
    lines: List[str] = []
    emit = lines.append
    emit(f"module {module_name} (")
    emit("  input  wire clk,")
    emit("  input  wire reset,")
    emit("  input  wire outcome,")
    emit("  output reg  prediction")
    emit(");")
    emit("")
    for state in range(n):
        emit(f"  localparam [{width-1}:0] S{state} = {width}'d{state};")
    emit("")
    emit(f"  reg [{width-1}:0] state, next_state;")
    emit("")
    emit("  always @(posedge clk) begin")
    emit("    if (reset)")
    emit(f"      state <= S{machine.start};")
    emit("    else")
    emit("      state <= next_state;")
    emit("  end")
    emit("")
    emit("  always @(*) begin")
    emit("    case (state)")
    for state, row in enumerate(machine.transitions):
        emit(f"      S{state}: next_state = outcome ? S{row[1]} : S{row[0]};")
    emit(f"      default: next_state = S{machine.start};")
    emit("    endcase")
    emit("  end")
    emit("")
    emit("  always @(*) begin")
    emit("    case (state)")
    for state, output in enumerate(machine.outputs):
        emit(f"      S{state}: prediction = 1'b{output};")
    emit("      default: prediction = 1'b0;")
    emit("    endcase")
    emit("  end")
    emit("")
    emit("endmodule")
    return "\n".join(lines) + "\n"
