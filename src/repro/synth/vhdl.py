"""VHDL emission for generated predictors (Section 4.8).

"We translate our description of the finite state machine to VHDL, which is
then read and analyzed by the Synopsys design tool."  The emitter produces
the classic synthesizable two-process pattern: an enumerated state type, a
clocked state register with synchronous reset to the start state, a
combinational next-state case statement, and a Moore output assignment.

Without a VHDL toolchain in this environment the output cannot be compiled
here, but the structure is checked by tests (balanced process/case blocks,
one ``when`` arm per state and input, every state named) and the *meaning*
of the netlist is validated separately by simulating the encoded machine
(:mod:`repro.synth.logic_synthesis`).
"""

from __future__ import annotations

from typing import List

from repro.automata.moore import MooreMachine


def _state_name(index: int) -> str:
    return f"s{index}"


def generate_vhdl(machine: MooreMachine, entity_name: str = "fsm_predictor") -> str:
    """Render ``machine`` as a synthesizable VHDL entity.

    Ports: ``clk``, ``reset`` (synchronous, to the start state),
    ``outcome`` (the observed 0/1 input that drives the transition) and
    ``prediction`` (the Moore output of the current state).
    """
    if machine.alphabet != ("0", "1"):
        raise ValueError("VHDL emitter supports binary-alphabet machines only")
    if not entity_name.isidentifier():
        raise ValueError(f"invalid entity name {entity_name!r}")

    states = ", ".join(_state_name(i) for i in range(machine.num_states))
    lines: List[str] = []
    emit = lines.append
    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("")
    emit(f"entity {entity_name} is")
    emit("  port (")
    emit("    clk        : in  std_logic;")
    emit("    reset      : in  std_logic;")
    emit("    outcome    : in  std_logic;")
    emit("    prediction : out std_logic")
    emit("  );")
    emit(f"end entity {entity_name};")
    emit("")
    emit(f"architecture behavioral of {entity_name} is")
    emit(f"  type state_type is ({states});")
    emit(f"  signal state      : state_type := {_state_name(machine.start)};")
    emit("  signal next_state : state_type;")
    emit("begin")
    emit("")
    emit("  state_register : process (clk)")
    emit("  begin")
    emit("    if rising_edge(clk) then")
    emit("      if reset = '1' then")
    emit(f"        state <= {_state_name(machine.start)};")
    emit("      else")
    emit("        state <= next_state;")
    emit("      end if;")
    emit("    end if;")
    emit("  end process state_register;")
    emit("")
    emit("  next_state_logic : process (state, outcome)")
    emit("  begin")
    emit("    case state is")
    for state, row in enumerate(machine.transitions):
        emit(f"      when {_state_name(state)} =>")
        emit("        if outcome = '0' then")
        emit(f"          next_state <= {_state_name(row[0])};")
        emit("        else")
        emit(f"          next_state <= {_state_name(row[1])};")
        emit("        end if;")
    emit("    end case;")
    emit("  end process next_state_logic;")
    emit("")
    emit("  output_logic : process (state)")
    emit("  begin")
    emit("    case state is")
    for state, output in enumerate(machine.outputs):
        emit(f"      when {_state_name(state)} =>")
        emit(f"        prediction <= '{output}';")
    emit("    end case;")
    emit("  end process output_logic;")
    emit("")
    emit("end architecture behavioral;")
    return "\n".join(lines) + "\n"
