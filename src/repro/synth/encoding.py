"""State encodings for FSM synthesis.

"The job of synthesis is to find an efficient hardware implementation for
the state machine.  This includes finding a good encoding for the states"
(Section 4.8).  Three classic encodings are provided; the area estimator
synthesizes with each and can report the best, which is a coarse but honest
model of what a logic synthesizer does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class StateEncoding:
    """An assignment of binary codes to FSM states.

    ``codes[state]`` is the code as an integer over ``num_bits`` bits.
    Codes must be unique; unused code points are don't-cares for the
    next-state logic, which is where encodings win or lose area.
    """

    name: str
    num_bits: int
    codes: Tuple[int, ...]

    def __post_init__(self) -> None:
        limit = 1 << self.num_bits
        seen: set = set()
        for state, code in enumerate(self.codes):
            if not 0 <= code < limit:
                raise ValueError(
                    f"code {code} of state {state} exceeds {self.num_bits} bits"
                )
            if code in seen:
                raise ValueError(f"duplicate code {code}")
            seen.add(code)

    @property
    def num_states(self) -> int:
        return len(self.codes)

    def code_of(self, state: int) -> int:
        return self.codes[state]

    def state_of(self, code: int) -> int:
        """Inverse lookup; raises KeyError for unused code points."""
        try:
            return self.codes.index(code)
        except ValueError:
            raise KeyError(f"code {code} maps to no state")

    def code_string(self, state: int) -> str:
        return format(self.codes[state], f"0{self.num_bits}b")

    def used_codes(self) -> frozenset:
        return frozenset(self.codes)


def _min_bits(num_states: int) -> int:
    if num_states < 1:
        raise ValueError("need at least one state")
    bits = 1
    while (1 << bits) < num_states:
        bits += 1
    return bits


def binary_encoding(num_states: int) -> StateEncoding:
    """Sequential binary codes: state i -> i."""
    bits = _min_bits(num_states)
    return StateEncoding(
        name="binary", num_bits=bits, codes=tuple(range(num_states))
    )


def gray_encoding(num_states: int) -> StateEncoding:
    """Reflected Gray codes: adjacent state ids differ in one bit, which
    often shrinks next-state logic for counter-like machines."""
    bits = _min_bits(num_states)
    return StateEncoding(
        name="gray",
        num_bits=bits,
        codes=tuple((i >> 1) ^ i for i in range(num_states)),
    )


def one_hot_encoding(num_states: int) -> StateEncoding:
    """One flip-flop per state; simple logic, many registers."""
    return StateEncoding(
        name="one_hot",
        num_bits=num_states,
        codes=tuple(1 << i for i in range(num_states)),
    )


def standard_encodings(num_states: int) -> List[StateEncoding]:
    """The encodings the area estimator tries, cheapest-register first."""
    encodings = [binary_encoding(num_states), gray_encoding(num_states)]
    # One-hot state vectors get large quickly; only worth trying while the
    # per-bit truth tables stay small.
    if num_states <= 24:
        encodings.append(one_hot_encoding(num_states))
    return encodings
