"""Pure-python semantic walker for the emitted HDL (no external simulator).

The Verilog/VHDL emitters are tested structurally elsewhere (balanced
blocks, one arm per state); this module closes the *semantic* gap: it
parses the emitted next-state and output case statements back into a
transition table and steps that table like the register-transfer hardware
would -- reset to the start state, then one ``outcome`` bit per clock,
reading ``prediction`` combinationally from the current state.  Agreement
with :meth:`MooreMachine.run_bits` on arbitrary traces is then asserted
by the conformance tests, so a bug in either emitter shows up as a
bit-exact mismatch instead of passing the shape checks.

The walker is deliberately strict: it recognizes exactly the dialect the
emitters produce (one ``when``/case arm per state, ternary or
if/else next-state selection) and raises :class:`HDLWalkError` on
anything unexpected, so a drive-by edit to an emitter cannot silently
turn the semantic check into a no-op.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


class HDLWalkError(ValueError):
    """The HDL text does not match the emitted two-process structure."""


@dataclass(frozen=True)
class WalkedFSM:
    """A machine recovered from emitted HDL: start state, Moore outputs,
    and per-state (on-0, on-1) successors."""

    start: int
    outputs: Tuple[int, ...]
    transitions: Tuple[Tuple[int, int], ...]

    @property
    def num_states(self) -> int:
        return len(self.outputs)

    def step(self, state: int, bit: int) -> int:
        return self.transitions[state][1 if bit else 0]

    def run_bits(self, bits: Sequence[int]) -> List[int]:
        """Clock the walked register through ``bits`` after a reset,
        reading the prediction after every edge -- the same contract as
        :meth:`MooreMachine.trace_outputs` / ``CompiledMoore.run_bits``."""
        state = self.start
        outputs: List[int] = []
        for bit in bits:
            state = self.step(state, bit)
            outputs.append(self.outputs[state])
        return outputs


def _validated(
    start: int,
    outputs: Dict[int, int],
    transitions: Dict[int, Tuple[int, int]],
    language: str,
) -> WalkedFSM:
    if not outputs or not transitions:
        raise HDLWalkError(f"{language}: found no case arms to walk")
    states = set(outputs)
    if set(transitions) != states:
        raise HDLWalkError(
            f"{language}: output arms cover states {sorted(states)} but "
            f"next-state arms cover {sorted(transitions)}"
        )
    if states != set(range(len(states))):
        raise HDLWalkError(f"{language}: state numbering has holes: {sorted(states)}")
    if start not in states:
        raise HDLWalkError(f"{language}: reset state s{start} has no case arm")
    for state, (on_zero, on_one) in transitions.items():
        for target in (on_zero, on_one):
            if target not in states:
                raise HDLWalkError(
                    f"{language}: state s{state} transitions to missing s{target}"
                )
    return WalkedFSM(
        start=start,
        outputs=tuple(outputs[s] for s in range(len(states))),
        transitions=tuple(transitions[s] for s in range(len(states))),
    )


_V_RESET = re.compile(r"if \(reset\)\s*\n\s*state <= S(\d+);")
_V_NEXT = re.compile(
    r"S(\d+):\s*next_state = outcome \? S(\d+) : S(\d+);"
)
_V_OUTPUT = re.compile(r"S(\d+):\s*prediction = 1'b([01]);")


def walk_verilog(text: str) -> WalkedFSM:
    """Recover the machine from a module emitted by ``generate_verilog``."""
    reset = _V_RESET.search(text)
    if reset is None:
        raise HDLWalkError("verilog: no synchronous reset assignment found")
    transitions: Dict[int, Tuple[int, int]] = {}
    for state, on_one, on_zero in _V_NEXT.findall(text):
        key = int(state)
        if key in transitions:
            raise HDLWalkError(f"verilog: duplicate next-state arm for S{key}")
        # The ternary reads `outcome ? S<on 1> : S<on 0>`.
        transitions[key] = (int(on_zero), int(on_one))
    outputs: Dict[int, int] = {}
    for state, value in _V_OUTPUT.findall(text):
        key = int(state)
        if key in outputs:
            raise HDLWalkError(f"verilog: duplicate output arm for S{key}")
        outputs[key] = int(value)
    return _validated(int(reset.group(1)), outputs, transitions, "verilog")


_VH_RESET = re.compile(r"if reset = '1' then\s*\n\s*state <= s(\d+);")
_VH_NEXT_ARM = re.compile(
    r"when s(\d+) =>\s*\n"
    r"\s*if outcome = '0' then\s*\n"
    r"\s*next_state <= s(\d+);\s*\n"
    r"\s*else\s*\n"
    r"\s*next_state <= s(\d+);\s*\n"
    r"\s*end if;"
)
_VH_OUTPUT_ARM = re.compile(
    r"when s(\d+) =>\s*\n\s*prediction <= '([01])';"
)


def walk_vhdl(text: str) -> WalkedFSM:
    """Recover the machine from an entity emitted by ``generate_vhdl``."""
    reset = _VH_RESET.search(text)
    if reset is None:
        raise HDLWalkError("vhdl: no synchronous reset assignment found")
    transitions: Dict[int, Tuple[int, int]] = {}
    for state, on_zero, on_one in _VH_NEXT_ARM.findall(text):
        key = int(state)
        if key in transitions:
            raise HDLWalkError(f"vhdl: duplicate next-state arm for s{key}")
        transitions[key] = (int(on_zero), int(on_one))
    outputs: Dict[int, int] = {}
    for state, value in _VH_OUTPUT_ARM.findall(text):
        key = int(state)
        if key in outputs:
            raise HDLWalkError(f"vhdl: duplicate output arm for s{key}")
        outputs[key] = int(value)
    return _validated(int(reset.group(1)), outputs, transitions, "vhdl")
