"""Synthesis substrate: the reproduction's stand-in for Synopsys.

The paper's final step translates each Moore machine to VHDL and hands it
to Synopsys for synthesis and area reporting (Sections 4.8 and 7.4).  We
reproduce the flow end-to-end in Python:

* :mod:`repro.synth.encoding` -- state encodings (binary, gray, one-hot);
* :mod:`repro.synth.logic_synthesis` -- next-state and output logic as
  minimized two-level covers over the encoded state bits, with a gate-level
  simulator used to verify the encoded machine against the behavioral one;
* :mod:`repro.synth.vhdl` / :mod:`repro.synth.verilog` -- HDL emitters;
* :mod:`repro.synth.area` -- a literal/flip-flop cost model standing in for
  the Synopsys area report (Figure 4 fits a linear states->area bound on
  top of it).
"""

from repro.synth.encoding import StateEncoding, binary_encoding, gray_encoding, one_hot_encoding
from repro.synth.logic_synthesis import SynthesizedMachine, synthesize_machine
from repro.synth.vhdl import generate_vhdl
from repro.synth.verilog import generate_verilog
from repro.synth.area import AreaReport, estimate_area

__all__ = [
    "StateEncoding",
    "binary_encoding",
    "gray_encoding",
    "one_hot_encoding",
    "SynthesizedMachine",
    "synthesize_machine",
    "generate_vhdl",
    "generate_verilog",
    "AreaReport",
    "estimate_area",
]
