"""Area estimation: the stand-in for the Synopsys area report.

Section 7.4 synthesizes a 10% sample of the generated predictors with
Synopsys, observes that "the area is linearly proportional to the number of
states in the machine" (with highly-regular large machines falling below
the line), and uses the fitted linear bound for all remaining predictors.

Our cost model charges a technology-ish price for each flip-flop and each
product-term literal of the minimized next-state/output logic, trying the
standard encodings and keeping the cheapest -- a coarse model of what a
logic synthesizer does, with exactly the properties Figure 4 relies on:
cost grows with combinational complexity, is linearly bounded in state
count, and regular machines come in under the bound.

The same units price SRAM-based table predictors (``table_bits_area``) so
that Figure 5 can put custom FSMs and gshare/LGC tables on one area axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.automata.moore import MooreMachine
from repro.synth.encoding import StateEncoding, standard_encodings
from repro.synth.logic_synthesis import SynthesizedMachine, synthesize_machine

# Cost constants (arbitrary "cells"; only ratios matter for the figures).
FLIP_FLOP_COST = 6.0     # a DFF is several gate-equivalents
LITERAL_COST = 1.0       # one literal of a product term ~ one transistor pair
TERM_COST = 1.0          # OR-plane contribution per product term
SRAM_BIT_COST = 2.0      # one bit of table storage, amortized decoder included
CAM_BIT_COST = 4.0       # one bit of fully-associative tag match storage


@dataclass(frozen=True)
class AreaReport:
    """Synthesis outcome for one machine."""

    num_states: int
    encoding_name: str
    flip_flops: int
    literals: int
    terms: int
    area: float

    def __str__(self) -> str:
        return (
            f"AreaReport(states={self.num_states}, enc={self.encoding_name}, "
            f"ffs={self.flip_flops}, literals={self.literals}, "
            f"terms={self.terms}, area={self.area:.1f})"
        )


def area_of_synthesized(synth: SynthesizedMachine) -> float:
    return (
        FLIP_FLOP_COST * synth.num_flip_flops
        + LITERAL_COST * synth.total_literals
        + TERM_COST * synth.total_terms
    )


def estimate_area(
    machine: MooreMachine,
    encodings: Optional[Sequence[StateEncoding]] = None,
    return_synth: bool = False,
):
    """Synthesize ``machine`` under each candidate encoding, keep the
    cheapest, and return its :class:`AreaReport` (optionally also the
    winning :class:`SynthesizedMachine`)."""
    if encodings is None:
        encodings = standard_encodings(machine.num_states)
    best: Optional[Tuple[float, SynthesizedMachine]] = None
    for encoding in encodings:
        synth = synthesize_machine(machine, encoding)
        area = area_of_synthesized(synth)
        if best is None or area < best[0]:
            best = (area, synth)
    assert best is not None
    area, synth = best
    report = AreaReport(
        num_states=machine.num_states,
        encoding_name=synth.encoding.name,
        flip_flops=synth.num_flip_flops,
        literals=synth.total_literals,
        terms=synth.total_terms,
        area=area,
    )
    if return_synth:
        return report, synth
    return report


def table_bits_area(num_bits: int) -> float:
    """Area of an SRAM table holding ``num_bits`` bits."""
    return SRAM_BIT_COST * num_bits


def cam_bits_area(num_bits: int) -> float:
    """Area of fully-associative (CAM) tag storage of ``num_bits`` bits."""
    return CAM_BIT_COST * num_bits
