"""Morris-Pratt / Knuth-Morris-Pratt comparison traces with closed-form
optimal mispredict rates.

String matching is the classic example of a loop whose branch behaviour
is *exactly* analyzable: every character comparison in MP/KMP search is
a two-way branch ("does text char ``c`` equal pattern char ``p[j]``?"),
and the stream of comparison outcomes is a deterministic function of a
finite Markov chain over matcher states (arxiv 2503.13694 studies
precisely this structure).  That makes these traces *known-optimal
workloads*: the asymptotic mispredict rate of the best possible
predictor -- of any size at or above the chain's state count -- is an
exact rational number we can compute without simulating anything.

Two text families are supported:

* ``iid``      -- text characters drawn IID over the binary alphabet
  ``{a, b}`` with ``P(b) = q``; the outcome stream is a unifilar hidden
  Markov chain and the optimal rate is ``sum_s pi(s) * min(p_s, 1-p_s)``
  over the chain's stationary distribution (solved exactly with
  :class:`fractions.Fraction`).
* ``periodic`` -- the text is a word tiled forever; the outcome stream
  is eventually periodic, the optimal rate is exactly 0, and the cycle
  length bounds the predictor size needed to attain it.

Both the plain Morris-Pratt failure function (``variant="mp"``) and the
KMP strong failure function (``variant="kmp"``) are supported; they
generate different comparison streams for patterns with repeated
characters.

The analytic chain shares its single-step transition logic with the
trace generator (:func:`comparison_events`), so the closed form and the
simulation cannot drift apart; independent cross-checks live in the
conformance suite (naive-matcher differential, opt(k)-oracle bound).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.reliability.errors import TraceError

ALPHABET = ("a", "b")

#: Largest pattern the analytic machinery accepts -- the chain has at
#: most ~3m states, so this is generosity, not a real limit.
MAX_PATTERN_LENGTH = 16

_STAGE = "workloads.kmp"


def _check_word(word: str, what: str) -> str:
    if not word:
        raise TraceError(f"{what} must be non-empty", stage=_STAGE, value=word)
    if len(word) > MAX_PATTERN_LENGTH:
        raise TraceError(
            f"{what} longer than {MAX_PATTERN_LENGTH} characters",
            stage=_STAGE,
            value=word,
        )
    for ch in word:
        if ch not in ALPHABET:
            raise TraceError(
                f"{what} must be over the alphabet {{a, b}}",
                stage=_STAGE,
                value=word,
            )
    return word


# ----------------------------------------------------------------------
# Failure functions
# ----------------------------------------------------------------------


def mp_borders(pattern: str) -> List[int]:
    """``border[j]`` = length of the longest proper border of
    ``pattern[:j]``, for ``j`` in ``0..m`` (``border[0] = 0``)."""
    m = len(pattern)
    border = [0] * (m + 1)
    k = 0
    for j in range(1, m):
        while k > 0 and pattern[j] != pattern[k]:
            k = border[k]
        if pattern[j] == pattern[k]:
            k += 1
        border[j + 1] = k
    return border


def failure_function(pattern: str, variant: str = "mp") -> List[int]:
    """``fail[j]`` = pattern position to recompare after a mismatch at
    position ``j``; ``-1`` means "consume the text character and restart
    at 0 without recomparing".

    ``"mp"`` uses the plain border (Morris-Pratt); ``"kmp"`` uses the
    strong failure function, which additionally skips fallback positions
    that are guaranteed to mismatch the same character.
    """
    border = mp_borders(pattern)
    m = len(pattern)
    fail = [-1] * m
    if variant == "mp":
        for j in range(1, m):
            fail[j] = border[j]
        return fail
    if variant != "kmp":
        raise TraceError(
            "variant must be 'mp' or 'kmp'", stage=_STAGE, value=variant
        )
    for j in range(1, m):
        k = border[j]
        while k >= 0 and pattern[k] == pattern[j]:
            k = fail[k] if k > 0 else -1
        fail[j] = k
    return fail


# ----------------------------------------------------------------------
# The matcher, as a comparison-event generator
# ----------------------------------------------------------------------


def comparison_events(
    pattern: str, chars: Iterable[str], variant: str = "mp"
) -> Iterator[Tuple[int, int]]:
    """Run MP/KMP search of ``pattern`` over the text stream ``chars``
    and yield one ``(pattern_position, outcome)`` event per character
    comparison -- ``outcome`` is 1 when the comparison matched (the
    "taken" direction of the matcher's branch).

    After a full match the matcher restarts from the pattern's longest
    proper border (search-all-occurrences semantics), so the stream
    never terminates early on a periodic text.
    """
    pattern = _check_word(pattern, "pattern")
    fail = failure_function(pattern, variant)
    wrap = mp_borders(pattern)[len(pattern)]
    m = len(pattern)
    j = 0
    for c in chars:
        while True:
            if c == pattern[j]:
                yield (j, 1)
                j += 1
                if j == m:
                    j = wrap
                break  # char consumed
            yield (j, 0)
            f = fail[j]
            if f < 0:
                j = 0
                break  # char consumed without further comparison
            j = f  # recompare the same char at the fallback position


def naive_comparison_events(
    pattern: str, chars: Sequence[str], variant: str = "mp"
) -> List[Tuple[int, int]]:
    """Reference implementation for differential testing: textbook
    scan-with-fallback written independently of the generator above
    (explicit text index, no streaming), truncated to the same event
    semantics.  Kept deliberately naive."""
    pattern = _check_word(pattern, "pattern")
    fail = failure_function(pattern, variant)
    wrap = mp_borders(pattern)[len(pattern)]
    m = len(pattern)
    events: List[Tuple[int, int]] = []
    i = 0
    j = 0
    while i < len(chars):
        if chars[i] == pattern[j]:
            events.append((j, 1))
            i += 1
            j += 1
            if j == m:
                j = wrap
        else:
            events.append((j, 0))
            if fail[j] < 0:
                i += 1
                j = 0
            else:
                j = fail[j]
    return events


# ----------------------------------------------------------------------
# Text families
# ----------------------------------------------------------------------


def iid_chars(q: Fraction, seed: int) -> Iterator[str]:
    """IID text over ``{a, b}`` with ``P(b) = q``, seeded."""
    threshold = float(q)
    rng = random.Random(f"repro-kmp:{seed}")
    while True:
        yield "b" if rng.random() < threshold else "a"


def periodic_chars(word: str) -> Iterator[str]:
    """The word tiled forever."""
    while True:
        for ch in word:
            yield ch


def parse_q(raw: str) -> Fraction:
    """Parse a probability parameter exactly (``"0.3"``, ``"2/5"``)."""
    try:
        q = Fraction(raw)
    except (ValueError, ZeroDivisionError) as exc:
        raise TraceError(
            f"unparseable probability {raw!r}", stage=_STAGE
        ) from exc
    if not 0 < q < 1:
        raise TraceError(
            "probability q must satisfy 0 < q < 1", stage=_STAGE, value=raw
        )
    return q


# ----------------------------------------------------------------------
# Analytic chain (iid texts)
# ----------------------------------------------------------------------

#: Chain states.  ``("fresh", j)``: about to compare a *new* text char
#: against ``pattern[j]``.  ``("forced", j, c)``: about to recompare the
#: already-seen char ``c`` against ``pattern[j]`` after a fallback.
State = Tuple


@dataclass(frozen=True)
class AnalyticChain:
    """The outcome process of MP/KMP search over an IID binary text,
    as an exact finite Markov chain.

    ``transitions[s]`` lists ``(probability, outcome, next_state)``;
    ``p_match[s]`` is the probability the comparison at ``s`` matches.
    The chain is *unifilar*: ``(state, outcome)`` determines the next
    state, so an outcome-driven automaton with ``len(states)`` states
    predicts as well as anything that sees the whole past.
    """

    pattern: str
    variant: str
    q: Fraction
    states: Tuple[State, ...]
    transitions: Dict[State, Tuple[Tuple[Fraction, int, State], ...]]
    p_match: Dict[State, Fraction]

    @property
    def num_states(self) -> int:
        return len(self.states)

    def stationary(self) -> Dict[State, Fraction]:
        return _stationary_distribution(self.states, self.transitions)

    def optimal_rate(self) -> Fraction:
        """Exact asymptotic mispredict rate of the best predictor: at
        each chain state, predict the more likely outcome."""
        pi = self.stationary()
        rate = Fraction(0)
        for s in self.states:
            p = self.p_match[s]
            rate += pi[s] * min(p, 1 - p)
        return rate


def _char_prob(q: Fraction, c: str) -> Fraction:
    return q if c == "b" else 1 - q


def _other(c: str) -> str:
    return "a" if c == "b" else "b"


def analytic_chain(
    pattern: str, q: Fraction, variant: str = "mp"
) -> AnalyticChain:
    """Build the exact outcome chain of ``pattern`` over IID text with
    ``P(b) = q``, by closure from the initial state ``("fresh", 0)``.

    The single-step logic mirrors :func:`comparison_events` exactly:
    a fresh comparison matches with the probability of the pattern char
    and otherwise forces the (known) complement char through the failure
    chain; forced comparisons are deterministic.
    """
    pattern = _check_word(pattern, "pattern")
    if not 0 < q < 1:
        raise TraceError(
            "analytic chain needs 0 < q < 1", stage=_STAGE, value=str(q)
        )
    fail = failure_function(pattern, variant)
    wrap = mp_borders(pattern)[len(pattern)]
    m = len(pattern)

    def after_match(j: int) -> State:
        nxt = j + 1
        return ("fresh", wrap if nxt == m else nxt)

    def after_mismatch(j: int, c: str) -> State:
        f = fail[j]
        if f < 0:
            return ("fresh", 0)
        return ("forced", f, c)

    transitions: Dict[State, Tuple[Tuple[Fraction, int, State], ...]] = {}
    p_match: Dict[State, Fraction] = {}
    pending: List[State] = [("fresh", 0)]
    while pending:
        s = pending.pop()
        if s in transitions:
            continue
        if s[0] == "fresh":
            _, j = s
            p = _char_prob(q, pattern[j])
            edges = (
                (p, 1, after_match(j)),
                (1 - p, 0, after_mismatch(j, _other(pattern[j]))),
            )
        else:
            _, j, c = s
            if c == pattern[j]:
                edges = ((Fraction(1), 1, after_match(j)),)
            else:
                edges = ((Fraction(1), 0, after_mismatch(j, c)),)
        transitions[s] = edges
        p_match[s] = sum(
            (pr for pr, outcome, _ in edges if outcome == 1), Fraction(0)
        )
        for _, _, nxt in edges:
            if nxt not in transitions:
                pending.append(nxt)
    states = tuple(sorted(transitions))
    return AnalyticChain(
        pattern=pattern,
        variant=variant,
        q=q,
        states=states,
        transitions=transitions,
        p_match=p_match,
    )


def _stationary_distribution(
    states: Sequence[State],
    transitions: Dict[State, Tuple[Tuple[Fraction, int, State], ...]],
) -> Dict[State, Fraction]:
    """Solve ``pi P = pi``, ``sum pi = 1`` exactly with Fractions.

    The chain is irreducible on its reachable closure (every state has a
    positive-probability path back to ``("fresh", 0)`` because a fresh
    mismatch cascade always ends there and forced chains are finite), so
    the solution is unique.
    """
    n = len(states)
    index = {s: i for i, s in enumerate(states)}
    # Rows 0..n-1: balance equations pi_j - sum_i pi_i P[i][j] = 0; the
    # last is replaced by normalization sum_i pi_i = 1.
    rows: List[List[Fraction]] = [
        [Fraction(0)] * (n + 1) for _ in range(n)
    ]
    for j in range(n - 1):
        rows[j][j] = Fraction(1)
    for s in states:
        i = index[s]
        for prob, _outcome, nxt in transitions[s]:
            j = index[nxt]
            if j < n - 1:
                rows[j][i] -= prob
    rows[n - 1] = [Fraction(1)] * n + [Fraction(1)]
    # Gaussian elimination with exact arithmetic.
    for col in range(n):
        pivot = next(r for r in range(col, n) if rows[r][col] != 0)
        rows[col], rows[pivot] = rows[pivot], rows[col]
        inv = 1 / rows[col][col]
        rows[col] = [v * inv for v in rows[col]]
        for r in range(n):
            if r != col and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    a - factor * b for a, b in zip(rows[r], rows[col])
                ]
    return {s: rows[index[s]][n] for s in states}


# ----------------------------------------------------------------------
# Periodic texts: cycle structure
# ----------------------------------------------------------------------


def periodic_cycle(
    pattern: str, word: str, variant: str = "mp"
) -> Tuple[List[int], List[int]]:
    """Decompose the outcome stream of ``pattern`` over the tiled
    ``word`` into ``(prefix_outcomes, cycle_outcomes)``.

    The matcher state at each word boundary is ``(pattern position,
    word phase)`` -- a finite set -- so the stream is eventually
    periodic; the optimal mispredict rate is exactly 0, attainable by
    any predictor with at least ``len(cycle_outcomes)`` states.
    """
    pattern = _check_word(pattern, "pattern")
    word = _check_word(word, "word")
    fail = failure_function(pattern, variant)
    wrap = mp_borders(pattern)[len(pattern)]
    m = len(pattern)
    j = 0
    phase = 0
    seen: Dict[Tuple[int, int], int] = {}
    outcomes: List[int] = []
    boundaries: List[int] = []  # event count at each char boundary
    while True:
        key = (j, phase)
        if key in seen:
            start = seen[key]
            return outcomes[:start], outcomes[start:]
        seen[key] = len(outcomes)
        boundaries.append(len(outcomes))
        c = word[phase]
        phase = (phase + 1) % len(word)
        while True:
            if c == pattern[j]:
                outcomes.append(1)
                j += 1
                if j == m:
                    j = wrap
                break
            outcomes.append(0)
            f = fail[j]
            if f < 0:
                j = 0
                break
            j = f


def closed_form_rate(
    pattern: str,
    text: str,
    variant: str = "mp",
    q: Fraction = Fraction(1, 2),
    word: str = "ab",
) -> Tuple[Fraction, int]:
    """``(optimal mispredict rate, states needed to attain it)`` for a
    KMP source configuration.  ``text`` is ``"iid"`` or ``"periodic"``.

    For IID texts the rate is the exact stationary-chain value and the
    state count is the chain's size (the chain is unifilar, so it *is*
    an optimal predictor of that size).  For periodic texts the rate is
    exactly 0 and the state count is the outcome cycle length.
    """
    if text == "iid":
        chain = analytic_chain(pattern, q, variant)
        return chain.optimal_rate(), chain.num_states
    if text == "periodic":
        _prefix, cycle = periodic_cycle(pattern, word, variant)
        return Fraction(0), max(1, len(cycle))
    raise TraceError(
        "text family must be 'iid' or 'periodic'", stage=_STAGE, value=text
    )
