"""Load-value streams for the value-prediction suite (Section 5).

The paper profiles groff, gcc, li, go and perl -- programs chosen "because
of their interesting confidence estimation behavior for value prediction".
Without the Alpha binaries we synthesize per-benchmark load populations
whose *value behaviour classes* follow what the value-prediction literature
(Lipasti & Shen; Sazeides & Smith; Calder et al.) reports for these
programs:

``constant``  -- the value repeats (globals, config flags);
``stride``    -- arithmetic sequences with occasional stride re-bases
                 (array walks, induction variables);
``pattern``   -- short repeating value cycles (pointer chasing over small
                 structures; li is dominated by these), which a stride
                 predictor misses at every wrap -- *periodically*, which is
                 exactly the structure an FSM confidence estimator can
                 learn and a saturating counter cannot;
``chaotic``   -- effectively unpredictable values (hash lookups, input
                 data; go is heavy on these).

Each benchmark is a weighted population of static load sites interleaved
by an inner/outer loop structure, so per-site access sequences are bursty
like real code rather than round-robin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.workloads.inputs import rng_for
from repro.workloads.trace import LoadTrace

VALUE_BENCHMARKS: Tuple[str, ...] = ("gcc", "go", "groff", "li", "perl")

# Behaviour-class mix per benchmark: (constant, stride, pattern, chaotic).
_MIXES: Dict[str, Tuple[float, float, float, float]] = {
    "gcc": (0.15, 0.35, 0.30, 0.20),
    "go": (0.10, 0.25, 0.20, 0.45),
    "groff": (0.30, 0.35, 0.25, 0.10),
    "li": (0.10, 0.20, 0.55, 0.15),
    "perl": (0.15, 0.30, 0.35, 0.20),
}

_NUM_SITES = 96
_LOAD_PC_BASE = 0x4000


class _Site:
    """One static load: produces its next value on each access."""

    def __init__(self, pc: int, kind: str, rng: random.Random):
        self.pc = pc
        self.kind = kind
        self._rng = rng
        if kind == "constant":
            self._value = rng.randrange(1 << 16)
            self._change_prob = rng.choice([0.005, 0.02, 0.05])
        elif kind == "stride":
            # Array walks that re-base at a *fixed* per-site period: the
            # resulting misses are periodic, the temporal structure a
            # designed FSM can anticipate and a saturating counter cannot.
            self._value = rng.randrange(1 << 16)
            self._stride = rng.choice([1, 2, 4, 8, 16])
            self._rebase_period = rng.choice([5, 6, 8, 10, 12, 16, 24])
            self._count = 0
        elif kind == "pattern":
            # Short arithmetic runs with a jump at the wrap (structure
            # walks): the two-delta predictor misses exactly once per run.
            self._run_length = rng.randrange(3, 9)
            self._stride = rng.choice([1, 2, 4, 8])
            self._value = rng.randrange(1 << 16)
            self._index = 0
        elif kind == "chaotic":
            pass
        else:
            raise ValueError(f"unknown site kind {kind!r}")

    def next_value(self) -> int:
        rng = self._rng
        if self.kind == "constant":
            if rng.random() < self._change_prob:
                self._value = rng.randrange(1 << 16)
            return self._value
        if self.kind == "stride":
            self._count += 1
            if self._count % self._rebase_period == 0:
                self._value = rng.randrange(1 << 16)
            else:
                self._value += self._stride
            return self._value & 0xFFFF_FFFF
        if self.kind == "pattern":
            if self._index == self._run_length:
                self._value = rng.randrange(1 << 16)
                self._index = 0
            else:
                self._value += self._stride
            self._index += 1
            return self._value & 0xFFFF_FFFF
        return rng.randrange(1 << 32)  # chaotic


def _make_sites(benchmark: str, rng: random.Random) -> List[_Site]:
    weights = _MIXES[benchmark]
    kinds = ("constant", "stride", "pattern", "chaotic")
    sites: List[_Site] = []
    for i in range(_NUM_SITES):
        kind = rng.choices(kinds, weights=weights)[0]
        sites.append(_Site(pc=_LOAD_PC_BASE + 4 * i, kind=kind, rng=rng))
    return sites


def load_trace(
    benchmark: str, variant: str = "train", num_loads: int = 120_000
) -> LoadTrace:
    """Generate the dynamic load stream for ``benchmark``.

    Accesses are grouped into "loop bursts": an inner loop repeatedly
    touches a small working set of sites before the program moves on,
    mimicking real locality (and giving each site the consecutive accesses
    a stride predictor needs to warm up).
    """
    if benchmark not in _MIXES:
        raise KeyError(
            f"unknown value benchmark {benchmark!r}; choose from {VALUE_BENCHMARKS}"
        )
    from repro.obs.tracing import trace_span
    from repro.perf.cache import TRACE_VERSION, cached, digest_of

    def compute() -> LoadTrace:
        with trace_span(
            "trace.generate",
            kind="load",
            benchmark=benchmark,
            variant=variant,
        ) as span:
            rng = rng_for(benchmark, variant)
            sites = _make_sites(benchmark, rng)
            trace = LoadTrace()
            while len(trace) < num_loads:
                working_set = rng.sample(sites, rng.randrange(1, 4))
                iterations = rng.randrange(8, 60)
                for _ in range(iterations):
                    for site in working_set:
                        trace.append(site.pc, site.next_value())
                        if len(trace) >= num_loads:
                            span.set(records=len(trace))
                            return trace
            span.set(records=len(trace))
            return trace

    key = digest_of("load-trace", benchmark, variant, num_loads, TRACE_VERSION)
    return cached("loads", key, compute)
