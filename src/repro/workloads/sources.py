"""The ``TraceSource`` registry: named, seeded, cacheable trace producers.

Every experiment upstream of this module consumes one thing -- a
PC-attributed 0/1 branch-event stream -- but until now the only producer
was the MiniVM benchmark suite.  A :class:`TraceSource` abstracts the
producer behind a *spec string* (``name`` or ``name:key=value,...``)
that is

* **deterministic**: the same ``(spec, seed)`` always yields the same
  bytes, on every platform (string-seeded PRNGs only);
* **cache-addressed**: :func:`source_trace` keys the content-addressed
  cache by the canonical spec digest, so distinct specs can never
  collide and a re-run never regenerates;
* **registrable**: new sources plug in via :func:`register_source`;
  duplicate or unknown names raise the structured-error taxonomy
  (:class:`TraceError`), which the CLI maps to exit code 2.

Three sources ship in-tree:

``minivm``      -- adapter over the six embedded MiniVM benchmarks
                   (``benchmark=``, ``variant=``);
``pybytecode``  -- real Python functions executed on a restricted
                   CPython-bytecode interpreter (``program=``), PCs are
                   bytecode offsets (:mod:`repro.workloads.pybc`);
``kmp``         -- Morris-Pratt/KMP comparison branches with *known
                   closed-form* optimal mispredict rates
                   (``pattern=``, ``text=``, ``q=``, ``word=``,
                   ``variant=``; :mod:`repro.workloads.kmp`).

Spec strings are canonicalized (sorted keys, defaults materialized)
before hashing, so ``kmp:text=iid,pattern=ab`` and
``kmp:pattern=ab,text=iid`` are the same cache entry.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.reliability.errors import TraceError
from repro.workloads.trace import BranchTrace

_STAGE = "workloads.sources"

#: Salt folded into every source-trace cache key; bump on any change to
#: how registered sources turn a spec into bytes.
SOURCES_VERSION = 1

DEFAULT_SEED = 0
DEFAULT_LENGTH = 20_000


def source_seed(default: int = DEFAULT_SEED) -> int:
    """``REPRO_SOURCE_SEED``: default seed for source-trace generation
    (the CLI's ``--seed`` overrides per invocation)."""
    raw = os.environ.get("REPRO_SOURCE_SEED", "").strip()
    return int(raw) if raw else default


def source_length(default: int = DEFAULT_LENGTH) -> int:
    """``REPRO_SOURCE_LENGTH``: default event count for source traces
    (the CLI's ``--length`` overrides per invocation)."""
    raw = os.environ.get("REPRO_SOURCE_LENGTH", "").strip()
    return int(raw) if raw else default


# ----------------------------------------------------------------------
# Spec strings
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SourceSpec:
    """A parsed source spec: registry name plus sorted key=value params."""

    name: str
    params: Tuple[Tuple[str, str], ...] = ()

    def __str__(self) -> str:
        if not self.params:
            return self.name
        body = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}:{body}"

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        for k, v in self.params:
            if k == key:
                return v
        return default


def parse_source_spec(raw: Union[str, SourceSpec]) -> SourceSpec:
    """Parse ``name`` or ``name:key=value,key=value`` into a
    :class:`SourceSpec`; malformed specs raise :class:`TraceError`."""
    if isinstance(raw, SourceSpec):
        return raw
    text = raw.strip()
    if not text:
        raise TraceError("empty source spec", stage=_STAGE)
    name, _, body = text.partition(":")
    name = name.strip()
    if not name:
        raise TraceError("source spec has no name", stage=_STAGE, spec=raw)
    params: Dict[str, str] = {}
    if body.strip():
        for item in body.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not eq or not key or not value:
                raise TraceError(
                    f"malformed source parameter {item!r} "
                    "(expected key=value)",
                    stage=_STAGE,
                    spec=raw,
                )
            if key in params:
                raise TraceError(
                    f"duplicate source parameter {key!r}",
                    stage=_STAGE,
                    spec=raw,
                )
            params[key] = value
    return SourceSpec(name=name, params=tuple(sorted(params.items())))


def _check_params(spec: SourceSpec, allowed: Dict[str, bool]) -> None:
    """``allowed``: param name -> required?  Unknown/missing -> error."""
    for key, _ in spec.params:
        if key not in allowed:
            raise TraceError(
                f"unknown parameter {key!r} for source {spec.name!r}",
                stage=_STAGE,
                spec=str(spec),
                allowed=sorted(allowed),
            )
    for key, required in allowed.items():
        if required and spec.get(key) is None:
            raise TraceError(
                f"source {spec.name!r} requires parameter {key!r}",
                stage=_STAGE,
                spec=str(spec),
            )


# ----------------------------------------------------------------------
# The TraceSource interface
# ----------------------------------------------------------------------


class TraceSource:
    """A named producer of deterministic PC-attributed branch streams.

    ``generate(length, seed)`` must return a :class:`BranchTrace` of
    exactly ``length`` events and be a pure function of
    ``(spec, length, seed)``.  ``spec`` is the *canonical* spec (all
    defaults materialized), so its string form is a stable cache
    identity.
    """

    def __init__(self, spec: SourceSpec) -> None:
        self.spec = spec

    def spec_string(self) -> str:
        return str(self.spec)

    def generate(self, length: int, seed: int) -> BranchTrace:
        raise NotImplementedError

    def pc_range(self) -> Tuple[int, int]:
        """Inclusive bounds every emitted PC must respect."""
        raise NotImplementedError

    def training_counterpart(self) -> "TraceSource":
        """A different-but-related source for train/eval splits (fig5's
        ``custom-diff`` series).  Default: the same spec -- callers then
        vary the seed; sources with a natural split override this."""
        return self


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[SourceSpec], TraceSource]] = {}


def register_source(
    name: str, factory: Callable[[SourceSpec], TraceSource]
) -> None:
    """Register a source factory; duplicate names are a hard error (two
    owners for one cache namespace would silently cross traces)."""
    if name in _REGISTRY:
        raise TraceError(
            f"source {name!r} is already registered",
            stage=_STAGE,
            known=sorted(_REGISTRY),
        )
    _REGISTRY[name] = factory


def list_sources() -> List[str]:
    return sorted(_REGISTRY)


def create_source(spec: Union[str, SourceSpec]) -> TraceSource:
    """Instantiate the source a spec names; unknown names raise the
    structured :class:`TraceError` (CLI exit 2, never a traceback)."""
    parsed = parse_source_spec(spec)
    factory = _REGISTRY.get(parsed.name)
    if factory is None:
        raise TraceError(
            f"unknown source {parsed.name!r}",
            stage=_STAGE,
            known=list_sources(),
        )
    return factory(parsed)


# ----------------------------------------------------------------------
# Concrete sources
# ----------------------------------------------------------------------


class MiniVMSource(TraceSource):
    """Adapter over the six embedded MiniVM branch benchmarks.  The
    benchmark inputs are already deterministic per (benchmark, variant);
    the seed selects nothing but still participates in the cache key."""

    def __init__(self, spec: SourceSpec) -> None:
        from repro.workloads.programs import BRANCH_BENCHMARKS

        _check_params(spec, {"benchmark": True, "variant": False})
        benchmark = spec.get("benchmark", "")
        variant = spec.get("variant", "eval") or "eval"
        if benchmark not in BRANCH_BENCHMARKS:
            raise TraceError(
                f"unknown minivm benchmark {benchmark!r}",
                stage=_STAGE,
                known=list(BRANCH_BENCHMARKS),
            )
        if variant not in ("train", "eval"):
            raise TraceError(
                "minivm variant must be 'train' or 'eval'",
                stage=_STAGE,
                value=variant,
            )
        canonical = SourceSpec(
            "minivm",
            (("benchmark", benchmark), ("variant", variant)),
        )
        super().__init__(canonical)
        self.benchmark = benchmark
        self.variant = variant

    def generate(self, length: int, seed: int) -> BranchTrace:
        from repro.workloads.programs import branch_trace

        return branch_trace(self.benchmark, self.variant, length)

    def pc_range(self) -> Tuple[int, int]:
        from repro.workloads.programs import build_program
        from repro.workloads.vm import CODE_BASE

        program, _memory = build_program(self.benchmark, self.variant, 8)
        top = CODE_BASE + 4 * (len(program.instructions) - 1)
        return (CODE_BASE, top)

    def training_counterpart(self) -> "TraceSource":
        other = "train" if self.variant == "eval" else "eval"
        return MiniVMSource(
            SourceSpec(
                "minivm",
                (("benchmark", self.benchmark), ("variant", other)),
            )
        )


class PyBytecodeSource(TraceSource):
    """Conditional-jump outcomes of real Python functions executed on the
    restricted bytecode interpreter; PCs are bytecode offsets."""

    def __init__(self, spec: SourceSpec) -> None:
        from repro.workloads.pybc import PROGRAMS

        _check_params(spec, {"program": True})
        program = spec.get("program", "")
        if program not in PROGRAMS:
            raise TraceError(
                f"unknown pybytecode program {program!r}",
                stage=_STAGE,
                known=sorted(PROGRAMS),
            )
        super().__init__(SourceSpec("pybytecode", (("program", program),)))
        self.program = program

    def generate(self, length: int, seed: int) -> BranchTrace:
        from repro.workloads.pybc import program_trace

        return program_trace(self.program, length, seed)

    def pc_range(self) -> Tuple[int, int]:
        from repro.workloads.pybc import program_pc_range

        return program_pc_range(self.program)


class KMPSource(TraceSource):
    """Comparison branches of MP/KMP search, with closed-form optimal
    rates (:func:`repro.workloads.kmp.closed_form_rate`).  PCs are
    pattern positions."""

    def __init__(self, spec: SourceSpec) -> None:
        from repro.workloads import kmp as kmp_mod

        _check_params(
            spec,
            {
                "pattern": True,
                "text": False,
                "q": False,
                "word": False,
                "variant": False,
            },
        )
        pattern = kmp_mod._check_word(spec.get("pattern", ""), "pattern")
        text = spec.get("text", "iid") or "iid"
        variant = spec.get("variant", "mp") or "mp"
        if variant not in ("mp", "kmp"):
            raise TraceError(
                "kmp variant must be 'mp' or 'kmp'",
                stage=_STAGE,
                value=variant,
            )
        params = [("pattern", pattern), ("text", text), ("variant", variant)]
        if text == "iid":
            if spec.get("word") is not None:
                raise TraceError(
                    "parameter 'word' only applies to periodic texts",
                    stage=_STAGE,
                    spec=str(spec),
                )
            q = kmp_mod.parse_q(spec.get("q", "1/2") or "1/2")
            params.append(("q", str(q)))
            self.q: Optional[Fraction] = q
            self.word: Optional[str] = None
        elif text == "periodic":
            if spec.get("q") is not None:
                raise TraceError(
                    "parameter 'q' only applies to iid texts",
                    stage=_STAGE,
                    spec=str(spec),
                )
            word = kmp_mod._check_word(spec.get("word", "ab") or "ab", "word")
            params.append(("word", word))
            self.q = None
            self.word = word
        else:
            raise TraceError(
                "kmp text family must be 'iid' or 'periodic'",
                stage=_STAGE,
                value=text,
            )
        super().__init__(SourceSpec("kmp", tuple(sorted(params))))
        self.pattern = pattern
        self.text = text
        self.variant = variant

    def generate(self, length: int, seed: int) -> BranchTrace:
        from itertools import islice

        from repro.workloads import kmp as kmp_mod

        if self.text == "iid":
            chars = kmp_mod.iid_chars(self.q, seed)
        else:
            chars = kmp_mod.periodic_chars(self.word)
        trace = BranchTrace()
        events = islice(
            kmp_mod.comparison_events(self.pattern, chars, self.variant),
            length,
        )
        for position, outcome in events:
            trace.append(position, bool(outcome))
        return trace

    def pc_range(self) -> Tuple[int, int]:
        return (0, len(self.pattern) - 1)

    def closed_form(self) -> Tuple[Fraction, int]:
        """``(optimal mispredict rate, states needed)`` -- exact."""
        from repro.workloads import kmp as kmp_mod

        return kmp_mod.closed_form_rate(
            self.pattern,
            self.text,
            variant=self.variant,
            q=self.q if self.q is not None else Fraction(1, 2),
            word=self.word if self.word is not None else "ab",
        )


register_source("minivm", MiniVMSource)
register_source("pybytecode", PyBytecodeSource)
register_source("kmp", KMPSource)


# ----------------------------------------------------------------------
# Cached generation
# ----------------------------------------------------------------------


def source_trace(
    spec: Union[str, SourceSpec],
    length: Optional[int] = None,
    seed: Optional[int] = None,
) -> BranchTrace:
    """Generate (or fetch from the content-addressed cache) the trace a
    spec names.  The cache key is the *canonical* spec digest plus
    ``(length, seed)`` and the trace/source version salts."""
    from repro.obs.tracing import trace_span
    from repro.perf.cache import TRACE_VERSION, cached, digest_of

    source = create_source(spec)
    length = source_length() if length is None else int(length)
    seed = source_seed() if seed is None else int(seed)
    if length <= 0:
        raise TraceError(
            "source trace length must be positive",
            stage=_STAGE,
            length=length,
        )
    canonical = source.spec_string()
    key = digest_of(
        "source-trace", canonical, length, seed, TRACE_VERSION, SOURCES_VERSION
    )

    def compute() -> BranchTrace:
        with trace_span(
            "trace.generate",
            kind="source",
            source=canonical,
            length=length,
            seed=seed,
        ):
            trace = source.generate(length, seed)
        if len(trace) != length:
            raise TraceError(
                f"source {canonical!r} produced {len(trace)} events, "
                f"declared {length}",
                stage=_STAGE,
                source=canonical,
            )
        return trace

    return cached("traces", key, compute)


def example_specs() -> List[str]:
    """One canonical spec per registered source (plus variants), used by
    the invariant tests, the fuzzer corpus, and CI smoke runs."""
    return [
        "minivm:benchmark=gsm,variant=eval",
        "minivm:benchmark=vortex,variant=train",
        "pybytecode:program=sort",
        "pybytecode:program=dictprobe",
        "pybytecode:program=tokenize",
        "kmp:pattern=ab,q=1/2,text=iid,variant=mp",
        "kmp:pattern=aab,q=3/10,text=iid,variant=kmp",
        "kmp:pattern=b,text=periodic,variant=mp,word=ab",
    ]
