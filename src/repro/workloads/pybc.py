"""A restricted CPython-bytecode interpreter that records branch events.

MiniVM traces are synthetic by construction; this module gets *real*
program branch behaviour into the harness without any external tooling:
it executes actual Python functions instruction-by-instruction on the
CPython 3.11 bytecode (via :mod:`dis`) and records every conditional
jump -- ``POP_JUMP_*``, ``JUMP_IF_*_OR_POP``, ``FOR_ITER`` -- as a
branch event whose PC is the instruction's bytecode offset.  The result
is the same ``BranchTrace`` shape the MiniVM produces, so the whole
design pipeline runs on interpreter-loop branches (bounds checks, hash
probes, character classification) rather than hand-tiled patterns.

Only the opcode subset the bundled workloads compile to is implemented;
anything else raises a structured :class:`TraceError` naming the opcode
(so a CPython bytecode change fails loudly, not wrongly).  The three
workloads -- insertion sort, dictionary probing, a character-class
tokenizer -- are written in the supported subset and their interpreted
return values are cross-checked against native execution in the tests.

Bytecode offsets are stable for a fixed CPython version; golden vectors
derived from this source carry a ``python`` version tag and are skipped
(not failed) on other interpreters.
"""

from __future__ import annotations

import dis
import operator
import random
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.reliability.errors import TraceError
from repro.workloads.trace import BranchTrace

_STAGE = "workloads.pybc"

#: Hard per-call step budget: no bundled workload is remotely close, so
#: hitting it means a broken transfer of control, not a big input.
MAX_STEPS = 4_000_000


class _Null:
    """The interpreter's NULL sentinel (PUSH_NULL / LOAD_GLOBAL flag)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NULL>"


_NULL = _Null()


class _BudgetReached(Exception):
    """Internal: the requested number of branch events was recorded."""


_BINARY_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "//": operator.floordiv,
    "%": operator.mod,
    "**": operator.pow,
    "<<": operator.lshift,
    ">>": operator.rshift,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "+=": operator.iadd,
    "-=": operator.isub,
    "*=": operator.imul,
    "//=": operator.ifloordiv,
    "%=": operator.imod,
    "&=": operator.iand,
    "|=": operator.ior,
    "^=": operator.ixor,
}

_COMPARE_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Conditional-jump opnames and the predicate deciding "jump taken".
_COND_JUMPS: Dict[str, Callable[[Any], bool]] = {
    "POP_JUMP_FORWARD_IF_TRUE": lambda v: bool(v),
    "POP_JUMP_BACKWARD_IF_TRUE": lambda v: bool(v),
    "POP_JUMP_FORWARD_IF_FALSE": lambda v: not v,
    "POP_JUMP_BACKWARD_IF_FALSE": lambda v: not v,
    "POP_JUMP_FORWARD_IF_NONE": lambda v: v is None,
    "POP_JUMP_BACKWARD_IF_NONE": lambda v: v is None,
    "POP_JUMP_FORWARD_IF_NOT_NONE": lambda v: v is not None,
    "POP_JUMP_BACKWARD_IF_NOT_NONE": lambda v: v is not None,
}


@dataclass(frozen=True)
class _Code:
    """Pre-decoded instruction stream of one function."""

    name: str
    instructions: Tuple[dis.Instruction, ...]
    index_of: Dict[int, int]  # bytecode offset -> instruction index
    max_offset: int


_CODE_CACHE: Dict[Any, _Code] = {}


def _decode(func: Callable) -> _Code:
    code = func.__code__
    cached = _CODE_CACHE.get(code)
    if cached is not None:
        return cached
    instructions = tuple(dis.get_instructions(code))
    decoded = _Code(
        name=code.co_name,
        instructions=instructions,
        index_of={ins.offset: i for i, ins in enumerate(instructions)},
        max_offset=instructions[-1].offset if instructions else 0,
    )
    _CODE_CACHE[code] = decoded
    return decoded


def run_function(
    func: Callable,
    args: Sequence[Any],
    trace: Optional[BranchTrace] = None,
    pc_base: int = 0,
    max_events: Optional[int] = None,
) -> Any:
    """Interpret ``func(*args)`` on its CPython bytecode, appending one
    branch event per conditional jump to ``trace`` (PC = ``pc_base`` +
    instruction offset).  Returns the function's return value, or raises
    :class:`TraceError` on an unsupported opcode.

    With ``max_events`` the call aborts cleanly (returning ``None``) as
    soon as the trace has recorded that many events in total.
    """
    decoded = _decode(func)
    instructions = decoded.instructions
    index_of = decoded.index_of
    globals_ns = func.__globals__
    builtins_ns = globals_ns.get("__builtins__", __builtins__)
    if not isinstance(builtins_ns, dict):
        builtins_ns = vars(builtins_ns)

    local_names = func.__code__.co_varnames
    locals_: Dict[str, Any] = {
        name: value for name, value in zip(local_names, args)
    }
    stack: List[Any] = []
    push = stack.append
    pop = stack.pop

    def record(offset: int, taken: bool) -> None:
        if trace is None:
            return
        trace.append(pc_base + offset, taken)
        if max_events is not None and len(trace) >= max_events:
            raise _BudgetReached()

    def unsupported(ins: dis.Instruction) -> TraceError:
        return TraceError(
            f"unsupported opcode {ins.opname} in {decoded.name!r}",
            stage=_STAGE,
            opcode=ins.opname,
            offset=ins.offset,
        )

    i = 0
    steps = 0
    try:
        while True:
            steps += 1
            if steps > MAX_STEPS:
                raise TraceError(
                    f"step budget exceeded interpreting {decoded.name!r}",
                    stage=_STAGE,
                    steps=steps,
                )
            ins = instructions[i]
            op = ins.opname
            if op in ("RESUME", "PRECALL", "NOP", "CACHE"):
                pass
            elif op == "LOAD_CONST":
                push(ins.argval)
            elif op == "LOAD_FAST":
                try:
                    push(locals_[ins.argval])
                except KeyError:
                    raise UnboundLocalError(ins.argval) from None
            elif op == "STORE_FAST":
                locals_[ins.argval] = pop()
            elif op == "LOAD_GLOBAL":
                # In 3.11 the low oparg bit asks for a leading NULL
                # (plain-call convention).
                if ins.arg is not None and ins.arg & 1:
                    push(_NULL)
                name = ins.argval
                if name in globals_ns:
                    push(globals_ns[name])
                elif name in builtins_ns:
                    push(builtins_ns[name])
                else:
                    raise NameError(name)
            elif op == "PUSH_NULL":
                push(_NULL)
            elif op == "POP_TOP":
                pop()
            elif op == "SWAP":
                n = ins.arg or 0
                stack[-n], stack[-1] = stack[-1], stack[-n]
            elif op == "COPY":
                n = ins.arg or 0
                push(stack[-n])
            elif op == "BINARY_OP":
                fn = _BINARY_OPS.get(ins.argrepr)
                if fn is None:
                    raise unsupported(ins)
                rhs = pop()
                lhs = pop()
                push(fn(lhs, rhs))
            elif op == "COMPARE_OP":
                fn = _COMPARE_OPS.get(str(ins.argval))
                if fn is None:
                    raise unsupported(ins)
                rhs = pop()
                lhs = pop()
                push(fn(lhs, rhs))
            elif op == "IS_OP":
                rhs = pop()
                lhs = pop()
                push((lhs is rhs) ^ bool(ins.arg))
            elif op == "CONTAINS_OP":
                container = pop()
                item = pop()
                push((item in container) ^ bool(ins.arg))
            elif op == "UNARY_NOT":
                push(not pop())
            elif op == "UNARY_NEGATIVE":
                push(-pop())
            elif op == "UNARY_INVERT":
                push(~pop())
            elif op == "BINARY_SUBSCR":
                key = pop()
                container = pop()
                push(container[key])
            elif op == "STORE_SUBSCR":
                key = pop()
                container = pop()
                value = pop()
                container[key] = value
            elif op == "BUILD_LIST":
                n = ins.arg or 0
                items = stack[len(stack) - n :] if n else []
                del stack[len(stack) - n :]
                push(list(items))
            elif op == "BUILD_TUPLE":
                n = ins.arg or 0
                items = stack[len(stack) - n :] if n else []
                del stack[len(stack) - n :]
                push(tuple(items))
            elif op == "BUILD_MAP":
                n = ins.arg or 0
                entries = stack[len(stack) - 2 * n :] if n else []
                del stack[len(stack) - 2 * n :]
                push(
                    {
                        entries[2 * k]: entries[2 * k + 1]
                        for k in range(n)
                    }
                )
            elif op == "GET_ITER":
                push(iter(pop()))
            elif op == "FOR_ITER":
                iterator = stack[-1]
                try:
                    value = next(iterator)
                except StopIteration:
                    record(ins.offset, False)
                    pop()  # 3.11 pops the exhausted iterator
                    i = index_of[ins.argval]
                    continue
                record(ins.offset, True)
                push(value)
            elif op in _COND_JUMPS:
                taken = _COND_JUMPS[op](pop())
                record(ins.offset, taken)
                if taken:
                    i = index_of[ins.argval]
                    continue
            elif op in ("JUMP_IF_TRUE_OR_POP", "JUMP_IF_FALSE_OR_POP"):
                want = op == "JUMP_IF_TRUE_OR_POP"
                taken = bool(stack[-1]) == want
                record(ins.offset, taken)
                if taken:
                    i = index_of[ins.argval]
                    continue
                pop()
            elif op in (
                "JUMP_FORWARD",
                "JUMP_BACKWARD",
                "JUMP_BACKWARD_NO_INTERRUPT",
            ):
                i = index_of[ins.argval]
                continue
            elif op == "LOAD_METHOD":
                obj = pop()
                name = ins.argval
                attr = getattr(obj, name)
                bound_self = getattr(attr, "__self__", None)
                func_attr = getattr(attr, "__func__", None)
                if bound_self is obj and func_attr is not None:
                    push(func_attr)
                    push(obj)
                else:
                    push(_NULL)
                    push(attr)
            elif op == "CALL":
                n = ins.arg or 0
                call_args = stack[len(stack) - n :] if n else []
                del stack[len(stack) - n :]
                second = pop()
                first = pop()
                if first is _NULL:
                    push(second(*call_args))
                else:
                    push(first(second, *call_args))
            elif op == "UNPACK_SEQUENCE":
                values = list(pop())
                if len(values) != (ins.arg or 0):
                    raise ValueError("unpack length mismatch")
                for value in reversed(values):
                    push(value)
            elif op == "RETURN_VALUE":
                return pop()
            elif op == "RETURN_CONST":  # pragma: no cover - 3.12 forward
                return ins.argval
            else:
                raise unsupported(ins)
            i += 1
    except _BudgetReached:
        return None


# ----------------------------------------------------------------------
# Workload programs (written in the supported opcode subset)
# ----------------------------------------------------------------------


def _w_sort(values, n):
    i = 1
    while i < n:
        key = values[i]
        j = i - 1
        while j >= 0 and values[j] > key:
            values[j + 1] = values[j]
            j = j - 1
        values[j + 1] = key
        i = i + 1
    return values


def _w_dictprobe(keys, queries):
    table = {}
    i = 0
    n = len(keys)
    while i < n:
        table[keys[i]] = i
        i = i + 1
    hits = 0
    i = 0
    m = len(queries)
    while i < m:
        if queries[i] in table:
            hits = hits + 1
        i = i + 1
    return hits


def _w_tokenize(text, n):
    words = 0
    numbers = 0
    kind = 0
    i = 0
    while i < n:
        ch = text[i]
        if ch == " ":
            if kind == 1:
                words = words + 1
            if kind == 2:
                numbers = numbers + 1
            kind = 0
        elif "0" <= ch <= "9":
            if kind == 1:
                words = words + 1
            kind = 2
        else:
            if kind == 2:
                numbers = numbers + 1
            kind = 1
        i = i + 1
    if kind == 1:
        words = words + 1
    if kind == 2:
        numbers = numbers + 1
    return words * 1000 + numbers


def _inputs_sort(rng: random.Random) -> Tuple[Any, ...]:
    n = rng.randint(24, 48)
    return ([rng.randrange(1000) for _ in range(n)], n)


def _inputs_dictprobe(rng: random.Random) -> Tuple[Any, ...]:
    keys = [rng.randrange(500) for _ in range(rng.randint(40, 80))]
    queries = [rng.randrange(700) for _ in range(rng.randint(60, 120))]
    return (keys, queries)


def _inputs_tokenize(rng: random.Random) -> Tuple[Any, ...]:
    pieces: List[str] = []
    for _ in range(rng.randint(20, 40)):
        kind = rng.randrange(3)
        if kind == 0:
            pieces.append(" " * rng.randint(1, 3))
        elif kind == 1:
            pieces.append(
                "".join(
                    rng.choice("abcdefgh") for _ in range(rng.randint(1, 6))
                )
            )
        else:
            pieces.append(
                "".join(
                    rng.choice("0123456789") for _ in range(rng.randint(1, 4))
                )
            )
    text = "".join(pieces)
    return (text, len(text))


#: program name -> (function, seeded input factory)
PROGRAMS: Dict[str, Tuple[Callable, Callable[[random.Random], Tuple]]] = {
    "sort": (_w_sort, _inputs_sort),
    "dictprobe": (_w_dictprobe, _inputs_dictprobe),
    "tokenize": (_w_tokenize, _inputs_tokenize),
}


def python_tag() -> str:
    """``"3.11"``-style tag identifying the bytecode dialect in use."""
    return f"{sys.version_info[0]}.{sys.version_info[1]}"


def program_trace(program: str, length: int, seed: int) -> BranchTrace:
    """Run ``program`` round after round on fresh seeded inputs until
    exactly ``length`` branch events have been recorded."""
    if program not in PROGRAMS:
        raise TraceError(
            f"unknown pybytecode program {program!r}",
            stage=_STAGE,
            known=sorted(PROGRAMS),
        )
    func, make_inputs = PROGRAMS[program]
    trace = BranchTrace()
    round_index = 0
    while len(trace) < length:
        rng = random.Random(f"repro-pybc:{program}:{seed}:{round_index}")
        run_function(
            func, make_inputs(rng), trace=trace, max_events=length
        )
        round_index += 1
    return trace


def program_pc_range(program: str) -> Tuple[int, int]:
    """Inclusive PC bounds for a program's events: bytecode offsets of
    its (single) function."""
    if program not in PROGRAMS:
        raise TraceError(
            f"unknown pybytecode program {program!r}",
            stage=_STAGE,
            known=sorted(PROGRAMS),
        )
    decoded = _decode(PROGRAMS[program][0])
    return (0, decoded.max_offset)
