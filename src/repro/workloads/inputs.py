"""Deterministic input datasets for the benchmark programs.

Each benchmark gets distinct *train* and *eval* inputs drawn from the same
per-benchmark distribution but with different seeds -- the honest analogue
of SPEC's train/ref input sets, and what makes the paper's custom-same vs.
custom-diff comparison meaningful (Section 7.5).

Everything is a pure function of ``(benchmark, variant)``, so traces are
reproducible across processes with no files on disk.
"""

from __future__ import annotations

import random
from typing import Dict, List

VARIANTS = ("train", "eval")

_VARIANT_SEEDS: Dict[str, int] = {"train": 0x5EED1, "eval": 0x5EED2}

_BENCH_SEEDS: Dict[str, int] = {
    "compress": 11,
    "gs": 23,
    "gsm": 37,
    "g721": 53,
    "ijpeg": 71,
    "vortex": 89,
    # value-prediction suite
    "gcc": 101,
    "go": 113,
    "groff": 131,
    "li": 151,
    "perl": 173,
}


def rng_for(benchmark: str, variant: str) -> random.Random:
    """A seeded generator unique to (benchmark, variant)."""
    if benchmark not in _BENCH_SEEDS:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    if variant not in _VARIANT_SEEDS:
        raise KeyError(f"unknown variant {variant!r} (use 'train' or 'eval')")
    return random.Random(_BENCH_SEEDS[benchmark] * 1_000_003 + _VARIANT_SEEDS[variant])


def input_words(benchmark: str, variant: str, length: int) -> List[int]:
    """The input array a benchmark program consumes, as non-negative ints.

    The distribution is benchmark-specific (documented inline) and shared
    by both variants; only the sample differs.
    """
    rng = rng_for(benchmark, variant)
    if benchmark == "compress":
        # Byte stream with repetitive regions: text-like data where short
        # motifs repeat, driving LZW-style match-length behaviour.
        motifs = [
            [rng.randrange(256) for _ in range(rng.randrange(3, 9))]
            for _ in range(12)
        ]
        words: List[int] = []
        while len(words) < length:
            if rng.random() < 0.8:
                words.extend(rng.choice(motifs))
            else:
                words.append(rng.randrange(256))
        return words[:length]
    if benchmark == "ijpeg":
        # Smooth image rows: neighbouring samples differ slightly, with
        # occasional edges; bit 3 of the sample drives the clip test.
        words = []
        value = 128
        for _ in range(length):
            if rng.random() < 0.02:
                value = rng.randrange(256)  # edge
            else:
                value = max(0, min(255, value + rng.randrange(-6, 7)))
            words.append(value)
        return words
    if benchmark == "vortex":
        # Database records: a status word whose low bits are almost always
        # "valid" plus a key field with serial correlation.  The low key
        # bits are biased (most records belong to the common classes), so
        # the branches testing them are well-behaved for any predictor;
        # the re-tests of those bits later in the handler are what only
        # global correlation fixes.
        def fresh_key() -> int:
            key = rng.randrange(1 << 12)
            key &= ~0b11
            if rng.random() < 0.85:
                key |= 0b01  # bit0 set, bit1 clear: the common class
            else:
                key |= (rng.randrange(2) << 1) | rng.randrange(2)
            return key

        words = []
        key = fresh_key()
        for _ in range(length):
            if rng.random() < 0.15:
                key = fresh_key()
            status = 0 if rng.random() < 0.03 else 1
            words.append((key << 1) | status)
        return words
    if benchmark == "gsm":
        # Speech-like samples: an AR(1) process with bursts, so the sign
        # of the decoded signal persists for runs.
        words = []
        signal = 0.0
        for _ in range(length):
            signal = 0.95 * signal + rng.gauss(0.0, 25.0)
            words.append(int(signal) + (1 << 15))
        return words
    if benchmark == "g721":
        # ADPCM voice: small slowly-varying differences.
        words = []
        level = 0.0
        for _ in range(length):
            level = 0.97 * level + rng.gauss(0.0, 12.0)
            words.append(int(level) + (1 << 15))
        return words
    if benchmark == "gs":
        # A token stream for the interpreter: drawing "paths" emit the
        # motif moveto (0), lineto (1) x k, stroke (2); occasionally other
        # operators (3..7) appear.
        words = []
        while len(words) < length:
            roll = rng.random()
            if roll < 0.75:
                words.append(0)  # moveto
                for _ in range(rng.randrange(1, 4)):
                    words.append(1)  # lineto
                words.append(2)  # stroke
            elif roll < 0.9:
                words.append(rng.randrange(3, 8))
            else:
                words.append(rng.randrange(0, 8))
        return words[:length]
    raise KeyError(f"benchmark {benchmark!r} has no VM input distribution")
