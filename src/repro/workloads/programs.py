"""The six branch benchmarks (Section 5's embedded suite), as MiniVM code.

Each program models the *branch-behaviour fingerprint* of its namesake --
the property the paper's evaluation depends on -- using genuine
data-dependent control flow over the inputs of
:mod:`repro.workloads.inputs`:

``compress``
    An LZW-flavoured loop: a match-extension inner loop whose trip count
    drifts slowly with the (growing) dictionary phase, plus a noisy hash
    probe.  The dominant hard branch has *local* loop-count structure, so
    a local-history predictor eventually beats small custom FSMs -- the
    paper calls this out explicitly for compress.
``ijpeg``
    Block-structured pixel loop (two interleaved components with separate
    code paths) where a clip test is re-executed two branches after an
    identical test: the global-correlation pattern ``1x`` the paper's
    Figure 6 FSM captures.
``vortex``
    Database record validation with four record-type handlers: heavily
    biased status checks, plus key tests that are repeated on derived
    values a fixed distance later (strong global correlation; big custom
    win, as in the paper).
``gsm``
    Speech decoding over two interleaved subframe paths: sign tests over
    an AR signal with a one-sample lookahead (making the next sign test
    perfectly correlated a short distance back) and an alternating
    frame-boundary branch.
``g721``
    ADPCM quantizer: nested threshold comparisons where an earlier
    threshold outcome implies a later one -- mostly easy branches, small
    custom gain (8% -> 7% in the paper).
``gs``
    A token interpreter whose dispatch chain is driven by a motif-heavy
    operator stream (moveto/lineto*/stroke) across two rendering contexts,
    giving the multi-pattern correlation of the paper's Figure 7.

Handler replication (several copies of a body at distinct PCs, selected by
data or position) mirrors how real programs get many static branches from
inlining, unrolling and type dispatch; it is what gives the customized
architecture a meaningful number of candidate branches.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.workloads.inputs import input_words
from repro.workloads.trace import BranchTrace
from repro.workloads.vm import Assembler, MiniVM, Program

BRANCH_BENCHMARKS: Tuple[str, ...] = (
    "compress",
    "gs",
    "gsm",
    "g721",
    "ijpeg",
    "vortex",
)

# Register conventions shared by all programs:
#   r1 = input cursor, r2 = n, r3 = loop bound, r4 = zero scratch,
#   r5 = current input word, r6-r12 = per-program temporaries,
#   r9 = accumulator (keeps the ALU work live), r13-r15 = constants/state.


def _prologue(asm: Assembler, bound_offset: int = 1) -> None:
    """r1 = 1 (first input word), r2 = n, r3 = n + bound_offset."""
    asm.li(4, 0)
    asm.ld(2, 4, 0)        # r2 = mem[0] = n
    asm.li(1, 1)
    asm.addi(3, 2, bound_offset)


def _build_ijpeg(asm: Assembler) -> None:
    """Two image components, interleaved sample by sample."""
    _prologue(asm)
    asm.li(9, 0)
    asm.li(14, 0)                   # previous sample (drives the dispatch)
    asm.label("loop")
    asm.ld(5, 1, 0)                 # sample
    asm.andi(6, 14, 32)
    asm.beqi(6, 0, "comp0")         # DSP: dispatch on the previous sample's
    for comp in (1, 0):             #      range bit (== last D outcome)
        asm.label(f"comp{comp}")
        asm.andi(6, 5, 32)
        asm.beqi(6, 0, f"skip_c{comp}")   # C: range test (bit 5, persistent)
        asm.addi(9, 9, 1)
        asm.label(f"skip_c{comp}")
        asm.blti(5, 40, f"skip_m{comp}")  # M: underflow guard (rarely taken)
        asm.addi(9, 9, 2)
        asm.label(f"skip_m{comp}")
        asm.andi(8, 5, 32)
        asm.beqi(8, 0, f"skip_d{comp}")   # D: range re-test == C, 2 back
        asm.addi(9, 9, 3)
        asm.label(f"skip_d{comp}")
        asm.muli(10, 5, 2654435761)
        asm.shri(10, 10, 9)
        asm.andi(10, 10, 15)
        asm.bnei(10, 0, f"skip_b{comp}")  # B: block work (hash bias, 15/16)
        asm.addi(9, 9, 5)
        asm.label(f"skip_b{comp}")
        asm.jmp("next")
    asm.label("next")
    asm.mov(14, 5)
    asm.addi(1, 1, 1)
    asm.blt(1, 3, "loop")           # loop-back
    asm.halt()


def _build_vortex(asm: Assembler) -> None:
    """Four record-type handlers selected by (persistent) key bits."""
    _prologue(asm)
    asm.li(9, 0)
    asm.label("loop")
    asm.ld(5, 1, 0)                 # record word
    asm.andi(6, 5, 1)
    asm.beqi(6, 0, "invalid")       # V: invalid record (taken ~3%)
    asm.shri(7, 5, 1)               # key
    asm.shri(13, 7, 6)
    asm.andi(13, 13, 3)             # record type = key bits 6..7
    asm.beqi(13, 0, "type0")        # T0: type dispatch (persistent key)
    asm.beqi(13, 1, "type1")        # T1
    asm.beqi(13, 2, "type2")        # T2
    for rec_type in (3, 2, 1, 0):
        asm.label(f"type{rec_type}")
        asm.andi(8, 7, 1)
        asm.beqi(8, 0, f"skip_k1_{rec_type}")   # K1: key bit 0
        asm.addi(9, 9, 1)
        asm.label(f"skip_k1_{rec_type}")
        asm.andi(10, 7, 1)
        asm.bnei(10, 0, f"skip_k2_{rec_type}")  # K2: !K1 (inverse test)
        asm.addi(9, 9, 2)
        asm.label(f"skip_k2_{rec_type}")
        # Consistency checks on hashed key digests: heavily biased but
        # data-dependent, so they fragment table-predictor contexts
        # between the K1 test and its re-tests below.
        asm.muli(10, 7, 2654435761)
        asm.shri(11, 10, 5)
        asm.andi(11, 11, 7)
        asm.bnei(11, 0, f"skip_f1_{rec_type}")  # F1: digest check (7/8)
        asm.addi(9, 9, 5)
        asm.label(f"skip_f1_{rec_type}")
        asm.shri(11, 10, 11)
        asm.andi(11, 11, 7)
        asm.bnei(11, 0, f"skip_f2_{rec_type}")  # F2: digest check (7/8)
        asm.addi(9, 9, 6)
        asm.label(f"skip_f2_{rec_type}")
        asm.andi(11, 7, 1)
        asm.beqi(11, 0, f"skip_k3_{rec_type}")  # K3: == K1, 4 back
        asm.addi(9, 9, 3)
        asm.label(f"skip_k3_{rec_type}")
        asm.andi(12, 7, 2)
        asm.beqi(12, 0, f"skip_k4_{rec_type}")  # K4: key bit 1 (persistent)
        asm.addi(9, 9, 4)
        asm.label(f"skip_k4_{rec_type}")
        asm.jmp("next")
    asm.label("invalid")
    asm.addi(9, 9, 7)
    asm.label("next")
    asm.addi(1, 1, 1)
    asm.blt(1, 3, "loop")           # loop-back
    asm.halt()


def _build_gsm(asm: Assembler) -> None:
    """Two interleaved subframe paths over an AR speech signal."""
    _prologue(asm, bound_offset=0)  # leave room for the lookahead
    asm.li(9, 0)
    asm.li(13, 32768)               # zero level of the signal encoding
    asm.label("loop")
    asm.ld(5, 1, 0)                 # sample i
    asm.shri(6, 1, 5)
    asm.andi(6, 6, 1)
    asm.beqi(6, 0, "sub0")          # DSP: subframe dispatch (32-sample runs)
    for sub in (1, 0):
        asm.label(f"sub{sub}")
        asm.blt(5, 13, f"skip_s{sub}")   # S: sign test (== previous T)
        asm.addi(9, 9, 1)
        asm.label(f"skip_s{sub}")
        asm.ld(7, 1, 1)                  # lookahead sample i+1
        asm.blt(7, 13, f"skip_t{sub}")   # T: next-sample sign test
        asm.addi(9, 9, 2)
        asm.label(f"skip_t{sub}")
        asm.andi(8, 1, 1)
        asm.bnei(8, 0, f"skip_f{sub}")   # F: frame half (alternates)
        asm.addi(9, 9, 5)
        asm.label(f"skip_f{sub}")
        asm.jmp("next")
    asm.label("next")
    asm.addi(1, 1, 1)
    asm.blt(1, 3, "loop")           # loop-back
    asm.halt()


def _build_g721(asm: Assembler) -> None:
    """Single quantizer body: the 'already mostly predictable' benchmark."""
    _prologue(asm)
    asm.li(9, 0)
    asm.li(12, 32738)               # low quantizer threshold
    asm.li(13, 32768)               # mid
    asm.li(14, 32798)               # high
    asm.li(15, 0)                   # previous sample
    asm.label("loop")
    asm.ld(5, 1, 0)                 # level
    asm.blt(5, 12, "skip_q1")       # Q1: below low threshold (~30%)
    asm.addi(9, 9, 1)
    asm.label("skip_q1")
    asm.blt(5, 13, "skip_q2")       # Q2: below mid (implied by Q1 taken)
    asm.addi(9, 9, 2)
    asm.label("skip_q2")
    asm.blt(5, 14, "skip_q3")       # Q3: below high (~70%)
    asm.addi(9, 9, 3)
    asm.label("skip_q3")
    asm.bge(5, 15, "skip_d")        # D: rising sample (momentum)
    asm.addi(9, 9, 4)
    asm.label("skip_d")
    asm.mov(15, 5)
    asm.addi(1, 1, 1)
    asm.blt(1, 3, "loop")           # loop-back
    asm.halt()


def _build_compress(asm: Assembler) -> None:
    """LZW-ish: phase-drifting match loop + noisy hash probe, two
    dictionary regions with separate code paths."""
    _prologue(asm)
    asm.li(9, 0)
    asm.li(10, 0)                   # dictionary phase counter
    asm.label("loop")
    asm.ld(5, 1, 0)                 # next byte
    asm.shri(13, 10, 5)
    asm.andi(13, 13, 1)             # region flips every 32 symbols
    asm.beqi(13, 0, "region0")      # DSP: region dispatch (long runs)
    for region in (1, 0):
        asm.label(f"region{region}")
        # Match-extension inner loop; trip count 3..9 drifts with phase.
        asm.shri(6, 10, 6)
        asm.modi(6, 6, 7)
        asm.addi(6, 6, 3)           # k = 3 + ((phase >> 6) mod 7)
        asm.li(7, 0)
        asm.label(f"inner{region}")
        asm.addi(7, 7, 1)
        asm.blt(7, 6, f"inner{region}")  # L: match loop (taken k-1 of k)
        # Hash probe: pseudo-random in the byte value (taken ~25%).
        asm.muli(8, 5, 2654435761)
        asm.shri(8, 8, 7)
        asm.andi(8, 8, 3)
        asm.beqi(8, 0, f"hash_hit{region}")  # H: hash hit (noisy)
        asm.addi(9, 9, 1)
        asm.label(f"hash_hit{region}")
        asm.bnei(5, 256, f"skip_x{region}")  # X: sentinel (always taken)
        asm.addi(9, 9, 5)
        asm.label(f"skip_x{region}")
        asm.jmp("next")
    asm.label("next")
    asm.addi(10, 10, 1)
    asm.addi(1, 1, 1)
    asm.blt(1, 3, "loop")           # outer loop-back
    asm.halt()


def _build_gs(asm: Assembler) -> None:
    """Token interpreter with two rendering contexts (toggled by stroke)."""
    _prologue(asm)
    asm.li(9, 0)
    asm.li(14, 0)                   # context bit, toggled by stroke
    asm.li(15, 1)
    asm.label("loop")
    asm.ld(5, 1, 0)                 # token
    asm.beqi(14, 0, "ctx0")         # DSP: context dispatch (runs)
    for ctx in (1, 0):
        asm.label(f"ctx{ctx}")
        asm.beqi(5, 0, f"op_moveto{ctx}")  # B0: dispatch moveto
        asm.beqi(5, 1, f"op_lineto{ctx}")  # B1: dispatch lineto
        asm.beqi(5, 2, f"op_stroke{ctx}")  # B2: dispatch stroke
        asm.addi(9, 9, 1)                  # other operator
        asm.jmp("next")
        asm.label(f"op_moveto{ctx}")
        asm.addi(9, 9, 2)
        asm.jmp("next")
        asm.label(f"op_lineto{ctx}")
        asm.addi(9, 9, 3)
        asm.jmp("next")
        asm.label(f"op_stroke{ctx}")
        asm.addi(9, 9, 4)
        asm.xor(14, 14, 15)                # stroke toggles the context
        asm.jmp("next")
    asm.label("next")
    asm.addi(1, 1, 1)
    asm.blt(1, 3, "loop")           # loop-back
    asm.halt()


_BUILDERS: Dict[str, Callable[[Assembler], None]] = {
    "compress": _build_compress,
    "gs": _build_gs,
    "gsm": _build_gsm,
    "g721": _build_g721,
    "ijpeg": _build_ijpeg,
    "vortex": _build_vortex,
}


def build_program(
    benchmark: str, variant: str, input_length: int
) -> Tuple[Program, List[int]]:
    """Assemble the benchmark and lay out its memory image
    (``mem[0] = n``, input words at ``mem[1..n]``)."""
    if benchmark not in _BUILDERS:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; choose from {BRANCH_BENCHMARKS}"
        )
    asm = Assembler()
    _BUILDERS[benchmark](asm)
    program = asm.assemble()
    words = input_words(benchmark, variant, input_length)
    memory = [len(words)] + words
    return program, memory


def branch_trace(
    benchmark: str, variant: str = "train", max_branches: int = 150_000
) -> BranchTrace:
    """Run the benchmark and return its conditional-branch trace.

    The input is sized so the branch cap, not input exhaustion, ends the
    run; traces are therefore exactly ``max_branches`` long.
    """
    from repro.obs.tracing import trace_span
    from repro.perf.cache import TRACE_VERSION, cached, digest_of

    def compute() -> BranchTrace:
        with trace_span(
            "trace.generate",
            kind="branch",
            benchmark=benchmark,
            variant=variant,
        ) as span:
            # Every program executes at least one conditional branch per
            # input word, so max_branches words always suffice.
            program, memory = build_program(benchmark, variant, max_branches)
            vm = MiniVM(program, memory, max_branches=max_branches)
            trace = vm.run().branch_trace
            span.set(records=len(trace))
        return trace

    key = digest_of(
        "branch-trace", benchmark, variant, max_branches, TRACE_VERSION
    )
    return cached("traces", key, compute)


def branch_label_map(benchmark: str) -> Dict[int, str]:
    """``{branch pc: source label}`` to make reports readable.

    Each conditional branch is named after the label it jumps to, which in
    the builders above identifies the test it performs.
    """
    asm = Assembler()
    _BUILDERS[benchmark](asm)
    program = asm.assemble()
    from repro.workloads.vm import CODE_BASE, _BRANCH_OPS

    index_to_label = {index: name for name, index in program.labels.items()}
    names: Dict[int, str] = {}
    for index, (op, _a, _b, c) in enumerate(program.instructions):
        if op in _BRANCH_OPS:
            target = index_to_label.get(c, f"@{c}")
            names[CODE_BASE + 4 * index] = f"{benchmark}:{target}"
    return names
