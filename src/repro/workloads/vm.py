"""MiniVM: a small register virtual machine with a branch-tracing hook.

The reproduction's substitute for an instrumented Alpha binary (the paper's
ATOM profiles): benchmark programs are written in a tiny assembly language,
executed over concrete input data, and every conditional branch is recorded
as ``(pc, taken)``.  Because outcomes come from real data-dependent control
flow, the global correlation the paper's custom predictors exploit arises
the same way it does in native programs -- one branch tests data that an
earlier branch (partially) determined.

Machine model
-------------
* 16 general-purpose integer registers ``r0..r15``;
* a flat word-addressed data memory (Python list of ints);
* a call stack separate from data memory (so programs cannot smash it);
* instructions occupy 4 address units; the code segment starts at
  ``CODE_BASE`` so branch PCs look like text addresses.

Loads can optionally be recorded too (``record_loads=True``), giving the
``(pc, value)`` streams used for value-prediction experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.workloads.trace import BranchTrace, LoadTrace

CODE_BASE = 0x1000
NUM_REGS = 16


class VMError(Exception):
    """Raised for assembly errors and runtime faults."""


# Opcodes (dense ints keep the dispatch loop fast).
(
    OP_LI, OP_MOV, OP_ADD, OP_SUB, OP_MUL, OP_DIV, OP_MOD, OP_AND, OP_OR,
    OP_XOR, OP_SHL, OP_SHR, OP_ADDI, OP_MULI, OP_MODI, OP_ANDI, OP_SHRI,
    OP_SHLI, OP_LD, OP_ST, OP_BEQ, OP_BNE, OP_BLT, OP_BGE, OP_BEQI,
    OP_BNEI, OP_BLTI, OP_BGEI, OP_JMP, OP_CALL, OP_RET, OP_HALT,
) = range(32)

_BRANCH_OPS = frozenset(
    {OP_BEQ, OP_BNE, OP_BLT, OP_BGE, OP_BEQI, OP_BNEI, OP_BLTI, OP_BGEI}
)

_OP_NAMES = {
    OP_LI: "li", OP_MOV: "mov", OP_ADD: "add", OP_SUB: "sub", OP_MUL: "mul",
    OP_DIV: "div", OP_MOD: "mod", OP_AND: "and", OP_OR: "or", OP_XOR: "xor",
    OP_SHL: "shl", OP_SHR: "shr", OP_ADDI: "addi", OP_MULI: "muli",
    OP_MODI: "modi", OP_ANDI: "andi", OP_SHRI: "shri", OP_SHLI: "shli",
    OP_LD: "ld", OP_ST: "st", OP_BEQ: "beq", OP_BNE: "bne", OP_BLT: "blt",
    OP_BGE: "bge", OP_BEQI: "beqi", OP_BNEI: "bnei", OP_BLTI: "blti",
    OP_BGEI: "bgei", OP_JMP: "jmp", OP_CALL: "call", OP_RET: "ret",
    OP_HALT: "halt",
}


@dataclass(frozen=True)
class Program:
    """Assembled code ready to run."""

    instructions: Tuple[Tuple[int, int, int, int], ...]
    labels: Dict[str, int]

    def pc_of_label(self, label: str) -> int:
        """The text address of ``label`` (useful for naming branches)."""
        return CODE_BASE + 4 * self.labels[label]

    def disassemble(self) -> str:
        by_index: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines: List[str] = []
        for index, (op, a, b, c) in enumerate(self.instructions):
            for name in sorted(by_index.get(index, [])):
                lines.append(f"{name}:")
            lines.append(
                f"  {CODE_BASE + 4 * index:#06x}  {_OP_NAMES[op]} {a}, {b}, {c}"
            )
        return "\n".join(lines)


class Assembler:
    """Builds a :class:`Program` instruction by instruction.

    Register operands are integers 0-15; branch/jump targets are string
    labels, resolved at :meth:`assemble`.  The emit methods mirror the
    opcode list (``asm.add(rd, rs, rt)``, ``asm.beq(rs, rt, "loop")``...).
    """

    def __init__(self) -> None:
        self._instructions: List[Tuple[int, int, Union[int, str], Union[int, str]]] = []
        self._labels: Dict[str, int] = {}

    # -- layout --------------------------------------------------------
    def label(self, name: str) -> None:
        if name in self._labels:
            raise VMError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def _emit(self, op: int, a: int = 0, b=0, c=0) -> None:
        self._instructions.append((op, a, b, c))

    @staticmethod
    def _check_reg(reg: int) -> int:
        if not 0 <= reg < NUM_REGS:
            raise VMError(f"register r{reg} out of range")
        return reg

    # -- ALU -----------------------------------------------------------
    def li(self, rd: int, imm: int) -> None:
        self._emit(OP_LI, self._check_reg(rd), imm)

    def mov(self, rd: int, rs: int) -> None:
        self._emit(OP_MOV, self._check_reg(rd), self._check_reg(rs))

    def add(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_ADD, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def sub(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_SUB, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def mul(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_MUL, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def div(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_DIV, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def mod(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_MOD, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def and_(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_AND, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def or_(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_OR, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def xor(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_XOR, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def shl(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_SHL, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def shr(self, rd: int, rs: int, rt: int) -> None:
        self._emit(OP_SHR, self._check_reg(rd), self._check_reg(rs), self._check_reg(rt))

    def addi(self, rd: int, rs: int, imm: int) -> None:
        self._emit(OP_ADDI, self._check_reg(rd), self._check_reg(rs), imm)

    def muli(self, rd: int, rs: int, imm: int) -> None:
        self._emit(OP_MULI, self._check_reg(rd), self._check_reg(rs), imm)

    def modi(self, rd: int, rs: int, imm: int) -> None:
        if imm == 0:
            raise VMError("modulo by zero immediate")
        self._emit(OP_MODI, self._check_reg(rd), self._check_reg(rs), imm)

    def andi(self, rd: int, rs: int, imm: int) -> None:
        self._emit(OP_ANDI, self._check_reg(rd), self._check_reg(rs), imm)

    def shri(self, rd: int, rs: int, imm: int) -> None:
        self._emit(OP_SHRI, self._check_reg(rd), self._check_reg(rs), imm)

    def shli(self, rd: int, rs: int, imm: int) -> None:
        self._emit(OP_SHLI, self._check_reg(rd), self._check_reg(rs), imm)

    # -- memory ---------------------------------------------------------
    def ld(self, rd: int, rs: int, offset: int = 0) -> None:
        self._emit(OP_LD, self._check_reg(rd), self._check_reg(rs), offset)

    def st(self, rs: int, rt: int, offset: int = 0) -> None:
        self._emit(OP_ST, self._check_reg(rs), self._check_reg(rt), offset)

    # -- control --------------------------------------------------------
    def beq(self, rs: int, rt: int, target: str) -> None:
        self._emit(OP_BEQ, self._check_reg(rs), self._check_reg(rt), target)

    def bne(self, rs: int, rt: int, target: str) -> None:
        self._emit(OP_BNE, self._check_reg(rs), self._check_reg(rt), target)

    def blt(self, rs: int, rt: int, target: str) -> None:
        self._emit(OP_BLT, self._check_reg(rs), self._check_reg(rt), target)

    def bge(self, rs: int, rt: int, target: str) -> None:
        self._emit(OP_BGE, self._check_reg(rs), self._check_reg(rt), target)

    def beqi(self, rs: int, imm: int, target: str) -> None:
        self._emit(OP_BEQI, self._check_reg(rs), imm, target)

    def bnei(self, rs: int, imm: int, target: str) -> None:
        self._emit(OP_BNEI, self._check_reg(rs), imm, target)

    def blti(self, rs: int, imm: int, target: str) -> None:
        self._emit(OP_BLTI, self._check_reg(rs), imm, target)

    def bgei(self, rs: int, imm: int, target: str) -> None:
        self._emit(OP_BGEI, self._check_reg(rs), imm, target)

    def jmp(self, target: str) -> None:
        self._emit(OP_JMP, 0, 0, target)

    def call(self, target: str) -> None:
        self._emit(OP_CALL, 0, 0, target)

    def ret(self) -> None:
        self._emit(OP_RET)

    def halt(self) -> None:
        self._emit(OP_HALT)

    # -- finish ----------------------------------------------------------
    def assemble(self) -> Program:
        resolved: List[Tuple[int, int, int, int]] = []
        for op, a, b, c in self._instructions:
            if op in _BRANCH_OPS or op in (OP_JMP, OP_CALL):
                target = c
                if not isinstance(target, str):
                    raise VMError(f"{_OP_NAMES[op]} needs a label target")
                if target not in self._labels:
                    raise VMError(f"undefined label {target!r}")
                c = self._labels[target]
            resolved.append((op, a, int(b) if not isinstance(b, str) else 0, int(c)))
        return Program(instructions=tuple(resolved), labels=dict(self._labels))


@dataclass
class RunResult:
    """Outcome of one MiniVM execution."""

    steps: int
    branch_trace: BranchTrace
    load_trace: Optional[LoadTrace]
    registers: List[int]
    memory: List[int]


class MiniVM:
    """The interpreter.  Deterministic given (program, memory image)."""

    def __init__(
        self,
        program: Program,
        memory: Sequence[int],
        record_loads: bool = False,
        max_steps: int = 50_000_000,
        max_branches: Optional[int] = None,
    ):
        self.program = program
        self.memory: List[int] = list(memory)
        self.record_loads = record_loads
        self.max_steps = max_steps
        self.max_branches = max_branches

    def run(self) -> RunResult:
        """Execute until HALT (or a trace/step limit is hit)."""
        code = self.program.instructions
        mem = self.memory
        regs = [0] * NUM_REGS
        stack: List[int] = []
        branch_trace = BranchTrace()
        b_pcs = branch_trace.pcs
        b_out = branch_trace.outcomes
        load_trace = LoadTrace() if self.record_loads else None
        pc = 0
        steps = 0
        n_code = len(code)
        max_steps = self.max_steps
        max_branches = self.max_branches
        while True:
            if steps >= max_steps:
                raise VMError(f"exceeded max_steps={max_steps}")
            if not 0 <= pc < n_code:
                raise VMError(f"pc {pc} outside code (len {n_code})")
            op, a, b, c = code[pc]
            steps += 1
            if op == OP_HALT:
                break
            if op < OP_LD:  # ALU group
                if op == OP_LI:
                    regs[a] = b
                elif op == OP_MOV:
                    regs[a] = regs[b]
                elif op == OP_ADD:
                    regs[a] = regs[b] + regs[c]
                elif op == OP_SUB:
                    regs[a] = regs[b] - regs[c]
                elif op == OP_MUL:
                    regs[a] = regs[b] * regs[c]
                elif op == OP_DIV:
                    divisor = regs[c]
                    if divisor == 0:
                        raise VMError(f"division by zero at pc {pc}")
                    regs[a] = regs[b] // divisor
                elif op == OP_MOD:
                    divisor = regs[c]
                    if divisor == 0:
                        raise VMError(f"modulo by zero at pc {pc}")
                    regs[a] = regs[b] % divisor
                elif op == OP_AND:
                    regs[a] = regs[b] & regs[c]
                elif op == OP_OR:
                    regs[a] = regs[b] | regs[c]
                elif op == OP_XOR:
                    regs[a] = regs[b] ^ regs[c]
                elif op == OP_SHL:
                    regs[a] = regs[b] << regs[c]
                elif op == OP_SHR:
                    regs[a] = regs[b] >> regs[c]
                elif op == OP_ADDI:
                    regs[a] = regs[b] + c
                elif op == OP_MULI:
                    regs[a] = regs[b] * c
                elif op == OP_MODI:
                    regs[a] = regs[b] % c
                elif op == OP_ANDI:
                    regs[a] = regs[b] & c
                elif op == OP_SHRI:
                    regs[a] = regs[b] >> c
                else:  # OP_SHLI
                    regs[a] = regs[b] << c
                pc += 1
            elif op == OP_LD:
                address = regs[b] + c
                if not 0 <= address < len(mem):
                    raise VMError(f"load from {address} out of bounds at pc {pc}")
                value = mem[address]
                regs[a] = value
                if load_trace is not None:
                    load_trace.append(CODE_BASE + 4 * pc, value)
                pc += 1
            elif op == OP_ST:
                address = regs[b] + c
                if not 0 <= address < len(mem):
                    raise VMError(f"store to {address} out of bounds at pc {pc}")
                mem[address] = regs[a]
                pc += 1
            elif op in (OP_BEQ, OP_BNE, OP_BLT, OP_BGE):
                left, right = regs[a], regs[b]
                if op == OP_BEQ:
                    taken = left == right
                elif op == OP_BNE:
                    taken = left != right
                elif op == OP_BLT:
                    taken = left < right
                else:
                    taken = left >= right
                b_pcs.append(CODE_BASE + 4 * pc)
                b_out.append(1 if taken else 0)
                pc = c if taken else pc + 1
                if max_branches is not None and len(b_pcs) >= max_branches:
                    break
            elif op in (OP_BEQI, OP_BNEI, OP_BLTI, OP_BGEI):
                left = regs[a]
                if op == OP_BEQI:
                    taken = left == b
                elif op == OP_BNEI:
                    taken = left != b
                elif op == OP_BLTI:
                    taken = left < b
                else:
                    taken = left >= b
                b_pcs.append(CODE_BASE + 4 * pc)
                b_out.append(1 if taken else 0)
                pc = c if taken else pc + 1
                if max_branches is not None and len(b_pcs) >= max_branches:
                    break
            elif op == OP_JMP:
                pc = c
            elif op == OP_CALL:
                stack.append(pc + 1)
                pc = c
            elif op == OP_RET:
                if not stack:
                    raise VMError(f"return with empty call stack at pc {pc}")
                pc = stack.pop()
            else:
                raise VMError(f"unknown opcode {op} at pc {pc}")
        return RunResult(
            steps=steps,
            branch_trace=branch_trace,
            load_trace=load_trace,
            registers=regs,
            memory=mem,
        )
