"""Trace record types shared by the workload generators and the harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class BranchRecord:
    """One dynamic conditional branch: its static address and outcome."""

    pc: int
    taken: bool


@dataclass
class BranchTrace:
    """A dynamic branch stream with cheap per-branch views.

    Stored as parallel lists (much lighter than a list of objects at the
    hundreds of thousands of records the experiments replay).
    """

    pcs: List[int] = field(default_factory=list)
    outcomes: List[int] = field(default_factory=list)  # 0/1

    def append(self, pc: int, taken: bool) -> None:
        self.pcs.append(pc)
        self.outcomes.append(1 if taken else 0)

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[Tuple[int, bool]]:
        for pc, outcome in zip(self.pcs, self.outcomes):
            yield pc, bool(outcome)

    def records(self) -> Iterator[BranchRecord]:
        for pc, outcome in zip(self.pcs, self.outcomes):
            yield BranchRecord(pc=pc, taken=bool(outcome))

    def static_branches(self) -> List[int]:
        """Distinct branch addresses, by first appearance."""
        seen: Dict[int, None] = {}
        for pc in self.pcs:
            if pc not in seen:
                seen[pc] = None
        return list(seen)

    def per_branch_counts(self) -> Dict[int, Tuple[int, int]]:
        """``{pc: (executions, takens)}`` over the whole trace."""
        counts: Dict[int, List[int]] = {}
        for pc, outcome in zip(self.pcs, self.outcomes):
            entry = counts.setdefault(pc, [0, 0])
            entry[0] += 1
            entry[1] += outcome
        return {pc: (execs, takens) for pc, (execs, takens) in counts.items()}

    def outcome_bits(self) -> List[int]:
        """The global outcome stream as 0/1 ints (feeds Markov models)."""
        return list(self.outcomes)


@dataclass(frozen=True)
class LoadRecord:
    """One dynamic load: static address and the value it returned."""

    pc: int
    value: int


@dataclass
class LoadTrace:
    """A dynamic load-value stream."""

    pcs: List[int] = field(default_factory=list)
    values: List[int] = field(default_factory=list)

    def append(self, pc: int, value: int) -> None:
        self.pcs.append(pc)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.pcs, self.values))

    def records(self) -> Iterator[LoadRecord]:
        for pc, value in zip(self.pcs, self.values):
            yield LoadRecord(pc=pc, value=value)

    def static_loads(self) -> List[int]:
        seen: Dict[int, None] = {}
        for pc in self.pcs:
            if pc not in seen:
                seen[pc] = None
        return list(seen)
