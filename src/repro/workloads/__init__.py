"""Workload substrate: the stand-in for ATOM traces of SPEC95/MediaBench.

The paper profiles Alpha binaries with ATOM (Section 5); this environment
has neither the binaries nor the hardware, so -- per the reproduction's
substitution rule -- we build the closest synthetic equivalent that
exercises the same code paths:

* :mod:`repro.workloads.vm` -- MiniVM, a small register virtual machine
  with an assembler; conditional branches are recorded as ``(pc, taken)``
  while programs run over concrete input data, so branch correlation arises
  from genuine control flow, not injected labels;
* :mod:`repro.workloads.programs` -- six benchmark programs modelling the
  characteristic branch behaviour of compress, gs, gsm decode, g721 decode,
  ijpeg and vortex, each with distinct *train* and *eval* inputs;
* :mod:`repro.workloads.values` -- load-value streams for the five
  value-prediction benchmarks (gcc, go, groff, li, perl);
* :mod:`repro.workloads.trace` -- record types and trace containers.

Beyond the fixed suite, :mod:`repro.workloads.sources` exposes the
pluggable ``TraceSource`` registry (spec strings -> deterministic,
cache-addressed branch streams) with the MiniVM adapter plus two new
universes: :mod:`repro.workloads.pybc` (real Python functions on a
restricted CPython-bytecode interpreter) and :mod:`repro.workloads.kmp`
(Morris-Pratt/KMP comparison branches with closed-form optimal
mispredict rates).
"""

from repro.workloads.trace import BranchRecord, BranchTrace, LoadRecord, LoadTrace
from repro.workloads.vm import Assembler, MiniVM, VMError
from repro.workloads.programs import (
    BRANCH_BENCHMARKS,
    branch_trace,
    build_program,
)
from repro.workloads.values import VALUE_BENCHMARKS, load_trace
from repro.workloads.sources import (
    SourceSpec,
    TraceSource,
    create_source,
    list_sources,
    parse_source_spec,
    register_source,
    source_trace,
)

__all__ = [
    "BranchRecord",
    "BranchTrace",
    "LoadRecord",
    "LoadTrace",
    "Assembler",
    "MiniVM",
    "VMError",
    "BRANCH_BENCHMARKS",
    "branch_trace",
    "build_program",
    "VALUE_BENCHMARKS",
    "load_trace",
    "SourceSpec",
    "TraceSource",
    "create_source",
    "list_sources",
    "parse_source_spec",
    "register_source",
    "source_trace",
]
