"""The wire protocol: newline-delimited JSON over TCP.

One request per line, one response per line, canonical encoding (sorted
keys, no whitespace) so responses are byte-comparable across the server,
the batch ``--oneshot`` path, and the loadgen checker.  No HTTP framing
-- stdlib-only, trivially scriptable (``nc``/``socat`` work) -- but the
status codes borrow HTTP semantics so the failure taxonomy is familiar:

===========  ==========  =================================================
``ok``       200         ``payload`` holds the designed machine
``rejected`` 503         load shed / draining; ``retry_after_s`` hints when
``error``    400 / 500   client error (bad request) / server-side failure
``timeout``  504         the request's deadline expired
===========  ==========  =================================================

Operations (the ``op`` field): ``design`` (the workload), ``healthz``
(readiness; ``"deep": true`` round-trips a verified probe design through
the pool), ``metrics`` (live counters/queue/breaker/worker snapshot), and
``ping``.

``degraded`` on a response lists the features the server shed to keep
answering (``no-verify``, ``no-cache``); the design payload itself is
unaffected -- both knobs change what is *checked or memoized*, never what
is produced.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

SERVE_SCHEMA = "repro.serve/1"
METRICS_SCHEMA = "repro.serve-metrics/1"

#: Max request-line length accepted by the stream reader (a 1M-bit trace
#: as a JSON string fits comfortably).
MAX_LINE_BYTES = 4 * 1024 * 1024

OPS = ("design", "healthz", "metrics", "ping")


class ProtocolError(ValueError):
    """A wire request that cannot be parsed or names an unknown op."""


def canonical_json(obj: Any) -> bytes:
    """Canonical encoding: sorted keys, compact separators, UTF-8.  Equal
    objects always serialize to equal bytes -- the byte-identity contract
    between served and batch responses rests on this."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("utf-8")


def parse_request(line: bytes) -> Dict[str, Any]:
    """Decode one request line into a dict; raises :class:`ProtocolError`
    on garbage, a non-object, or an unknown ``op``."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op", "design")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (known: {', '.join(OPS)})"
        )
    obj["op"] = op
    return obj


def response(
    status: str,
    code: int,
    request_id: Optional[Any] = None,
    **fields: Any,
) -> Dict[str, Any]:
    """Assemble one response envelope."""
    envelope: Dict[str, Any] = {
        "schema": SERVE_SCHEMA,
        "status": status,
        "code": code,
    }
    if request_id is not None:
        envelope["id"] = request_id
    envelope.update(fields)
    return envelope


def ok_response(payload: Dict[str, Any], request_id=None, degraded=()):
    extra: Dict[str, Any] = {"payload": payload}
    if degraded:
        extra["degraded"] = sorted(degraded)
    return response("ok", 200, request_id, **extra)


def rejected_response(reason: str, retry_after_s: float, request_id=None):
    return response(
        "rejected",
        503,
        request_id,
        reason=reason,
        retry_after_s=round(retry_after_s, 3),
    )


def error_response(code: int, error: str, request_id=None, **fields):
    return response("error", code, request_id, error=error, **fields)


def timeout_response(error: str, request_id=None, **fields):
    return response("timeout", 504, request_id, error=error, **fields)
