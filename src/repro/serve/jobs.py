"""The serving job API: a picklable request and a pure executor.

``DesignRequest`` is the one unit of work the service knows: a trace (or
a pre-built Markov profile), the design knobs, and the artifacts to emit.
``execute_request`` turns it into a canonical response payload and is a
**pure function of the request** -- the server's pool workers, the parent
inline fallback, the batch ``python -m repro serve --oneshot`` path, and
the loadgen checker all call exactly this function, which is what makes
"served response byte-identical to the batch result" a provable property
instead of a hope.  Idempotency under re-dispatch comes for free: the
design flow is memoized in the content-addressed cache behind
single-flight locks, so running the same request twice (a crashed
worker's item re-dispatched to a sibling) does the work once and returns
identical bytes.

``execute_envelope`` wraps the executor with the failure taxonomy: client
errors (unusable trace/knobs) map to 400, deadline expiry to 504, and
everything else to 500 -- always an explicit envelope, never a raw
traceback across the wire.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.core import cancel
from repro.reliability.errors import (
    DeadlineError,
    DesignError,
    ReproError,
    TraceError,
)

PAYLOAD_SCHEMA = "repro.design-response/1"

#: Artifacts a request may ask for (``area`` and the machine are always
#: included; these are the optional extras).
EMITTABLE = ("verilog", "vhdl", "dot")

#: Degradation flags the server may apply (breaker-open or deadline
#: pressure).  Neither changes the payload bytes.
DEGRADE_NO_CACHE = "no-cache"
DEGRADE_NO_VERIFY = "no-verify"


@dataclass(frozen=True)
class DesignRequest:
    """One design-as-a-service work item (picklable, hashable key)."""

    trace: Optional[str] = None
    profile: Optional[Tuple[Tuple[int, int, int], ...]] = None
    profile_order: int = 0
    order: int = 4
    bias_threshold: float = 0.5
    dont_care_fraction: float = 0.0
    verify: bool = False
    emit: Tuple[str, ...] = ("verilog",)
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "DesignRequest":
        """Build and validate a request from a decoded wire object.
        Raises :class:`TraceError`/:class:`DesignError` (client errors)
        on unusable input."""
        trace = payload.get("trace")
        profile = payload.get("profile")
        if trace is None and profile is None:
            raise TraceError(
                "request needs a 'trace' (0/1 string) or a 'profile'",
                stage="serve.parse",
            )
        if trace is not None:
            if not isinstance(trace, str) or not trace:
                raise TraceError(
                    "'trace' must be a non-empty 0/1 string",
                    stage="serve.parse",
                )
            if set(trace) - {"0", "1"}:
                raise TraceError(
                    "'trace' contains non-0/1 symbols",
                    stage="serve.parse",
                    symbols="".join(sorted(set(trace) - {"0", "1"}))[:8],
                )
        profile_rows: Optional[Tuple[Tuple[int, int, int], ...]] = None
        profile_order = 0
        if profile is not None:
            try:
                profile_order = int(profile["order"])
                rows = []
                for hist, ones, total in profile["counts"]:
                    hist, ones, total = int(hist), int(ones), int(total)
                    if hist < 0 or not 0 <= ones <= total:
                        raise ValueError
                    rows.append((hist, ones, total))
                profile_rows = tuple(sorted(rows))
            except (KeyError, TypeError, ValueError):
                raise TraceError(
                    "'profile' must be {'order': k, 'counts': "
                    "[[history, ones, total], ...]} with 0 <= ones <= total",
                    stage="serve.parse",
                ) from None
            if profile_order < 1:
                raise TraceError(
                    "'profile.order' must be >= 1", stage="serve.parse"
                )
        emit = payload.get("emit", ["verilog"])
        if isinstance(emit, str):
            emit = [emit]
        if not isinstance(emit, (list, tuple)) or any(
            item not in EMITTABLE for item in emit
        ):
            raise DesignError(
                f"'emit' must be a subset of {list(EMITTABLE)}",
                stage="serve.parse",
                emit=emit,
            )
        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise DesignError(
                    "'deadline_s' must be a number",
                    stage="serve.parse",
                ) from None
            if deadline_s <= 0:
                raise DesignError(
                    "'deadline_s' must be positive",
                    stage="serve.parse",
                    deadline_s=deadline_s,
                )
        request_id = payload.get("id")
        if request_id is not None:
            request_id = str(request_id)
        # A profile fixes the longest observable history: the design
        # order defaults to it and cannot exceed it (a model cannot be
        # extended, only truncated).
        default_order = profile_order if profile_rows is not None else 4
        try:
            order = int(payload.get("order", default_order))
            bias_threshold = float(payload.get("bias_threshold", 0.5))
            dont_care_fraction = float(payload.get("dont_care_fraction", 0.0))
        except (TypeError, ValueError):
            raise DesignError(
                "'order'/'bias_threshold'/'dont_care_fraction' must be numbers",
                stage="serve.parse",
            ) from None
        if profile_rows is not None and order > profile_order:
            raise DesignError(
                f"design order {order} exceeds the profile's order "
                f"{profile_order}; a Markov model cannot be extended",
                stage="serve.parse",
                order=order,
                profile_order=profile_order,
            )
        return cls(
            trace=trace,
            profile=profile_rows,
            profile_order=profile_order,
            order=order,
            bias_threshold=bias_threshold,
            dont_care_fraction=dont_care_fraction,
            verify=bool(payload.get("verify", False)),
            emit=tuple(emit),
            deadline_s=deadline_s,
            request_id=request_id,
        )

    def source_digest(self) -> str:
        """Short content digest of the trace/profile (payload echo)."""
        if self.trace is not None:
            blob = self.trace.encode("ascii")
        else:
            blob = repr((self.profile_order, self.profile)).encode("ascii")
        return hashlib.sha256(blob).hexdigest()[:16]


def execute_request(
    request: DesignRequest,
    *,
    use_cache: bool = True,
    verify: Optional[bool] = None,
) -> Dict[str, Any]:
    """Run the design flow for ``request`` and return the canonical
    response payload.  ``use_cache=False`` / ``verify`` are the server's
    degradation knobs; neither changes a single payload byte."""
    import os

    from repro.core.markov import MarkovModel
    from repro.core.pipeline import DesignConfig, FSMDesigner
    from repro.synth.area import estimate_area

    config = DesignConfig(
        order=request.order,
        bias_threshold=request.bias_threshold,
        dont_care_fraction=request.dont_care_fraction,
        verify=request.verify if verify is None else verify,
    )
    designer = FSMDesigner(config)

    saved_cache = os.environ.get("REPRO_CACHE")
    try:
        if not use_cache:
            # cache_enabled() re-reads the environment at call time, so
            # this scoped flip is honoured by every cached() call below.
            os.environ["REPRO_CACHE"] = "0"
        if request.trace is not None:
            result = designer.design_from_trace(
                [int(ch) for ch in request.trace]
            )
        else:
            model = MarkovModel(
                order=request.profile_order,
                ones={h: o for h, o, _t in request.profile or ()},
                totals={h: t for h, _o, t in request.profile or ()},
            )
            result = designer.design_from_model(model)
    finally:
        if not use_cache:
            if saved_cache is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = saved_cache

    machine = result.machine
    payload: Dict[str, Any] = {
        "schema": PAYLOAD_SCHEMA,
        "request": {
            "source": "trace" if request.trace is not None else "profile",
            "digest": request.source_digest(),
            "order": request.order,
            "bias_threshold": request.bias_threshold,
            "dont_care_fraction": request.dont_care_fraction,
        },
        "summary": result.summary(),
        "states": result.num_states,
        "state_counts": {
            "nfa": result.nfa_states,
            "dfa": result.dfa_states,
            "minimized": result.minimized_states,
            "startup_removed": result.startup_states_removed,
        },
        "cover": result.cover_strings(),
        "regex": str(result.regex),
        "machine": {
            "start": machine.start,
            "outputs": list(machine.outputs),
            "transitions": [list(row) for row in machine.transitions],
        },
    }
    report = estimate_area(machine)
    payload["area"] = {
        "area": report.area,
        "encoding": report.encoding_name,
        "flip_flops": report.flip_flops,
        "literals": report.literals,
        "terms": report.terms,
    }
    if "verilog" in request.emit:
        from repro.synth.verilog import generate_verilog

        payload["verilog"] = generate_verilog(machine)
    if "vhdl" in request.emit:
        from repro.synth.vhdl import generate_vhdl

        payload["vhdl"] = generate_vhdl(machine)
    if "dot" in request.emit:
        payload["dot"] = machine.to_dot()
    return payload


def classify_error(exc: BaseException) -> Tuple[int, str]:
    """Map an executor exception to (HTTP-ish code, kind)."""
    if isinstance(exc, DeadlineError):
        return 504, type(exc).__name__
    if isinstance(exc, (TraceError,)):
        return 400, type(exc).__name__
    if isinstance(exc, DesignError) and exc.stage in ("config", "serve.parse"):
        return 400, type(exc).__name__
    return 500, type(exc).__name__


def execute_envelope(
    request: DesignRequest,
    degrade: Iterable[str] = (),
    deadline_s: Optional[float] = None,
    collect_metrics: bool = False,
) -> Dict[str, Any]:
    """Execute one request under a cooperative deadline and wrap the
    outcome -- success, structured failure, or timeout -- in a response
    envelope.  Shared by pool workers and the parent's inline fallback
    (which passes ``collect_metrics=False``: its counters are already in
    the parent registry)."""
    from repro.obs.metrics import metrics
    from repro.serve import protocol

    degrade = frozenset(degrade)
    before = metrics().snapshot() if collect_metrics else None
    try:
        with cancel.deadline_scope(deadline_s):
            payload = execute_request(
                request,
                use_cache=DEGRADE_NO_CACHE not in degrade,
                verify=False if DEGRADE_NO_VERIFY in degrade else None,
            )
        envelope = protocol.ok_response(
            payload, request.request_id, degraded=degrade
        )
    except DeadlineError as exc:
        envelope = protocol.timeout_response(
            str(exc), request.request_id, stage=exc.stage
        )
    except ReproError as exc:
        code, kind = classify_error(exc)
        envelope = protocol.error_response(
            code, str(exc), request.request_id, kind=kind, stage=exc.stage
        )
    except Exception as exc:  # noqa: BLE001 - must never leak a traceback
        envelope = protocol.error_response(
            500, f"{type(exc).__name__}: {exc}", request.request_id,
            kind=type(exc).__name__,
        )
    if before is not None:
        envelope["metrics"] = metrics().diff_since(before)
    return envelope
