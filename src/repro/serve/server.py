"""The asyncio front end: admission control, degradation, graceful drain.

``DesignServer`` accepts newline-delimited JSON requests on a TCP socket
(:mod:`repro.serve.protocol`) and executes ``design`` ops on the
:class:`~repro.serve.pool.SupervisedPool`.  What this layer adds on top
of the pool's crash tolerance:

* **bounded admission** -- at most ``queue_limit`` requests may be
  admitted-but-unresolved; request N+1 is shed immediately with a 503
  whose ``retry_after_s`` hint is computed from live state (queue depth /
  workers x an EMA of recent service time), so well-behaved clients
  back off proportionally to actual load.
* **circuit breakers** (:mod:`repro.serve.breaker`) -- repeated cache
  failures open the ``cache`` breaker and subsequent requests run
  ``no-cache``; repeated verification failures shed verification
  (``no-verify``); repeated failures inside one design stage fast-fail
  matching requests with a 503 instead of burning workers.  Degraded
  responses carry a ``degraded`` list in the envelope; the payload bytes
  are identical to the undegraded answer.
* **deadline-aware degradation** -- a request whose remaining deadline is
  tight relative to the service-time EMA sheds verification up front
  rather than timing out at 95% done.
* **graceful drain** -- SIGTERM (or ``shutdown()``) stops admission
  (late arrivals get a 503 with ``reason: draining``), closes the
  listener, waits up to the drain budget for in-flight requests, flushes
  a final metrics line, and stops the pool.  The CLI then exits 0.

``healthz`` answers readiness from live supervision state (accepting +
at least one live worker); ``{"op": "healthz", "deep": true}`` round-trips
a real verified probe design (the selfcheck battery's paper trace)
through the pool first.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, FrozenSet, Optional, Set

from repro.obs.metrics import metrics
from repro.reliability.errors import ReproError
from repro.serve import protocol
from repro.serve.breaker import BreakerBoard
from repro.serve.config import ServeConfig
from repro.serve.jobs import (
    DEGRADE_NO_CACHE,
    DEGRADE_NO_VERIFY,
    DesignRequest,
    classify_error,
)
from repro.serve.pool import (
    SupervisedPool,
    close_fd_after_fork,
    forget_fd_after_fork,
)

_EMA_ALPHA = 0.2
_EMA_INITIAL_S = 0.5
#: Shed verification when the remaining deadline is under this multiple
#: of the recent service-time EMA.
_PRESSURE_FACTOR = 1.5


class DesignServer:
    """One listening socket + one supervised pool + the control plane."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.pool = SupervisedPool(config)
        self.breakers = BreakerBoard(
            threshold=config.breaker_threshold,
            reset_after=config.breaker_reset_s,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._ema_s = _EMA_INITIAL_S
        self._connections: Set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._listener_fds: Set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        # Workers forked (or respawned) from here on must not inherit
        # the listener: a held fd would keep the port bound after this
        # server exits, blocking a restart on the same port.
        self._listener_fds = {
            sock.fileno() for sock in self._server.sockets
        }
        for fd in self._listener_fds:
            close_fd_after_fork(fd)

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`shutdown` completes (the CLI's main await)."""
        assert self._server is not None
        async with self._server:
            await self._drained.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting, finish in-flight, flush, stop."""
        if self._draining:
            return
        self._draining = True
        metrics().incr("serve.drains")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for fd in self._listener_fds:
            forget_fd_after_fork(fd)
        self._listener_fds = set()
        drained = await self.pool.drain(self.config.drain_timeout_s)
        if not drained:
            metrics().incr("serve.drain_abandoned")
        # The pool futures have resolved; give connection handlers a
        # beat to actually flush those envelopes to their sockets before
        # anything is torn down (finish-in-flight includes delivery).
        flush_deadline = asyncio.get_running_loop().time() + 5.0
        while (
            self._active_requests
            and asyncio.get_running_loop().time() < flush_deadline
        ):
            await asyncio.sleep(0.01)
        await self.pool.stop()
        # Nudge lingering idle connections: closing the transport makes
        # their pending readline() see EOF and the handler exit cleanly.
        for writer in list(self._connections):
            try:
                writer.close()
            except OSError:
                pass
        self._drained.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """Read request lines and answer them **concurrently**.

        Requests on one connection used to be awaited serially, so a
        slow ``design`` stalled a pipelined ``healthz``/``metrics`` on
        the same socket -- exactly the probe a router needs answered
        while the replica is busy.  Each parsed line now runs in its own
        task; only the *writes* are serialized (one response line at a
        time), and responses carry the request ``id``, so clients that
        pipeline correlate by id, not by arrival order.
        """
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    async with write_lock:
                        await self._send(
                            writer,
                            protocol.error_response(
                                400,
                                "request line exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            ),
                        )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                self._active_requests += 1
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                # EOF on the read side must not drop responses still in
                # flight: a half-closing client is owed its envelopes.
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_line(self, line: bytes, writer, write_lock) -> None:
        try:
            envelope = await self._handle_line(line)
            async with write_lock:
                await self._send(writer, envelope)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._active_requests -= 1

    async def _send(self, writer, envelope: Dict[str, Any]) -> None:
        writer.write(protocol.canonical_json(envelope) + b"\n")
        await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            obj = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            metrics().incr("serve.protocol_errors")
            return protocol.error_response(400, str(exc), kind="ProtocolError")
        op = obj["op"]
        if op == "ping":
            return protocol.response("ok", 200, obj.get("id"), op="ping")
        if op == "healthz":
            return await self._healthz(obj)
        if op == "metrics":
            return self._metrics_response(obj)
        return await self._design(obj)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    async def _design(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        request_id = obj.get("id")
        if self._draining:
            metrics().incr("serve.shed_draining")
            return protocol.rejected_response(
                "draining", self._retry_after_s(), request_id
            )
        if self.pool.depth() >= self.config.queue_limit:
            metrics().incr("serve.shed_overload")
            return protocol.rejected_response(
                "queue full", self._retry_after_s(), request_id
            )
        try:
            request = DesignRequest.from_payload(obj)
        except ReproError as exc:
            metrics().incr("serve.bad_requests")
            code, kind = classify_error(exc)
            return protocol.error_response(
                code, str(exc), request_id, kind=kind, stage=exc.stage
            )
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.deadline_s
        )
        degrade, shed = self._degrade_for(request, deadline_s)
        if shed is not None:
            return shed
        started = time.monotonic()
        envelope = await self.pool.submit(
            request, degrade=degrade, deadline_s=deadline_s
        )
        self._observe(request, degrade, envelope, time.monotonic() - started)
        return envelope

    def _degrade_for(
        self, request: DesignRequest, deadline_s: float
    ) -> tuple:
        """Decide this request's degrade set, or shed it outright when
        its design-stage breaker is open."""
        degrade: Set[str] = set()
        if not self.breakers.get("cache").allow():
            degrade.add(DEGRADE_NO_CACHE)
            metrics().incr("serve.degraded_no_cache")
        if request.verify:
            if not self.breakers.get("verify").allow():
                degrade.add(DEGRADE_NO_VERIFY)
                metrics().incr("serve.degraded_no_verify")
            elif deadline_s < _PRESSURE_FACTOR * self._ema_s:
                # Deadline pressure: shedding verification now beats a
                # 504 after the design work is done.
                degrade.add(DEGRADE_NO_VERIFY)
                metrics().incr("serve.degraded_deadline_pressure")
        stage_breaker = self.breakers.get(f"stage:order={request.order}")
        if not stage_breaker.allow():
            metrics().incr("serve.shed_breaker")
            return degrade, protocol.rejected_response(
                "design stage circuit open",
                max(0.1, stage_breaker.retry_after_s()),
                request.request_id,
            )
        return frozenset(degrade), None

    def _observe(
        self,
        request: DesignRequest,
        degrade: FrozenSet[str],
        envelope: Dict[str, Any],
        latency_s: float,
    ) -> None:
        """Feed one outcome back into the EMA and the breaker board."""
        status = envelope.get("status")
        code = envelope.get("code", 0)
        if status == "ok":
            self._ema_s = (
                (1 - _EMA_ALPHA) * self._ema_s + _EMA_ALPHA * latency_s
            )
            self.breakers.record("cache", ok=True)
            if request.verify and DEGRADE_NO_VERIFY not in degrade:
                self.breakers.record("verify", ok=True)
            self.breakers.record(f"stage:order={request.order}", ok=True)
            return
        if code in (400, 503):
            return  # client errors and sheds are not dependency failures
        stage = envelope.get("stage")
        kind = envelope.get("kind", "")
        if stage == "cache" or kind == "CacheError":
            self.breakers.record("cache", ok=False)
        elif stage == "verify":
            self.breakers.record("verify", ok=False)
        else:
            self.breakers.record(f"stage:order={request.order}", ok=False)

    async def _healthz(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        ready = not self._draining and self.pool.workers_alive() > 0
        body: Dict[str, Any] = {
            "op": "healthz",
            "ready": ready,
            "draining": self._draining,
            "workers_alive": self.pool.workers_alive(),
            "queue_depth": self.pool.depth(),
        }
        if obj.get("deep") and ready:
            if self.pool.depth() >= self.config.queue_limit:
                # The probe must yield to admission control: submitting
                # straight to a saturated pool would add load exactly
                # when the server is overloaded (and the shallow fields
                # above already answer "is it alive").
                body["deep"] = "skipped_overloaded"
                metrics().incr("serve.deep_probe_skipped")
            else:
                # Deep probe: the selfcheck battery's paper trace,
                # designed and verified end-to-end through the real pool.
                from repro.reliability.selfcheck import PAPER_TRACE

                probe = DesignRequest(
                    trace="".join(str(b) for b in PAPER_TRACE * 4),
                    order=2,
                    verify=True,
                    emit=(),
                )
                envelope = await self.pool.submit(
                    probe, deadline_s=self.config.deadline_s
                )
                body["deep"] = envelope.get("status") == "ok"
                if not body["deep"]:
                    body["deep_error"] = envelope.get("error", "probe failed")
                    ready = body["ready"] = False
        return protocol.response(
            "ok" if ready else "error",
            200 if ready else 503,
            obj.get("id"),
            **body,
        )

    def _metrics_response(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.response(
            "ok",
            200,
            obj.get("id"),
            op="metrics",
            metrics_schema=protocol.METRICS_SCHEMA,
            counters=metrics().snapshot(),
            queue_depth=self.pool.depth(),
            queue_limit=self.config.queue_limit,
            breakers=self.breakers.snapshot(),
            pool=self.pool.snapshot(),
            ema_latency_s=round(self._ema_s, 4),
            draining=self._draining,
        )

    def _retry_after_s(self) -> float:
        """Backoff hint: expected time to drain my slot of the queue."""
        per_worker = self.pool.depth() / max(1, self.config.workers)
        return max(0.1, round(per_worker * self._ema_s, 3))
