"""Circuit breakers: stop hammering a failing dependency, degrade instead.

A :class:`CircuitBreaker` is the classic three-state machine:

* **closed** -- requests flow; consecutive failures are counted.
* **open** -- after ``threshold`` consecutive failures the breaker trips;
  ``allow()`` answers False until ``reset_after`` seconds have passed.
* **half-open** -- after the cooldown one trial request is let through;
  success closes the breaker, failure re-opens it (and restarts the
  cooldown clock).

The server keeps one breaker per protected scope in a
:class:`BreakerBoard`:

* ``cache`` -- repeated cache-layer failures open the breaker and further
  requests run with the ``no-cache`` degrade flag (recompute instead of
  touching the sick cache; payload bytes unchanged).
* ``verify`` -- repeated oracle failures shed verification (``no-verify``)
  rather than rejecting the design work itself.
* any design stage (``patterns``, ``logic_minimize``, ...) -- repeated
  structured failures in one stage fast-fail new requests with a 503 +
  retry hint instead of burning a worker on each doomed attempt.

Time is injected (``clock=``) so tests never sleep.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open recovery."""

    def __init__(
        self,
        name: str,
        threshold: int = 5,
        reset_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.name = name
        self.threshold = threshold
        self.reset_after = max(0.0, reset_after)
        self._clock = clock
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trips = 0

    @property
    def state(self) -> str:
        # Promote open -> half-open lazily: state is only observable
        # through calls, so the transition happens on read.
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = STATE_HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request pass?  In half-open, the first caller gets the
        trial slot and subsequent callers are refused until it reports."""
        state = self.state
        if state == STATE_CLOSED:
            return True
        if state == STATE_HALF_OPEN:
            # Hand out one trial and re-open provisionally (fresh
            # cooldown) so concurrent callers don't stampede the
            # recovering dependency.  The trial's record_success()/
            # record_failure() settles the state before that matters.
            self._state = STATE_OPEN
            self._opened_at = self._clock()
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._state = STATE_CLOSED

    def record_failure(self) -> None:
        self._failures += 1
        if self._failures >= self.threshold or self._state != STATE_CLOSED:
            if self._state == STATE_CLOSED:
                self._trips += 1
            self._state = STATE_OPEN
            self._opened_at = self._clock()

    def retry_after_s(self) -> float:
        """Seconds until the breaker half-opens (0 when not open)."""
        if self.state != STATE_OPEN:
            return 0.0
        return max(0.0, self.reset_after - (self._clock() - self._opened_at))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self._failures,
            "threshold": self.threshold,
            "trips": self._trips,
        }


class BreakerBoard:
    """The server's named breakers, created on first touch."""

    def __init__(
        self,
        threshold: int = 5,
        reset_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.threshold = threshold
        self.reset_after = reset_after
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, name: str) -> CircuitBreaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = CircuitBreaker(
                name,
                threshold=self.threshold,
                reset_after=self.reset_after,
                clock=self._clock,
            )
            self._breakers[name] = breaker
        return breaker

    def record(self, name: str, ok: bool) -> None:
        breaker = self.get(name)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: breaker.snapshot()
            for name, breaker in sorted(self._breakers.items())
        }
