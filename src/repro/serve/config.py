"""Serving-layer knobs.

Every knob is a function that re-reads the environment at call time (the
repo-wide rule since the PR 2 ``REPRO_CACHE`` import-freeze bug): tests,
CI drivers, and freshly restarted pool workers that flip a ``REPRO_SERVE_*``
variable after import are always honoured.  The CLI's ``serve`` flags
override these per-field via :meth:`ServeConfig.from_env`.

=============================  ==========  =================================
``REPRO_SERVE_HOST``           127.0.0.1   listen address
``REPRO_SERVE_PORT``           7477        listen port (0 = ephemeral)
``REPRO_SERVE_WORKERS``        2           pool worker processes
``REPRO_SERVE_QUEUE``          64          admission queue depth; beyond it
                                           requests are shed with a 503
``REPRO_SERVE_DEADLINE``       30          default per-request deadline (s)
``REPRO_SERVE_STALL``          deadline    seconds a worker may sit on one
                                           job with no result before it is
                                           presumed hung and SIGKILLed
``REPRO_SERVE_BREAKER_FAILS``  5           consecutive failures that trip a
                                           circuit breaker
``REPRO_SERVE_BREAKER_RESET``  5           seconds an open breaker waits
                                           before half-opening
``REPRO_SERVE_DRAIN``          30          graceful-drain budget (s) after
                                           SIGTERM before in-flight work is
                                           abandoned
=============================  ==========  =================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= minimum else default


def serve_host() -> str:
    return os.environ.get("REPRO_SERVE_HOST", "").strip() or "127.0.0.1"


def serve_port() -> int:
    """Listen port (``REPRO_SERVE_PORT``, default 7477; 0 = ephemeral)."""
    return _env_int("REPRO_SERVE_PORT", 7477, minimum=0)


def serve_workers() -> int:
    return _env_int("REPRO_SERVE_WORKERS", 2)


def serve_queue_limit() -> int:
    """Admission queue depth (``REPRO_SERVE_QUEUE``, default 64)."""
    return _env_int("REPRO_SERVE_QUEUE", 64)


def serve_deadline_s() -> float:
    return _env_float("REPRO_SERVE_DEADLINE", 30.0)


def serve_stall_s() -> Optional[float]:
    """Hang watchdog budget; ``None`` means "use the job's deadline"."""
    raw = os.environ.get("REPRO_SERVE_STALL", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def breaker_threshold() -> int:
    return _env_int("REPRO_SERVE_BREAKER_FAILS", 5)


def breaker_reset_s() -> float:
    return _env_float("REPRO_SERVE_BREAKER_RESET", 5.0)


def drain_timeout_s() -> float:
    return _env_float("REPRO_SERVE_DRAIN", 30.0)


@dataclass(frozen=True)
class ServeConfig:
    """One resolved serving configuration (env defaults + CLI overrides)."""

    host: str = "127.0.0.1"
    port: int = 7477
    workers: int = 2
    queue_limit: int = 64
    deadline_s: float = 30.0
    stall_s: Optional[float] = None
    breaker_threshold: int = 5
    breaker_reset_s: float = 5.0
    drain_timeout_s: float = 30.0

    @classmethod
    def from_env(
        cls,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
        stall_s: Optional[float] = None,
        breaker_threshold_n: Optional[int] = None,
        breaker_reset: Optional[float] = None,
        drain_timeout: Optional[float] = None,
    ) -> "ServeConfig":
        return cls(
            host=host if host is not None else serve_host(),
            port=port if port is not None else serve_port(),
            workers=max(1, workers if workers is not None else serve_workers()),
            queue_limit=max(
                1,
                queue_limit if queue_limit is not None else serve_queue_limit(),
            ),
            deadline_s=(
                deadline_s if deadline_s is not None else serve_deadline_s()
            ),
            stall_s=stall_s if stall_s is not None else serve_stall_s(),
            breaker_threshold=(
                breaker_threshold_n
                if breaker_threshold_n is not None
                else breaker_threshold()
            ),
            breaker_reset_s=(
                breaker_reset if breaker_reset is not None else breaker_reset_s()
            ),
            drain_timeout_s=(
                drain_timeout if drain_timeout is not None else drain_timeout_s()
            ),
        )

    def effective_stall_s(self) -> float:
        return self.stall_s if self.stall_s is not None else self.deadline_s
