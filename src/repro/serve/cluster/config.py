"""Cluster-router knobs.

Same discipline as :mod:`repro.serve.config`: every knob re-reads the
environment at call time, and the CLI's ``serve-router`` flags override
per-field through :meth:`RouterConfig.from_env`.

===============================  =========  ================================
``REPRO_ROUTER_HOST``            127.0.0.1  router listen address
``REPRO_ROUTER_PORT``            7478       router listen port (0=ephemeral)
``REPRO_ROUTER_REPLICAS``        (none)     comma-separated ``host:port``
                                            replica endpoints
``REPRO_ROUTER_QUEUE``           256        admitted-but-unresolved bound;
                                            beyond it requests shed with 503
``REPRO_ROUTER_PROBE_INTERVAL``  1.0        seconds between healthz probes
                                            per replica
``REPRO_ROUTER_LEASE``           3x probe   seconds one successful probe
                                            keeps a replica admitted
``REPRO_ROUTER_EJECT_FAILS``     2          consecutive probe failures
                                            before a replica is ejected
``REPRO_ROUTER_RETRIES``         3          upstream dispatch attempts per
                                            request before giving up
``REPRO_ROUTER_HEDGE_FLOOR``     0.05       minimum hedge delay (seconds)
``REPRO_ROUTER_HEDGE_CAP``       2.0        maximum hedge delay (seconds);
                                            also the pre-sample default
``REPRO_ROUTER_CONNECT_TIMEOUT`` 1.0        seconds to wait for a replica
                                            TCP connect
``REPRO_ROUTER_DRAIN``           30         graceful-drain budget (s)
===============================  =========  ================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.serve.config import _env_float, _env_int


def parse_replica_spec(spec: str) -> Tuple[Tuple[str, int], ...]:
    """``"host:port,host:port"`` -> ``(("host", port), ...)``.  Raises
    :class:`ValueError` on anything that is not a host:port list."""
    endpoints = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        host, sep, raw_port = clause.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"replica {clause!r} is not host:port (e.g. 127.0.0.1:7477)"
            )
        try:
            port = int(raw_port)
        except ValueError:
            raise ValueError(
                f"replica {clause!r} has a non-integer port"
            ) from None
        if not 0 < port < 65536:
            raise ValueError(f"replica {clause!r} port out of range")
        endpoints.append((host, port))
    return tuple(endpoints)


def router_host() -> str:
    return os.environ.get("REPRO_ROUTER_HOST", "").strip() or "127.0.0.1"


def router_port() -> int:
    return _env_int("REPRO_ROUTER_PORT", 7478, minimum=0)


def router_replicas() -> Tuple[Tuple[str, int], ...]:
    return parse_replica_spec(os.environ.get("REPRO_ROUTER_REPLICAS", ""))


def router_queue_limit() -> int:
    return _env_int("REPRO_ROUTER_QUEUE", 256)


def probe_interval_s() -> float:
    return _env_float("REPRO_ROUTER_PROBE_INTERVAL", 1.0)


def lease_s() -> Optional[float]:
    """Lease length; ``None`` means "3x the probe interval"."""
    raw = os.environ.get("REPRO_ROUTER_LEASE", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def eject_after() -> int:
    return _env_int("REPRO_ROUTER_EJECT_FAILS", 2)


def retry_budget() -> int:
    return _env_int("REPRO_ROUTER_RETRIES", 3)


def hedge_floor_s() -> float:
    return _env_float("REPRO_ROUTER_HEDGE_FLOOR", 0.05)


def hedge_cap_s() -> float:
    return _env_float("REPRO_ROUTER_HEDGE_CAP", 2.0)


def connect_timeout_s() -> float:
    return _env_float("REPRO_ROUTER_CONNECT_TIMEOUT", 1.0)


def router_drain_s() -> float:
    return _env_float("REPRO_ROUTER_DRAIN", 30.0)


@dataclass(frozen=True)
class RouterConfig:
    """One resolved router configuration (env defaults + CLI overrides)."""

    host: str = "127.0.0.1"
    port: int = 7478
    replicas: Tuple[Tuple[str, int], ...] = ()
    queue_limit: int = 256
    probe_interval_s: float = 1.0
    lease_s: float = 3.0
    eject_after: int = 2
    retry_budget: int = 3
    hedge_floor_s: float = 0.05
    hedge_cap_s: float = 2.0
    connect_timeout_s: float = 1.0
    drain_timeout_s: float = 30.0

    @classmethod
    def from_env(
        cls,
        host: Optional[str] = None,
        port: Optional[int] = None,
        replicas: Optional[Sequence[Tuple[str, int]]] = None,
        queue_limit: Optional[int] = None,
        probe_interval: Optional[float] = None,
        lease: Optional[float] = None,
        eject_fails: Optional[int] = None,
        retries: Optional[int] = None,
        hedge_floor: Optional[float] = None,
        hedge_cap: Optional[float] = None,
        connect_timeout: Optional[float] = None,
        drain_timeout: Optional[float] = None,
    ) -> "RouterConfig":
        interval = (
            probe_interval if probe_interval is not None else probe_interval_s()
        )
        lease_value = lease if lease is not None else lease_s()
        if lease_value is None:
            lease_value = 3.0 * interval
        return cls(
            host=host if host is not None else router_host(),
            port=port if port is not None else router_port(),
            replicas=tuple(
                replicas if replicas is not None else router_replicas()
            ),
            queue_limit=max(
                1,
                queue_limit
                if queue_limit is not None
                else router_queue_limit(),
            ),
            probe_interval_s=interval,
            lease_s=max(interval, lease_value),
            eject_after=max(
                1, eject_fails if eject_fails is not None else eject_after()
            ),
            retry_budget=max(
                1, retries if retries is not None else retry_budget()
            ),
            hedge_floor_s=(
                hedge_floor if hedge_floor is not None else hedge_floor_s()
            ),
            hedge_cap_s=hedge_cap if hedge_cap is not None else hedge_cap_s(),
            connect_timeout_s=(
                connect_timeout
                if connect_timeout is not None
                else connect_timeout_s()
            ),
            drain_timeout_s=(
                drain_timeout if drain_timeout is not None else router_drain_s()
            ),
        )
