"""repro.serve.cluster: multi-replica serving behind one router.

The single-host :class:`~repro.serve.server.DesignServer` survives worker
crashes, but the process itself is a single point of failure and every
same-digest request pays a full round trip unless it hits the on-disk
cache.  This package is the layer that exploits the idempotency the
content-addressed cache and single-flight locks already guarantee:

``config``    ``REPRO_ROUTER_*`` knobs (read at call time, CLI overrides)
``client``    resilient keep-alive client: connection pooling, reconnect
              with jittered exponential backoff, per-request retry budget
``coalesce``  in-router single-flight: concurrent same-digest requests
              collapse into one upstream call, fanned back to every waiter
``registry``  replica membership: periodic healthz probes, lease-based
              admission, automatic eject/readmit on probe failure
``router``    the ``repro serve-router`` front end: speaks ``repro.serve/1``
              to clients, hedged dispatch to replicas, aggregated
              backpressure, graceful drain

The correctness contract is inherited unchanged from the single-host
layer: every ``ok`` payload routed through the cluster is byte-identical
to the batch reference, under replica SIGKILL, hedging, retries, and
coalescing -- because responses are canonical bytes and the design flow
is a pure, memoized function of the request.
"""

from repro.serve.cluster.client import ResilientClient
from repro.serve.cluster.coalesce import SingleFlight
from repro.serve.cluster.config import RouterConfig, parse_replica_spec
from repro.serve.cluster.registry import Replica, ReplicaRegistry
from repro.serve.cluster.router import ClusterRouter

__all__ = [
    "ClusterRouter",
    "Replica",
    "ReplicaRegistry",
    "ResilientClient",
    "RouterConfig",
    "SingleFlight",
    "parse_replica_spec",
]
