"""In-router single-flight request coalescing.

The on-disk cache already deduplicates *sequential* same-digest work,
and its single-flight file locks deduplicate concurrent work *across
processes* -- but N concurrent identical requests arriving at the router
would still fan out as N upstream calls (N socket round trips, N pool
dispatches) that all block on the same cache lock.  :class:`SingleFlight`
collapses them at the door: the first request becomes the **leader** and
runs the real upstream call; everyone else becomes a **waiter** parked
on the leader's future.  When the leader's envelope lands it is fanned
back out to every waiter.

Correctness details the tests pin down:

* every caller gets a **deep copy** of the envelope -- the router
  rewrites the ``id`` field per waiter, and a shared mutable dict would
  cross-deliver one waiter's id to another;
* the flight key is removed from the table **before** the result is
  published, so a request arriving after completion starts a fresh
  flight instead of reading a stale one;
* a leader that fails with an *exception* propagates it to every waiter
  exactly once and clears the flight -- nobody hangs.  (The router's
  upstream call converts failures into error envelopes, so this path is
  a defensive backstop, but it must still never wedge a waiter.)

Counters: ``serve.coalesce.leaders`` (upstream calls actually made),
``serve.coalesce.hits`` (requests answered from another flight's work).
"""

from __future__ import annotations

import asyncio
import copy
from typing import Any, Awaitable, Callable, Dict, Tuple

from repro.obs.metrics import metrics


class SingleFlight:
    """Coalesce concurrent calls that share a key into one execution."""

    def __init__(self) -> None:
        self._inflight: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}

    def inflight(self) -> int:
        return len(self._inflight)

    async def run(
        self,
        key: Any,
        supplier: Callable[[], Awaitable[Dict[str, Any]]],
    ) -> Tuple[Dict[str, Any], bool]:
        """Return ``(envelope_copy, coalesced)``.  ``coalesced`` is True
        when this caller rode an already-in-flight call instead of
        executing ``supplier`` itself."""
        existing = self._inflight.get(key)
        if existing is not None:
            metrics().incr("serve.coalesce.hits")
            # shield(): a cancelled waiter must not cancel the leader's
            # upstream call out from under the other waiters.
            envelope = await asyncio.shield(existing)
            return copy.deepcopy(envelope), True
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        metrics().incr("serve.coalesce.leaders")
        try:
            envelope = await supplier()
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # The waiters consume the exception; if there are none,
                # keep the event loop's "exception never retrieved"
                # warning out of the logs.
                future.exception()
            raise
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result(envelope)
        return copy.deepcopy(envelope), False
