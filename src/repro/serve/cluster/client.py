"""Resilient keep-alive client for the ``repro.serve/1`` protocol.

Every earlier consumer of the wire protocol (loadgen, CI scripts) opened
one fresh TCP connection per request -- fine at 64 closed-loop clients,
a syscall storm beyond that.  :class:`ResilientClient` keeps a small pool
of persistent connections to one endpoint and layers the failure
handling every caller was reimplementing by hand:

* **connection pooling** -- completed requests return their connection
  to an idle pool (LIFO, bounded); the next request reuses it instead of
  paying connect + slow-start again.  One request owns one connection at
  a time, so responses never need wire-level correlation.
* **reconnect with jittered exponential backoff** -- a dead connection
  (reset, refused, EOF, read timeout) is closed and the request retried
  on a fresh dial after ``base * 2^n`` plus up to 50% jitter, capped.
  Safe because the design flow is idempotent: a request that died
  mid-flight and is re-sent recomputes (or cache-hits) the same bytes.
* **per-request retry budget** -- after ``max_attempts`` dead
  connections the request gives up and returns ``None``; the caller
  decides whether that is a lost request (loadgen) or a replica to
  eject (router).

The ``replica_partition`` fault point fires here: an armed plan makes a
request behave exactly like a network partition (the connection "dies"
before the line is written), which is how the chaos suite proves the
router's retry/hedge path without touching real sockets.

Counters land in the process registry (``serve.client.*``) and are also
kept per-instance in :attr:`counters` so the loadgen can report them
per-run.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Deque, Dict, Optional, Tuple

import collections

from repro.obs.metrics import metrics
from repro.reliability import faults
from repro.serve import protocol

#: Upper bound on idle pooled connections per client.
DEFAULT_POOL_SIZE = 4
#: Dead-connection retries per request before giving up.
DEFAULT_MAX_ATTEMPTS = 8
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 1.0


class ResilientClient:
    """Keep-alive client to one ``host:port`` serve endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = DEFAULT_POOL_SIZE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        connect_timeout_s: float = 1.0,
        backoff_base_s: float = _BACKOFF_BASE_S,
        backoff_cap_s: float = _BACKOFF_CAP_S,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.pool_size = max(1, pool_size)
        self.max_attempts = max(1, max_attempts)
        self.connect_timeout_s = connect_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = rng if rng is not None else random.Random()
        self._idle: Deque[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = (
            collections.deque()
        )
        self.counters: Dict[str, int] = {
            "dials": 0,
            "reuses": 0,
            "reconnects": 0,
            "exhausted": 0,
        }

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def _acquire(
        self,
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if writer.is_closing() or reader.at_eof():
                self._close(writer)
                continue
            self._count("reuses")
            return reader, writer
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                self.host, self.port, limit=protocol.MAX_LINE_BYTES
            ),
            timeout=self.connect_timeout_s,
        )
        self._count("dials")
        return reader, writer

    def _release(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if writer.is_closing() or len(self._idle) >= self.pool_size:
            self._close(writer)
            return
        self._idle.append((reader, writer))

    @staticmethod
    def _close(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except (OSError, RuntimeError):
            pass

    def _count(self, name: str) -> None:
        self.counters[name] += 1
        metrics().incr(f"serve.client.{name}")

    async def _backoff(self, attempt: int) -> None:
        delay = min(
            self.backoff_base_s * (2 ** max(0, attempt - 1)),
            self.backoff_cap_s,
        )
        await asyncio.sleep(delay * (1.0 + 0.5 * self._rng.random()))

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(
        self,
        obj: Any,
        timeout_s: float = 60.0,
        max_attempts: Optional[int] = None,
    ) -> Optional[Dict[str, Any]]:
        """Send one request (dict or pre-encoded line bytes) and return
        its envelope; ``None`` after the reconnect budget is exhausted.

        A cancelled request (the router's hedging loser) closes its
        connection instead of pooling it -- the response, when it
        eventually arrives, would desynchronise the next request.
        """
        line = obj if isinstance(obj, bytes) else protocol.canonical_json(obj)
        budget = max_attempts if max_attempts is not None else self.max_attempts
        for attempt in range(1, budget + 1):
            conn = None
            try:
                if faults.should_fire("replica_partition"):
                    raise ConnectionResetError("injected replica partition")
                conn = await self._acquire()
                reader, writer = conn
                writer.write(line + b"\n")
                await writer.drain()
                raw = await asyncio.wait_for(
                    reader.readline(), timeout=timeout_s
                )
                if not raw:
                    raise ConnectionResetError("connection closed mid-request")
                envelope = json.loads(raw)
                self._release(reader, writer)
                return envelope
            except asyncio.CancelledError:
                if conn is not None:
                    self._close(conn[1])
                raise
            except (
                OSError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                json.JSONDecodeError,
                ValueError,
            ):
                if conn is not None:
                    self._close(conn[1])
                if attempt >= budget:
                    break
                self._count("reconnects")
                await self._backoff(attempt)
        self._count("exhausted")
        return None

    async def close(self) -> None:
        """Close every pooled connection (the client stays usable; the
        next request simply dials fresh)."""
        while self._idle:
            _reader, writer = self._idle.pop()
            self._close(writer)
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass
