"""Replica membership: probes, leases, eject/readmit.

The router must keep answering while replicas die, hang, and come back.
Membership is **lease-based**: a replica is routable only while it holds
a fresh lease, and the only way to hold a lease is to keep answering
``healthz`` probes.  That makes the failure detector's state derivable
from live evidence instead of accumulated bookkeeping:

* every ``probe_interval_s`` the registry sends the replica a shallow
  ``healthz`` through its own :class:`ResilientClient` (one reconnect
  attempt -- a probe that needs backoff is a failed probe);
* a ready answer renews the lease for ``lease_s`` and resets the failure
  streak; a replica whose lease lapses stops receiving traffic even if
  the eject threshold was never hit (e.g. the probe loop itself is
  starved);
* ``eject_after`` consecutive failures ejects the replica
  (``serve.router.ejects``); probing continues, and the first ready
  answer readmits it (``serve.router.readmits``) -- recovery requires no
  operator action;
* request-path evidence feeds the same detector: a connection-level
  failure during a real dispatch counts as a probe failure
  (:meth:`ReplicaRegistry.record_dead`), so a partitioned replica is
  ejected at traffic speed, not probe speed.

Backpressure aggregation lives here too: a replica that answers 503
with a ``retry_after_s`` hint is put on *hold* for that long and is not
picked; when every admitted replica is on hold the router sheds with the
soonest hold expiry as its own ``retry_after_s`` -- cluster-honest
admission instead of one replica's opinion.

The ``router_probe_fail`` fault point drops probes (the probe is never
sent), which is how the chaos suite proves eject/readmit without killing
real processes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import metrics
from repro.reliability import faults
from repro.serve.cluster.client import ResilientClient
from repro.serve.cluster.config import RouterConfig

_EMA_ALPHA = 0.2


@dataclass
class Replica:
    """One replica endpoint and everything the router knows about it."""

    host: str
    port: int
    client: ResilientClient
    admitted: bool = False
    was_admitted: bool = False
    lease_until: float = 0.0
    probe_failures: int = 0
    inflight: int = 0
    hold_until: float = 0.0
    ema_s: float = 0.5
    ok_count: int = 0
    error_count: int = 0
    last_error: str = ""
    picked: int = field(default=0)

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"

    def up(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        return self.admitted and now < self.lease_until

    def held(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        return now < self.hold_until


class ReplicaRegistry:
    """Probe loop + routable-replica selection for one router."""

    def __init__(self, config: RouterConfig):
        self.config = config
        self.replicas: List[Replica] = [
            Replica(
                host=host,
                port=port,
                client=ResilientClient(
                    host,
                    port,
                    connect_timeout_s=config.connect_timeout_s,
                ),
            )
            for host, port in config.replicas
        ]
        self._probe_tasks: List[asyncio.Task] = []
        self._rotor = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, initial_probe: bool = True) -> None:
        """Kick off one probe loop per replica.  ``initial_probe`` runs
        the first probe of each replica before returning, so a router
        whose replicas are already up starts routable."""
        if initial_probe:
            await asyncio.gather(
                *(self.probe_once(replica) for replica in self.replicas)
            )
        self._probe_tasks = [
            asyncio.ensure_future(self._probe_loop(replica))
            for replica in self.replicas
        ]

    async def stop(self) -> None:
        for task in self._probe_tasks:
            task.cancel()
        for task in self._probe_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._probe_tasks = []
        for replica in self.replicas:
            await replica.client.close()

    async def _probe_loop(self, replica: Replica) -> None:
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            await self.probe_once(replica)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    async def probe_once(self, replica: Replica) -> bool:
        """One shallow healthz probe; updates membership.  Returns the
        probe verdict."""
        metrics().incr("serve.router.probes")
        envelope = None
        if not faults.should_fire("router_probe_fail"):
            try:
                envelope = await replica.client.request(
                    {"op": "healthz"},
                    timeout_s=max(
                        self.config.probe_interval_s,
                        self.config.connect_timeout_s,
                    ),
                    max_attempts=1,
                )
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - a broken probe is a failed probe
                envelope = None
        if envelope is not None and envelope.get("ready"):
            self._mark_probe_ok(replica)
            return True
        replica.last_error = (
            "probe dropped"
            if envelope is None
            else f"not ready: {envelope.get('error', envelope.get('status'))}"
        )
        self._mark_probe_failure(replica)
        return False

    def _mark_probe_ok(self, replica: Replica) -> None:
        replica.lease_until = time.monotonic() + self.config.lease_s
        replica.probe_failures = 0
        if not replica.admitted:
            replica.admitted = True
            if replica.was_admitted:
                metrics().incr("serve.router.readmits")
            else:
                metrics().incr("serve.router.admits")
            replica.was_admitted = True

    def _mark_probe_failure(self, replica: Replica) -> None:
        replica.probe_failures += 1
        metrics().incr("serve.router.probe_failures")
        if replica.admitted and replica.probe_failures >= self.config.eject_after:
            replica.admitted = False
            metrics().incr("serve.router.ejects")

    # ------------------------------------------------------------------
    # Request-path evidence
    # ------------------------------------------------------------------
    def record_dead(self, replica: Replica, reason: str = "request failed") -> None:
        """A real dispatch hit a dead/partitioned connection: count it
        like a failed probe so traffic evidence accelerates ejection."""
        replica.last_error = reason
        replica.error_count += 1
        self._mark_probe_failure(replica)

    def record_ok(self, replica: Replica, latency_s: float) -> None:
        replica.ok_count += 1
        replica.ema_s = (1 - _EMA_ALPHA) * replica.ema_s + _EMA_ALPHA * latency_s

    def record_backpressure(self, replica: Replica, retry_after_s: float) -> None:
        """A replica shed with a 503 hint: hold it out of selection until
        the hint expires (the hint is its own queue-drain estimate)."""
        replica.hold_until = time.monotonic() + max(0.05, retry_after_s)
        metrics().incr("serve.router.backpressure_holds")

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def up_replicas(self) -> List[Replica]:
        now = time.monotonic()
        return [r for r in self.replicas if r.up(now)]

    def available(self) -> List[Replica]:
        now = time.monotonic()
        return [r for r in self.replicas if r.up(now) and not r.held(now)]

    def earliest_hold_expiry_s(self) -> float:
        """Seconds until the soonest held-but-up replica frees up."""
        now = time.monotonic()
        holds = [
            r.hold_until - now
            for r in self.replicas
            if r.up(now) and r.held(now)
        ]
        return max(0.05, min(holds)) if holds else 0.05

    def pick(
        self, exclude: Sequence[Replica] = ()
    ) -> Optional[Replica]:
        """Least-inflight admitted replica not on hold (round-robin tie
        break), preferring replicas not in ``exclude``; falls back to an
        excluded one rather than returning nothing while the cluster is
        still up."""
        candidates = self.available()
        if not candidates:
            return None
        fresh = [r for r in candidates if r not in exclude]
        pool = fresh or candidates
        self._rotor += 1
        best = min(
            pool,
            key=lambda r: (r.inflight, (r.picked + self._rotor) % (2 ** 31)),
        )
        best.picked += 1
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        now = time.monotonic()
        return {
            replica.name: {
                "admitted": replica.admitted,
                "up": replica.up(now),
                "held": replica.held(now),
                "lease_remaining_s": round(
                    max(0.0, replica.lease_until - now), 3
                ),
                "probe_failures": replica.probe_failures,
                "inflight": replica.inflight,
                "ok": replica.ok_count,
                "errors": replica.error_count,
                "ema_latency_s": round(replica.ema_s, 4),
                "last_error": replica.last_error,
            }
            for replica in self.replicas
        }
