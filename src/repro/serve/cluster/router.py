"""The cluster router: one ``repro.serve/1`` endpoint over N replicas.

``ClusterRouter`` speaks the exact single-host wire protocol to clients
-- existing clients (loadgen, ``nc``, the CI scripts) point at the
router and cannot tell the difference -- and fans ``design`` requests
out to the replica set kept by :class:`ReplicaRegistry`.  What the
router adds over picking a replica at random:

* **hedged dispatch** -- a request whose primary replica has been quiet
  longer than the hedge delay (a live P95 of recent cluster latencies,
  clamped to ``[hedge_floor, hedge_cap]``) is issued *again* on a second
  replica, and the first definitive answer wins; the loser is cancelled.
  Safe because responses are canonical bytes of a pure function: both
  replicas can only produce the identical payload (the second usually
  via the shared content-addressed cache).
* **single-flight coalescing** -- concurrent requests whose payloads are
  identical up to ``id`` collapse into one upstream call
  (:mod:`repro.serve.cluster.coalesce`); the envelope is fanned back to
  every waiter with its own ``id`` restored.
* **retry with replica failover** -- a dead connection mid-dispatch is
  retried on a different replica (up to the retry budget), and counts as
  failure evidence against the replica that dropped it.
* **aggregated honest backpressure** -- replica 503 ``retry_after_s``
  hints put that replica on hold; the router sheds (with the soonest
  hold expiry as its hint) only when *every* admitted replica is on
  hold, so shed decisions reflect cluster capacity, not one replica.
* **local edge validation** -- malformed requests are 400'd at the
  router without burning a replica round trip, using the same
  ``DesignRequest.from_payload`` validation the replicas run.

``healthz`` aggregates membership (ready iff at least one replica is
up); ``metrics`` reports router counters plus the registry snapshot.
SIGTERM drains: stop admitting, finish and deliver in-flight upstream
calls, stop probing, exit 0.
"""

from __future__ import annotations

import asyncio
import collections
import time
from typing import Any, Deque, Dict, List, Optional, Set

from repro.obs.metrics import metrics
from repro.reliability.errors import ReproError
from repro.serve import protocol
from repro.serve.config import serve_deadline_s
from repro.serve.cluster.coalesce import SingleFlight
from repro.serve.cluster.config import RouterConfig
from repro.serve.cluster.registry import Replica, ReplicaRegistry
from repro.serve.jobs import DesignRequest, classify_error
from repro.serve.pool import close_fd_after_fork, forget_fd_after_fork

ROUTER_METRICS_SCHEMA = "repro.serve-router-metrics/1"

#: Latency samples kept for the hedge-delay estimator.
_LATENCY_WINDOW = 256
#: Definitive statuses: an envelope that answers the request.  A 503
#: ("rejected") is advisory -- it feeds backpressure instead of winning
#: a hedge race.
_DEFINITIVE = ("ok", "error", "timeout")


class _HedgeEstimator:
    """P95 of recent definitive-answer latencies, clamped to the knob
    range; before enough samples exist the cap is used (hedge late, not
    eagerly, until the router has evidence)."""

    def __init__(self, floor_s: float, cap_s: float, min_samples: int = 10):
        self.floor_s = floor_s
        self.cap_s = cap_s
        self.min_samples = min_samples
        self._samples: Deque[float] = collections.deque(maxlen=_LATENCY_WINDOW)

    def observe(self, latency_s: float) -> None:
        self._samples.append(latency_s)

    def p95_s(self) -> float:
        ordered = sorted(self._samples)
        position = 0.95 * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def delay_s(self) -> float:
        if len(self._samples) < self.min_samples:
            return self.cap_s
        return min(self.cap_s, max(self.floor_s, self.p95_s()))


class ClusterRouter:
    """One listening socket + the replica registry + the dispatch brain."""

    def __init__(self, config: RouterConfig):
        if not config.replicas:
            raise ValueError("router needs at least one replica endpoint")
        self.config = config
        self.registry = ReplicaRegistry(config)
        self.flights = SingleFlight()
        self.hedge = _HedgeEstimator(config.hedge_floor_s, config.hedge_cap_s)
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._unresolved = 0
        self._listener_fds: Set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.registry.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        # A replica DesignServer forked in the same process (the dev /
        # test topology) must not inherit the router's listener.
        self._listener_fds = {
            sock.fileno() for sock in self._server.sockets
        }
        for fd in self._listener_fds:
            close_fd_after_fork(fd)

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._drained.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop admitting, let in-flight upstream calls
        finish and deliver, stop probing, release connections."""
        if self._draining:
            return
        self._draining = True
        metrics().incr("serve.router.drains")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for fd in self._listener_fds:
            forget_fd_after_fork(fd)
        self._listener_fds = set()
        deadline = (
            asyncio.get_running_loop().time() + self.config.drain_timeout_s
        )
        while (
            self._unresolved and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.01)
        if self._unresolved:
            metrics().incr("serve.router.drain_abandoned")
        await self.registry.stop()
        for writer in list(self._connections):
            try:
                writer.close()
            except OSError:
                pass
        self._drained.set()

    # ------------------------------------------------------------------
    # Connection handling (per-line tasks; writes serialized per socket)
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    async with write_lock:
                        await self._send(
                            writer,
                            protocol.error_response(
                                400,
                                "request line exceeds "
                                f"{protocol.MAX_LINE_BYTES} bytes",
                            ),
                        )
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_line(self, line: bytes, writer, write_lock) -> None:
        try:
            envelope = await self._handle_line(line)
            async with write_lock:
                await self._send(writer, envelope)
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _send(self, writer, envelope: Dict[str, Any]) -> None:
        writer.write(protocol.canonical_json(envelope) + b"\n")
        await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            obj = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            metrics().incr("serve.router.protocol_errors")
            return protocol.error_response(400, str(exc), kind="ProtocolError")
        op = obj["op"]
        if op == "ping":
            return protocol.response("ok", 200, obj.get("id"), op="ping")
        if op == "healthz":
            return self._healthz(obj)
        if op == "metrics":
            return self._metrics_response(obj)
        return await self._design(obj)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _healthz(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        up = self.registry.up_replicas()
        ready = not self._draining and bool(up)
        return protocol.response(
            "ok" if ready else "error",
            200 if ready else 503,
            obj.get("id"),
            op="healthz",
            ready=ready,
            draining=self._draining,
            role="router",
            replicas_up=len(up),
            replicas_total=len(self.registry.replicas),
            replicas=self.registry.snapshot(),
        )

    def _metrics_response(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        return protocol.response(
            "ok",
            200,
            obj.get("id"),
            op="metrics",
            metrics_schema=ROUTER_METRICS_SCHEMA,
            counters=metrics().snapshot(),
            queue_depth=self._unresolved,
            queue_limit=self.config.queue_limit,
            hedge_delay_s=round(self.hedge.delay_s(), 4),
            coalesce_inflight=self.flights.inflight(),
            replicas=self.registry.snapshot(),
            draining=self._draining,
        )

    async def _design(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        request_id = obj.get("id")
        if self._draining:
            metrics().incr("serve.router.shed_draining")
            return protocol.rejected_response(
                "draining", self.hedge.delay_s(), request_id
            )
        if self._unresolved >= self.config.queue_limit:
            metrics().incr("serve.router.shed_overload")
            return protocol.rejected_response(
                "router queue full", self.hedge.delay_s(), request_id
            )
        try:
            request = DesignRequest.from_payload(obj)
        except ReproError as exc:
            metrics().incr("serve.router.bad_requests")
            code, kind = classify_error(exc)
            return protocol.error_response(
                code, str(exc), request_id, kind=kind, stage=exc.stage
            )
        if not self.registry.up_replicas():
            metrics().incr("serve.router.shed_no_replicas")
            return protocol.rejected_response(
                "no replicas available",
                max(0.1, self.config.probe_interval_s),
                request_id,
            )
        if not self.registry.available():
            # Every admitted replica is on a 503 hold: the *cluster* is
            # saturated, and the honest hint is the soonest hold expiry.
            metrics().incr("serve.router.shed_backpressure")
            return protocol.rejected_response(
                "cluster saturated",
                self.registry.earliest_hold_expiry_s(),
                request_id,
            )
        metrics().incr("serve.router.requests")
        self._unresolved += 1
        try:
            upstream = {k: v for k, v in obj.items() if k != "id"}
            key = protocol.canonical_json(upstream)
            deadline_s = (
                request.deadline_s
                if request.deadline_s is not None
                else serve_deadline_s()
            )
            envelope, _coalesced = await self.flights.run(
                key, lambda: self._dispatch(key, deadline_s)
            )
        finally:
            self._unresolved -= 1
        envelope.pop("id", None)
        if request_id is not None:
            envelope["id"] = request_id
        return envelope

    # ------------------------------------------------------------------
    # Upstream dispatch: failover retries + hedging
    # ------------------------------------------------------------------
    async def _dispatch(
        self, line: bytes, deadline_s: float
    ) -> Dict[str, Any]:
        """Run one upstream call to completion: pick a replica, hedge
        after the P95 delay, fail over on dead connections, aggregate
        503 holds.  Always returns an envelope."""
        tried: List[Replica] = []
        rejected: Optional[Dict[str, Any]] = None
        for _attempt in range(self.config.retry_budget):
            replica = self.registry.pick(exclude=tried)
            if replica is None:
                break
            tried.append(replica)
            envelope = await self._call_hedged(replica, line, deadline_s, tried)
            if envelope is None:
                metrics().incr("serve.router.retries")
                continue
            if envelope.get("status") == "rejected":
                rejected = envelope
                metrics().incr("serve.router.retries")
                continue
            return envelope
        if rejected is not None:
            return rejected
        metrics().incr("serve.router.upstream_failures")
        return protocol.rejected_response(
            "no replica answered",
            max(0.1, self.config.probe_interval_s),
            None,
        )

    async def _call_hedged(
        self,
        primary: Replica,
        line: bytes,
        deadline_s: float,
        tried: List[Replica],
    ) -> Optional[Dict[str, Any]]:
        """One attempt, possibly forked into a hedge.  Returns the first
        definitive envelope, a 503 when that is all the replicas had to
        say, or ``None`` when every leg died at the connection level."""
        tasks: Dict[asyncio.Task, Replica] = {}
        primary_task = asyncio.ensure_future(
            self._call_replica(primary, line, deadline_s)
        )
        tasks[primary_task] = primary
        hedge_delay = self.hedge.delay_s()
        try:
            winner: Optional[Dict[str, Any]] = None
            rejected: Optional[Dict[str, Any]] = None
            hedged = False
            while tasks:
                timeout = None
                if not hedged:
                    timeout = hedge_delay
                done, pending = await asyncio.wait(
                    set(tasks),
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done and not hedged:
                    # Primary quiet past the hedge delay: fork the same
                    # bytes to a second replica; first answer wins.
                    hedged = True
                    secondary = self.registry.pick(
                        exclude=tried + [tasks[t] for t in tasks]
                    )
                    if secondary is not None and secondary not in tasks.values():
                        metrics().incr("serve.router.hedges")
                        tried.append(secondary)
                        hedge_task = asyncio.ensure_future(
                            self._call_replica(secondary, line, deadline_s)
                        )
                        tasks[hedge_task] = secondary
                    continue
                for task in done:
                    replica = tasks.pop(task)
                    envelope = task.result()
                    if envelope is None:
                        continue
                    if envelope.get("status") in _DEFINITIVE:
                        winner = envelope
                        if hedged and replica is not primary:
                            metrics().incr("serve.router.hedge_wins")
                        break
                    rejected = envelope
                if winner is not None:
                    return winner
            return rejected
        finally:
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass

    async def _call_replica(
        self, replica: Replica, line: bytes, deadline_s: float
    ) -> Optional[Dict[str, Any]]:
        """One request on one replica.  Connection-level death returns
        ``None`` (the client's own retry budget is 1 here: failover to a
        *different* replica beats hammering a dead one)."""
        replica.inflight += 1
        started = time.monotonic()
        try:
            envelope = await replica.client.request(
                line, timeout_s=deadline_s + 5.0, max_attempts=1
            )
        finally:
            replica.inflight -= 1
        if envelope is None:
            self.registry.record_dead(replica, "connection died mid-request")
            return None
        status = envelope.get("status")
        if status == "rejected":
            self.registry.record_backpressure(
                replica, float(envelope.get("retry_after_s", 0.1))
            )
            return envelope
        if status in _DEFINITIVE:
            latency = time.monotonic() - started
            self.registry.record_ok(replica, latency)
            self.hedge.observe(latency)
        return envelope
