"""The supervised worker pool: crash-only workers, a parent that never dies.

Design requests execute in forked worker processes connected to the
asyncio parent by ``multiprocessing.Pipe``.  Each worker gets a dedicated
daemon *reader thread* in the parent that blocks on ``conn.recv()`` and
trampolines results onto the event loop with ``call_soon_threadsafe`` --
the loop itself never blocks on a pipe.

Supervision invariants (the chaos suite proves each):

* **crash containment** -- a worker that dies (SIGKILL, SIGTERM, fault
  injection, segfault) takes down only itself.  The parent observes EOF
  on the pipe, reaps the corpse, and respawns a replacement with
  exponential backoff (``0.05 * 2^n`` capped at 2s; the streak resets
  on any completed job, so the climb only bites a pool that is
  finishing nothing at all).
* **exactly-once re-dispatch, zero loss** -- an in-flight request on a
  dead worker is re-queued at the front exactly once; if the *retry* also
  dies with it, the parent computes it inline (in a thread, off the
  event loop).  The inline path cannot be killed by the serve fault
  points -- they are queried only inside :func:`worker_main` -- so every
  accepted request is answered.  Re-execution is idempotent: the design
  flow is memoized content-addressed behind single-flight locks, and
  the executor is a pure function of the request, so a double-run
  produces byte-identical payloads.
* **hang detection** -- a watchdog wakes 10x/second; a worker that has
  sat on one job longer than the stall budget is presumed wedged and
  SIGKILLed, which funnels into the same EOF -> re-dispatch path.  A job
  whose *deadline* has already passed is answered with a 504 first and
  then *not* re-dispatched -- killing the worker is then just cleanup.
* **graceful shutdown** -- ``drain()`` waits for in-flight futures (up to
  a budget); ``stop()`` closes pipes, terminates what remains, joins.

The pool knows nothing about sockets or admission -- that is
:mod:`repro.serve.server`'s job.  ``submit`` returns an ``asyncio.Future``
that always resolves to a response envelope, never raises.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, FrozenSet, Optional

from repro.obs.metrics import metrics
from repro.serve.config import ServeConfig
from repro.serve.jobs import DesignRequest, execute_envelope

_BACKOFF_BASE = 0.05
_BACKOFF_MAX = 2.0
_WATCHDOG_TICK_S = 0.1
_DEADLINE_GRACE_S = 0.25

#: Listener fds (registered by the servers that own them) that forked
#: workers must close first thing.  A ``fork`` child inherits every open
#: fd, so a worker spawned -- or *respawned after a crash* -- while a
#: listening socket is open would keep that port bound even after the
#: owning server closed it, and a restarted server could never rebind.
_CLOSE_IN_CHILD: set = set()


def close_fd_after_fork(fd: int) -> None:
    """Register ``fd`` to be closed in every subsequently forked worker."""
    _CLOSE_IN_CHILD.add(fd)


def forget_fd_after_fork(fd: int) -> None:
    """Unregister ``fd`` (the owner closed it; the number may be reused)."""
    _CLOSE_IN_CHILD.discard(fd)


def _close_inherited_fds() -> None:
    for fd in list(_CLOSE_IN_CHILD):
        try:
            os.close(fd)
        except OSError:
            pass
    _CLOSE_IN_CHILD.clear()


def worker_main(conn) -> None:
    """Worker process body: recv job -> execute -> send envelope, forever.

    The serve chaos fault points live here and *only* here -- the
    parent's inline fallback must be unkillable.  SIGTERM is reset to
    the default action so a politely-killed worker dies into the normal
    EOF/re-dispatch path instead of raising the CLI's KeyboardInterrupt
    mid-``send`` (the pool-poisoning bug class; see
    ``repro.perf.parallel._mark_worker``).  SIGINT is ignored: Ctrl-C at
    the terminal signals the whole foreground group, and drain decisions
    belong to the parent alone.
    """
    from repro.reliability import faults

    _close_inherited_fds()
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:  # orderly shutdown
            break
        faults.fire_kill("serve_worker_crash")
        if faults.should_fire("serve_worker_hang"):
            time.sleep(float(os.environ.get("REPRO_FAULT_HANG_SECONDS", "30")))
        envelope = execute_envelope(
            msg["request"],
            degrade=msg["degrade"],
            deadline_s=msg["deadline_s"],
            collect_metrics=True,
        )
        try:
            conn.send({"job_id": msg["job_id"], "envelope": envelope})
        except (BrokenPipeError, OSError):  # parent went away
            break


@dataclass
class _Job:
    job_id: int
    request: DesignRequest
    degrade: FrozenSet[str]
    deadline_at: float  # absolute monotonic
    future: "asyncio.Future[Dict[str, Any]]"
    attempts: int = 0
    resolved: bool = False


@dataclass
class _Worker:
    worker_id: int
    process: mp.process.BaseProcess
    conn: Any
    reader: threading.Thread
    job: Optional[_Job] = None
    dispatched_at: float = 0.0
    spawned_at: float = field(default_factory=time.monotonic)
    dead: bool = False


class SupervisedPool:
    """A fixed-size pool of supervised design workers on one event loop."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._ctx = mp.get_context("fork")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._workers: Dict[int, _Worker] = {}
        self._idle: Deque[int] = collections.deque()
        self._backlog: Deque[_Job] = collections.deque()
        self._jobs: Dict[int, _Job] = {}
        self._job_ids = itertools.count(1)
        self._worker_ids = itertools.count(1)
        self._deaths_in_a_row = 0
        self._watchdog: Optional[asyncio.Task] = None
        self._respawns: set = set()
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for _ in range(self.config.workers):
            self._spawn_worker()
        self._watchdog = asyncio.ensure_future(self._watchdog_loop())

    async def drain(self, timeout_s: float) -> bool:
        """Wait for every in-flight/queued job to resolve.  Returns True
        when the pool drained fully inside the budget."""
        pending = [j.future for j in self._jobs.values() if not j.future.done()]
        if not pending:
            return True
        done, not_done = await asyncio.wait(pending, timeout=timeout_s)
        return not not_done

    async def stop(self) -> None:
        """Tear the pool down: retire workers, cancel the watchdog, and
        fail any jobs that are somehow still unresolved."""
        self._stopping = True
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except asyncio.CancelledError:
                pass
        for task in list(self._respawns):
            task.cancel()
        for worker in list(self._workers.values()):
            self._retire_worker(worker, terminate=True)
        for job in list(self._jobs.values()):
            if not job.future.done():
                from repro.serve import protocol

                job.future.set_result(
                    protocol.error_response(
                        500, "server shut down before completion",
                        job.request.request_id, kind="ServeError",
                    )
                )
        self._jobs.clear()
        self._backlog.clear()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Admitted-but-unresolved job count (queued + in flight)."""
        return len(self._jobs)

    def workers_alive(self) -> int:
        return sum(1 for w in self._workers.values() if not w.dead)

    def submit(
        self,
        request: DesignRequest,
        degrade: FrozenSet[str] = frozenset(),
        deadline_s: Optional[float] = None,
    ) -> "asyncio.Future[Dict[str, Any]]":
        """Enqueue one request; the future resolves to an envelope."""
        assert self._loop is not None, "pool not started"
        deadline_s = (
            deadline_s if deadline_s is not None else self.config.deadline_s
        )
        job = _Job(
            job_id=next(self._job_ids),
            request=request,
            degrade=frozenset(degrade),
            deadline_at=time.monotonic() + deadline_s,
            future=self._loop.create_future(),
        )
        self._jobs[job.job_id] = job
        self._backlog.append(job)
        metrics().incr("serve.submitted")
        self._pump()
        return job.future

    # ------------------------------------------------------------------
    # Dispatch machinery (all on the event loop thread)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Match queued jobs with idle workers."""
        while self._backlog and self._idle:
            worker = self._workers.get(self._idle.popleft())
            if worker is None or worker.dead or worker.job is not None:
                continue
            job = self._backlog.popleft()
            if job.future.done():
                self._jobs.pop(job.job_id, None)
                self._idle.appendleft(worker.worker_id)
                continue
            self._dispatch(worker, job)

    def _dispatch(self, worker: _Worker, job: _Job) -> None:
        job.attempts += 1
        worker.job = job
        worker.dispatched_at = time.monotonic()
        # An already-expired deadline must reach the worker as expired
        # (its first checkpoint raises DeadlineError -> 504), not as
        # "no deadline" -- deadline_scope treats <= 0 as unlimited.
        remaining = max(1e-9, job.deadline_at - worker.dispatched_at)
        try:
            worker.conn.send(
                {
                    "job_id": job.job_id,
                    "request": job.request,
                    "degrade": tuple(sorted(job.degrade)),
                    "deadline_s": remaining,
                }
            )
            metrics().incr("serve.dispatches")
        except (BrokenPipeError, OSError):
            # The worker died between going idle and this send; the
            # reader thread's EOF callback handles respawn + this job.
            worker.job = job  # ensure EOF path sees it
            return

    def _spawn_worker(self) -> None:
        if self._stopping:
            return
        worker_id = next(self._worker_ids)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main, args=(child_conn,), daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        process.start()
        child_conn.close()
        reader = threading.Thread(
            target=self._reader_body,
            args=(worker_id, parent_conn),
            name=f"repro-serve-reader-{worker_id}",
            daemon=True,
        )
        worker = _Worker(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            reader=reader,
        )
        self._workers[worker_id] = worker
        self._idle.append(worker_id)
        reader.start()
        metrics().incr("serve.worker_spawns")
        self._pump()

    def _reader_body(self, worker_id: int, conn) -> None:
        """Runs in a daemon thread: block on the pipe, trampoline to the
        loop.  EOF means the worker is gone (exit, crash, or kill)."""
        loop = self._loop
        assert loop is not None
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                if not loop.is_closed():
                    loop.call_soon_threadsafe(self._on_worker_eof, worker_id)
                return
            if not loop.is_closed():
                loop.call_soon_threadsafe(self._on_result, worker_id, msg)

    def _on_result(self, worker_id: int, msg: Dict[str, Any]) -> None:
        worker = self._workers.get(worker_id)
        job = self._jobs.pop(msg.get("job_id"), None)
        envelope = msg.get("envelope", {})
        # Fold the worker's counter deltas into the parent registry so
        # the metrics endpoint sees cache hits/spans from worker runs.
        delta = envelope.pop("metrics", None)
        if delta:
            metrics().merge(delta)
        if job is not None and not job.future.done():
            job.future.set_result(envelope)
            job.resolved = True
            metrics().incr("serve.completed")
        if job is not None:
            # Any completed job is proof the pool can still do work:
            # reset the respawn backoff streak (its exponential climb is
            # for the pool that dies before finishing *anything*).
            self._deaths_in_a_row = 0
        if worker is not None and not worker.dead:
            worker.job = None
            self._idle.append(worker_id)
            self._pump()

    def _on_worker_eof(self, worker_id: int) -> None:
        worker = self._workers.get(worker_id)
        if worker is None or worker.dead:
            return
        metrics().incr("serve.worker_deaths")
        job = worker.job
        self._retire_worker(worker, terminate=False)
        if job is not None and not job.resolved and not job.future.done():
            if job.attempts <= 1:
                # Exactly-once re-dispatch: front of the queue, another
                # worker picks it up as soon as one is free.
                metrics().incr("serve.redispatches")
                self._backlog.appendleft(job)
            else:
                # Second casualty: guarantee the answer inline.  The
                # serve fault points only exist in worker_main, so this
                # path cannot be crashed or hung by the chaos plan.
                metrics().incr("serve.inline_fallbacks")
                assert self._loop is not None
                task = self._loop.run_in_executor(
                    None,
                    lambda: execute_envelope(
                        job.request,
                        degrade=job.degrade,
                        deadline_s=max(
                            1e-9, job.deadline_at - time.monotonic()
                        ),
                        collect_metrics=False,
                    ),
                )
                task.add_done_callback(
                    lambda fut, j=job: self._finish_inline(j, fut)
                )
        if not self._stopping:
            self._deaths_in_a_row += 1
            backoff = min(
                _BACKOFF_BASE * (2 ** max(0, self._deaths_in_a_row - 1)),
                _BACKOFF_MAX,
            )
            respawn = asyncio.ensure_future(self._respawn_after(backoff))
            self._respawns.add(respawn)
            respawn.add_done_callback(self._respawns.discard)
        self._pump()

    def _finish_inline(self, job: _Job, fut) -> None:
        self._jobs.pop(job.job_id, None)
        if job.future.done():
            return
        try:
            job.future.set_result(fut.result())
            job.resolved = True
            metrics().incr("serve.completed")
        except Exception as exc:  # pragma: no cover - belt and braces
            from repro.serve import protocol

            job.future.set_result(
                protocol.error_response(
                    500, f"inline fallback failed: {exc}",
                    job.request.request_id, kind=type(exc).__name__,
                )
            )

    async def _respawn_after(self, delay_s: float) -> None:
        await asyncio.sleep(delay_s)
        metrics().incr("serve.worker_respawns")
        self._spawn_worker()

    def _retire_worker(self, worker: _Worker, terminate: bool) -> None:
        worker.dead = True
        self._workers.pop(worker.worker_id, None)
        try:
            self._idle.remove(worker.worker_id)
        except ValueError:
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        if terminate and worker.process.is_alive():
            worker.process.terminate()
        try:
            worker.process.join(timeout=1.0)
        except (AssertionError, ValueError):  # pragma: no cover
            pass
        if worker.process.is_alive():  # pragma: no cover - stubborn corpse
            worker.process.kill()
            worker.process.join(timeout=1.0)

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    async def _watchdog_loop(self) -> None:
        from repro.serve import protocol

        stall_s = self.config.effective_stall_s()
        while True:
            await asyncio.sleep(_WATCHDOG_TICK_S)
            now = time.monotonic()
            # Queued jobs whose deadline already passed: answer 504
            # without burning a worker.
            for job in list(self._backlog):
                if now > job.deadline_at and not job.future.done():
                    job.future.set_result(
                        protocol.timeout_response(
                            "deadline expired while queued",
                            job.request.request_id,
                        )
                    )
                    job.resolved = True
                    self._jobs.pop(job.job_id, None)
                    self._backlog.remove(job)
                    metrics().incr("serve.queue_timeouts")
            for worker in list(self._workers.values()):
                job = worker.job
                if job is None or worker.dead:
                    continue
                if now > job.deadline_at + _DEADLINE_GRACE_S:
                    # The worker missed its cooperative deadline (likely
                    # wedged inside one stage): answer the client now,
                    # then recycle the worker.  resolved=True keeps the
                    # EOF path from re-dispatching a dead request.
                    if not job.future.done():
                        job.future.set_result(
                            protocol.timeout_response(
                                "deadline expired in flight",
                                job.request.request_id,
                            )
                        )
                    job.resolved = True
                    self._jobs.pop(job.job_id, None)
                    metrics().incr("serve.watchdog_timeouts")
                    self._kill_worker(worker)
                elif now > worker.dispatched_at + stall_s:
                    # Stalled but the deadline still has budget: kill and
                    # let the EOF path re-dispatch/fallback.
                    metrics().incr("serve.watchdog_stall_kills")
                    self._kill_worker(worker)

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            if worker.process.pid is not None:
                os.kill(worker.process.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "workers": {
                str(w.worker_id): {
                    "pid": w.process.pid,
                    "busy": w.job is not None,
                    "age_s": round(time.monotonic() - w.spawned_at, 3),
                }
                for w in self._workers.values()
            },
            "alive": self.workers_alive(),
            "queue_depth": self.depth(),
            "backlog": len(self._backlog),
        }
