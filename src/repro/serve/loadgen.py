"""Seeded concurrent load generator + correctness checker for the server.

``run_loadgen`` replays hundreds of concurrent synthetic clients against
a running :class:`~repro.serve.server.DesignServer` and *proves* the
serving guarantees instead of eyeballing them:

* **zero lost** -- every request eventually receives exactly one
  envelope; a connection cut mid-request is retried on a fresh
  connection (the design flow is idempotent, so retries are safe).
  Each synthetic client holds one keep-alive connection through a
  :class:`~repro.serve.cluster.client.ResilientClient` (reused across
  its whole request sequence, reconnect-with-backoff on reset), so the
  harness scales past the old one-dial-per-request ceiling; the summary
  reports ``connections_opened``/``connection_reuses`` alongside
  ``reconnects``.
* **zero incorrect** -- with ``check=True`` every ``ok`` payload is
  byte-compared (canonical JSON) against :func:`execute_request` run
  in-process, i.e. against exactly what the batch CLI would print.  A
  single differing byte is a failure.
* **explicit shed handling** -- a 503 is not a failure; the client backs
  off by the server's ``retry_after_s`` hint and retries, and the
  summary reports how often that happened.

The workload is a pure function of ``seed``: client ``c``'s request
``i`` is case ``c * requests + i`` of a bounded mix drawn from the
conformance fuzz trace families (uniform/periodic/bursty/markov/
adversarial; orders 1-4, lengths 48-128 -- small enough that a 64-client
run finishes on a one-core CI box without manufacturing deadline
blowups), so a failing run is replayable bit-for-bit.  Latency quantiles
and a queue-depth sample (polled via the ``metrics`` op) land in the
summary dict that the CI job uploads as an artifact.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional

from repro.conformance import fuzz
from repro.serve import protocol
from repro.serve.cluster.client import ResilientClient
from repro.serve.jobs import DesignRequest, execute_request

#: Reconnect attempts per request after a dropped connection.
MAX_RECONNECTS = 8
#: Retries per request after an explicit 503 shed.
MAX_SHED_RETRIES = 32
#: Per-request deadline sent on every synthetic request.  Generous on
#: purpose: the loadgen proves zero-lost/zero-incorrect under crash
#: chaos; deadline behaviour has its own targeted tests.
REQUEST_DEADLINE_S = 240.0

def _source_bits(family: str):
    """Adapt a (bits, provenance) source-family generator to the plain
    bits interface the request builder wants."""

    def gen(rng: random.Random, length: int) -> List[int]:
        bits, _provenance = fuzz._SOURCE_GENERATORS[family](rng, length)
        return bits

    return gen


_GENERATORS = dict(
    zip(
        fuzz.FAMILIES,
        (
            fuzz.gen_uniform,
            fuzz.gen_periodic,
            fuzz.gen_bursty,
            fuzz.gen_markov,
            fuzz.gen_adversarial,
        ),
    )
)
_GENERATORS.update(
    {name: _source_bits(name) for name in fuzz._SOURCE_GENERATORS}
)
#: Low orders weighted up: order-4+ designs cost seconds each through
#: the hit-validation oracle, and the loadgen needs volume, not depth.
_ORDER_MIX = (1, 1, 2, 2, 3, 3, 4)


def build_request_payload(seed: int, case_index: int) -> Dict[str, Any]:
    """Wire payload for one synthetic request (pure function of inputs)."""
    rng = random.Random(f"repro-loadgen:{seed}:{case_index}")
    family = fuzz.FAMILIES[case_index % len(fuzz.FAMILIES)]
    order = rng.choice(_ORDER_MIX)
    length = max(order + 1, rng.randint(48, 128))
    bits = "".join(str(b) for b in _GENERATORS[family](rng, length))
    return {
        "op": "design",
        "id": f"lg-{seed}-{case_index}",
        "trace": bits,
        "order": order,
        "bias_threshold": rng.choice((0.5, 0.6)),
        "dont_care_fraction": rng.choice((0.0, 0.01)),
        "verify": case_index % 4 == 0,
        "emit": ["verilog"] if case_index % 2 == 0 else [],
        "deadline_s": REQUEST_DEADLINE_S,
    }


def reference_payload_bytes(payload: Dict[str, Any]) -> bytes:
    """What the batch path (``serve --oneshot``) would print for this
    request -- the byte-identity oracle."""
    request = DesignRequest.from_payload(payload)
    return protocol.canonical_json(execute_request(request))


def _make_client(
    host: str, port: int, *, seed_tag: str = "", pool_size: int = 1
) -> ResilientClient:
    """A keep-alive client with a seeded backoff-jitter RNG, so a given
    loadgen run's reconnect timing is replayable."""
    return ResilientClient(
        host,
        port,
        pool_size=pool_size,
        max_attempts=MAX_RECONNECTS,
        connect_timeout_s=5.0,
        rng=random.Random(f"repro-loadgen-client:{seed_tag}"),
    )


def _fold_client_counters(
    stats: Dict[str, Any], client: ResilientClient
) -> None:
    stats["reconnects"] += client.counters["reconnects"]
    stats["connections_opened"] += client.counters["dials"]
    stats["connection_reuses"] += client.counters["reuses"]


async def _client(
    client_id: int,
    host: str,
    port: int,
    seed: int,
    requests: int,
    check: bool,
    timeout_s: float,
    stats: Dict[str, Any],
) -> None:
    # One keep-alive connection per synthetic client, reused across its
    # whole request sequence; ResilientClient handles reconnect-with-
    # backoff when a crash or restart resets it.
    client = _make_client(host, port, seed_tag=f"{seed}:{client_id}")
    try:
        for i in range(requests):
            case_index = client_id * requests + i
            payload = build_request_payload(seed, case_index)
            line = protocol.canonical_json(payload)
            envelope: Optional[Dict[str, Any]] = None
            sheds = 0
            started = time.monotonic()
            while True:
                envelope = await client.request(line, timeout_s=timeout_s)
                if envelope is None:
                    # The client's whole reconnect budget is spent.
                    break
                if envelope.get("status") == "rejected":
                    sheds += 1
                    stats["shed"] += 1
                    if sheds > MAX_SHED_RETRIES:
                        break
                    await asyncio.sleep(
                        min(float(envelope.get("retry_after_s", 0.1)), 2.0)
                    )
                    continue
                break
            latency = time.monotonic() - started
            if envelope is None or envelope.get("status") == "rejected":
                stats["lost"].append(payload["id"])
                continue
            stats["latencies"].append(latency)
            status = envelope.get("status")
            if status != "ok":
                stats["failed"].append(
                    {
                        "id": payload["id"],
                        "code": envelope.get("code"),
                        "error": envelope.get("error"),
                    }
                )
                continue
            stats["ok"] += 1
            if envelope.get("degraded"):
                stats["degraded"] += 1
            if check:
                got = protocol.canonical_json(envelope.get("payload"))
                want = await asyncio.get_running_loop().run_in_executor(
                    None, reference_payload_bytes, payload
                )
                if got != want:
                    stats["incorrect"].append(payload["id"])
    finally:
        _fold_client_counters(stats, client)
        await client.close()


async def _sample_queue_depth(
    host: str, port: int, stop: asyncio.Event, samples: List[int]
) -> None:
    client = _make_client(host, port, seed_tag="sampler")
    probe = protocol.canonical_json({"op": "metrics"})
    try:
        while not stop.is_set():
            envelope = await client.request(probe, timeout_s=5.0, max_attempts=1)
            if envelope and "queue_depth" in envelope:
                samples.append(int(envelope["queue_depth"]))
            try:
                await asyncio.wait_for(stop.wait(), timeout=0.2)
            except asyncio.TimeoutError:
                pass
    finally:
        await client.close()


def _quantile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated quantile (numpy's default convention).

    The old rank math floored ``q * (n - 1)``, so at small sample counts
    high quantiles collapsed downward: p90 of two samples returned the
    *minimum*, and p90 of n=3 returned the median.  The CI serve job runs
    closed-loop with only a handful of samples per client, so those tails
    were systematically under-reported.
    """
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] + (sorted_values[upper] - sorted_values[lower]) * fraction


async def run_loadgen(
    host: str,
    port: int,
    clients: int = 64,
    requests: int = 2,
    seed: int = 0,
    check: bool = True,
    timeout_s: float = 120.0,
) -> Dict[str, Any]:
    """Run the full load profile; returns the summary dict.  The run
    *passed* iff ``summary['passed']`` -- zero lost, zero incorrect,
    zero unexpected failures."""
    stats: Dict[str, Any] = {
        "ok": 0,
        "shed": 0,
        "reconnects": 0,
        "connections_opened": 0,
        "connection_reuses": 0,
        "degraded": 0,
        "lost": [],
        "failed": [],
        "incorrect": [],
        "latencies": [],
    }
    depth_samples: List[int] = []
    stop = asyncio.Event()
    sampler = asyncio.ensure_future(
        _sample_queue_depth(host, port, stop, depth_samples)
    )
    started = time.monotonic()
    await asyncio.gather(
        *(
            _client(c, host, port, seed, requests, check, timeout_s, stats)
            for c in range(clients)
        )
    )
    wall_s = time.monotonic() - started
    stop.set()
    await sampler
    latencies = sorted(stats["latencies"])
    total = clients * requests
    summary = {
        "schema": "repro.loadgen-summary/1",
        "seed": seed,
        "clients": clients,
        "requests_per_client": requests,
        "total_requests": total,
        "ok": stats["ok"],
        "failed": stats["failed"],
        "lost": stats["lost"],
        "incorrect": stats["incorrect"],
        "shed_retries": stats["shed"],
        "reconnects": stats["reconnects"],
        "connections_opened": stats["connections_opened"],
        "connection_reuses": stats["connection_reuses"],
        "degraded_responses": stats["degraded"],
        "checked": bool(check),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(stats["ok"] / wall_s, 2) if wall_s else 0.0,
        "latency_s": {
            "p50": round(_quantile(latencies, 0.50), 4),
            "p90": round(_quantile(latencies, 0.90), 4),
            "p99": round(_quantile(latencies, 0.99), 4),
            "max": round(latencies[-1], 4) if latencies else 0.0,
        },
        "queue_depth": {
            "samples": len(depth_samples),
            "max": max(depth_samples, default=0),
            "mean": (
                round(sum(depth_samples) / len(depth_samples), 2)
                if depth_samples
                else 0.0
            ),
        },
        "passed": (
            stats["ok"] == total
            and not stats["lost"]
            and not stats["failed"]
            and not stats["incorrect"]
        ),
    }
    return summary


async def wait_until_ready(
    host: str, port: int, timeout_s: float = 30.0
) -> bool:
    """Poll ``healthz`` until the server reports ready (CI startup gate)."""
    deadline = time.monotonic() + timeout_s
    probe = protocol.canonical_json({"op": "healthz"})
    client = _make_client(host, port, seed_tag="ready-probe")
    try:
        while time.monotonic() < deadline:
            envelope = await client.request(probe, timeout_s=5.0, max_attempts=1)
            if envelope and envelope.get("ready"):
                return True
            await asyncio.sleep(0.2)
        return False
    finally:
        await client.close()
