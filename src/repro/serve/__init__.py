"""repro.serve: fault-tolerant design-as-a-service.

A stdlib-only JSON-over-TCP front end for the design flow: requests go
in (a trace or a Markov profile plus design knobs), designed machines,
HDL, and area come out.  The layer cake, bottom to top:

``jobs``      the request dataclass + the pure executor shared by the
              server, the batch ``--oneshot`` path, and the checker
``protocol``  newline-delimited canonical-JSON wire format
``config``    ``REPRO_SERVE_*`` knobs (read at call time)
``breaker``   circuit breakers (closed / open / half-open)
``pool``      supervised worker processes: crash containment,
              exactly-once re-dispatch, hang watchdog, backoff respawn
``server``    admission control, load shedding, deadline-aware
              degradation, graceful drain
``loadgen``   seeded concurrent clients proving zero-lost /
              zero-incorrect under armed chaos
``cluster``   multi-replica serving: ``serve-router`` front end with
              lease-based membership, hedged dispatch, single-flight
              request coalescing, and aggregated backpressure
"""

from repro.serve.config import ServeConfig
from repro.serve.jobs import DesignRequest, execute_envelope, execute_request
from repro.serve.server import DesignServer

__all__ = [
    "ServeConfig",
    "DesignRequest",
    "DesignServer",
    "execute_envelope",
    "execute_request",
]
