"""Performance layer: compiled fast paths, design caching, parallelism.

Three independent pieces, all strictly optional and all bit-identical to
the slow paths they accelerate:

- :mod:`repro.perf.compiled` lowers a :class:`~repro.automata.moore.MooreMachine`
  to dense arrays with a batch ``run_bits`` kernel.
- :mod:`repro.perf.batched` batches over *machines* as well as bits:
  ``BatchedMoore`` stacks and advances whole machine families,
  ``banked_replay`` replays indexed counter/FSM tables.
- :mod:`repro.perf.cache` memoizes VM traces and FSM design results on disk,
  keyed by content digests plus explicit version salts.
- :mod:`repro.perf.parallel` maps experiment shards over a process pool with
  deterministic result ordering.
"""

from repro.perf.batched import (
    BatchedMoore,
    backend_info,
    banked_replay,
    batch_enabled,
    batched_map,
    simulate_predictors_batched,
)
from repro.perf.cache import (
    cache_dir,
    cache_enabled,
    cached,
    digest_of,
    set_cache_enabled,
)
from repro.perf.compiled import CompiledMoore
from repro.perf.parallel import default_jobs, parallel_map

__all__ = [
    "BatchedMoore",
    "CompiledMoore",
    "backend_info",
    "banked_replay",
    "batch_enabled",
    "batched_map",
    "cache_dir",
    "cache_enabled",
    "cached",
    "default_jobs",
    "digest_of",
    "parallel_map",
    "set_cache_enabled",
    "simulate_predictors_batched",
]
